//! Umbrella crate for the VDTN reproduction suite.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests can use a single dependency. Library users should
//! normally depend on [`vdtn`] (the top-level simulator crate) directly.
//!
//! # Example
//!
//! ```
//! use vdtn_repro::vdtn::presets::{mini_scenario, PaperProtocol};
//! use vdtn_repro::vdtn::World;
//!
//! let mut scenario = mini_scenario(PaperProtocol::EpidemicFifo, 30, 7);
//! scenario.duration_secs = 120.0; // keep the doctest fast
//! let report = World::build(&scenario).run();
//! assert_eq!(report.seed, 7);
//! ```

pub use vdtn;
pub use vdtn_bundle as bundle;
pub use vdtn_geo as geo;
pub use vdtn_mobility as mobility;
pub use vdtn_net as net;
pub use vdtn_routing as routing;
pub use vdtn_sim_core as sim_core;

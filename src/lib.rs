//! Umbrella crate for the VDTN reproduction suite.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! integration tests can use a single dependency. Library users should
//! normally depend on [`vdtn`] (the top-level simulator crate) directly.

pub use vdtn;
pub use vdtn_bundle as bundle;
pub use vdtn_geo as geo;
pub use vdtn_mobility as mobility;
pub use vdtn_net as net;
pub use vdtn_routing as routing;
pub use vdtn_sim_core as sim_core;

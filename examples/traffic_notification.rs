//! Traffic-notification scenario: minimising delivery *delay*.
//!
//! ```sh
//! cargo run --release --example traffic_notification
//! ```
//!
//! The paper's motivating application class "advertisements or traffic
//! notification" values freshness: a congestion warning is useless twenty
//! minutes late. This example compares the three paper policy combinations
//! on Spray-and-Wait routing for short-TTL notification traffic and shows
//! the Lifetime combination minimising delay — the paper's headline claim.

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::run_sweep;

fn main() {
    // Notification traffic: short 30-minute TTL (stale warnings are worthless),
    // small 200 kB messages, frequent creation.
    let configs = [
        PaperProtocol::SnwFifo,
        PaperProtocol::SnwRandom,
        PaperProtocol::SnwLifetime,
    ];
    let seeds = [11u64, 12, 13];

    let mut scenarios = Vec::new();
    for &proto in &configs {
        for &seed in &seeds {
            let mut s = mini_scenario(proto, 30, seed);
            s.name = format!("traffic-notification/{}", proto.label());
            s.duration_secs = 2.0 * 3600.0;
            s.traffic.size_lo = 100_000;
            s.traffic.size_hi = 300_000;
            s.traffic.interval_lo = 5.0;
            s.traffic.interval_hi = 10.0;
            scenarios.push(s);
        }
    }

    println!("traffic-notification workload: TTL 30 min, 100-300 kB, every 5-10 s");
    println!("(three seeds per policy, Spray-and-Wait routing)\n");
    let reports = run_sweep(&scenarios);

    println!(
        "{:<28} {:>12} {:>12} {:>10}",
        "policy", "avg delay", "P(deliver)", "delivered"
    );
    for (i, &proto) in configs.iter().enumerate() {
        let chunk = &reports[i * seeds.len()..(i + 1) * seeds.len()];
        let delay = chunk.iter().map(|r| r.avg_delay_mins()).sum::<f64>() / chunk.len() as f64;
        let prob = chunk.iter().map(|r| r.delivery_probability()).sum::<f64>() / chunk.len() as f64;
        let delivered = chunk
            .iter()
            .map(|r| r.messages.delivered_unique)
            .sum::<u64>()
            / chunk.len() as u64;
        println!(
            "{:<28} {:>9.1} min {:>12.3} {:>10}",
            proto.label().trim_start_matches("SnW "),
            delay,
            prob,
            delivered
        );
    }
    println!("\nExpected: Lifetime DESC-Lifetime ASC has the lowest average delay —");
    println!("scheduling long-lived messages first keeps copies alive long enough");
    println!("to be relayed again before expiring (paper, Section II).");
}

//! Quickstart: build the paper's scenario, run it, read the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs a scaled-down (1-hour) version of the paper's Helsinki scenario with
//! Epidemic routing under the winning Lifetime DESC / Lifetime ASC policy
//! combination and prints the metrics the paper reports.

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::World;

fn main() {
    // A ready-made scaled-down paper scenario: 12 vehicles + 2 relays on a
    // synthetic downtown map, 1 simulated hour, TTL 60 minutes.
    let scenario = mini_scenario(PaperProtocol::EpidemicLifetime, 60, 42);

    println!("scenario: {}", scenario.name);
    println!(
        "nodes: {} ({} groups), duration: {} s, tick: {} s",
        scenario.node_count(),
        scenario.groups.len(),
        scenario.duration_secs,
        scenario.tick_secs
    );

    let report = World::build(&scenario).run();

    println!("\n--- results ---");
    println!("messages created      : {}", report.messages.created);
    println!(
        "unique deliveries     : {}",
        report.messages.delivered_unique
    );
    println!(
        "delivery probability  : {:.3}",
        report.delivery_probability()
    );
    println!("average delay         : {:.1} min", report.avg_delay_mins());
    println!("relayed copies        : {}", report.messages.relayed);
    println!(
        "overhead ratio        : {:.1}",
        report.messages.overhead_ratio()
    );
    println!("contacts              : {}", report.contacts);
    println!("mean contact duration : {:.1} s", report.mean_contact_secs);
    println!("engine wall time      : {:.2} s", report.wall_secs);

    // Reports serialise to JSON for downstream analysis.
    let json = serde_json::to_string_pretty(&report).expect("report serialises");
    println!(
        "\nreport JSON is {} bytes; first line: {}",
        json.len(),
        json.lines().next().unwrap()
    );
}

//! Full scheduling × dropping policy matrix — beyond the paper's Table I.
//!
//! ```sh
//! cargo run --release --example policy_matrix
//! ```
//!
//! The paper evaluates three scheduling-dropping combinations. The library
//! implements more of each axis; this example crosses them all on Epidemic
//! routing and prints the full matrix, reproducing the paper's three cells
//! in context and showing how the extensions fare.
//!
//! The cross product is not a hand-rolled loop: it is one `SweepManifest`
//! with a `policies` axis over a custom scenario template, expanded and
//! executed by the sweep orchestrator. Manifest expansion is canonical
//! (policies sort by scheduling then dropping rank), which is exactly the
//! row-major order the table prints in.

use vdtn::orchestrator::{run_manifest, ScenarioBase, SweepManifest, SweepOptions};
use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::{DropPolicy, PolicyCombo, RoutingBackend, SchedulingPolicy};

fn main() {
    let scheduling = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::Random,
        SchedulingPolicy::LifetimeDesc,
        SchedulingPolicy::LifetimeAsc,
        SchedulingPolicy::SmallestFirst,
    ];
    let dropping = [
        DropPolicy::Fifo,
        DropPolicy::LifetimeAsc,
        DropPolicy::Random,
        DropPolicy::LargestFirst,
    ];

    let mut template = mini_scenario(PaperProtocol::EpidemicFifo, 60, 99);
    template.name = "matrix".to_string();
    let manifest = SweepManifest {
        name: "policy-matrix".to_string(),
        base: ScenarioBase::Custom(Box::new(template)),
        // Empty protocol axis: keep the template's Epidemic router and
        // sweep the policy axis instead.
        protocols: Vec::new(),
        policies: scheduling
            .iter()
            .flat_map(|&s| {
                dropping.iter().map(move |&d| PolicyCombo {
                    scheduling: s,
                    dropping: d,
                })
            })
            .collect(),
        vehicles: Vec::new(),
        ttls_mins: vec![60],
        engines: Vec::new(),
        seeds: vec![99],
        backend: RoutingBackend::default(),
        duration_secs: 2.0 * 3600.0,
    };

    println!(
        "Epidemic policy matrix (scaled scenario, TTL 60 min, single seed).\n\
         Cells: delivery probability / average delay in minutes.\n"
    );
    let outcome = run_manifest(&manifest, &SweepOptions::default()).expect("valid manifest");
    assert_eq!(outcome.points.len(), scheduling.len() * dropping.len());

    print!("{:<16}", "sched \\ drop");
    for &d in &dropping {
        print!(" | {:>20}", d.label());
    }
    println!();
    println!("{}", "-".repeat(16 + dropping.len() * 23));
    // Canonical cell order is (scheduling rank, dropping rank) row-major —
    // the same order the axis arrays above are listed in.
    let mut idx = 0;
    for &s in &scheduling {
        print!("{:<16}", s.label());
        for _ in &dropping {
            let p = &outcome.points[idx];
            print!(
                " | {:>9.3} / {:>6.1}m",
                p.delivery_probability, p.avg_delay_mins
            );
            idx += 1;
        }
        println!();
    }

    println!(
        "\nThe paper's Table I corresponds to the cells (FIFO, FIFO), (Random, FIFO)\n\
         and (Lifetime DESC, Lifetime ASC); the rest are extensions of this library."
    );
}

//! Full scheduling × dropping policy matrix — beyond the paper's Table I.
//!
//! ```sh
//! cargo run --release --example policy_matrix
//! ```
//!
//! The paper evaluates three scheduling-dropping combinations. The library
//! implements more of each axis; this example crosses them all on Epidemic
//! routing and prints the full matrix, reproducing the paper's three cells
//! in context and showing how the extensions fare.

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::{run_sweep, DropPolicy, PolicyCombo, SchedulingPolicy};

fn main() {
    let scheduling = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::Random,
        SchedulingPolicy::LifetimeDesc,
        SchedulingPolicy::LifetimeAsc,
        SchedulingPolicy::SmallestFirst,
    ];
    let dropping = [
        DropPolicy::Fifo,
        DropPolicy::LifetimeAsc,
        DropPolicy::Random,
        DropPolicy::LargestFirst,
    ];

    let mut scenarios = Vec::new();
    for &sched in &scheduling {
        for &drop in &dropping {
            let mut s = mini_scenario(PaperProtocol::EpidemicFifo, 60, 99);
            s.policy = PolicyCombo {
                scheduling: sched,
                dropping: drop,
            };
            s.name = format!("matrix/{}-{}", sched.label(), drop.label());
            s.duration_secs = 2.0 * 3600.0;
            scenarios.push(s);
        }
    }

    println!(
        "Epidemic policy matrix (scaled scenario, TTL 60 min, single seed).\n\
         Cells: delivery probability / average delay in minutes.\n"
    );
    let reports = run_sweep(&scenarios);

    print!("{:<16}", "sched \\ drop");
    for &d in &dropping {
        print!(" | {:>20}", d.label());
    }
    println!();
    println!("{}", "-".repeat(16 + dropping.len() * 23));
    let mut idx = 0;
    for &s in &scheduling {
        print!("{:<16}", s.label());
        for _ in &dropping {
            let r = &reports[idx];
            print!(
                " | {:>9.3} / {:>6.1}m",
                r.delivery_probability(),
                r.avg_delay_mins()
            );
            idx += 1;
        }
        println!();
    }

    println!(
        "\nThe paper's Table I corresponds to the cells (FIFO, FIFO), (Random, FIFO)\n\
         and (Lifetime DESC, Lifetime ASC); the rest are extensions of this library."
    );
}

//! Environmental-data collection: maximising delivery *ratio*.
//!
//! ```sh
//! cargo run --release --example pollution_collection
//! ```
//!
//! The paper's other motivating application class — "environmental pollution
//! data collection" (and road-defect gathering) — values completeness over
//! latency: every sensor reading should eventually arrive. This example
//! builds a many-to-few workload (every vehicle reports toward a small set
//! of collector vehicles) with a long TTL and compares the four routing
//! protocols from the paper's Figures 8-9 on delivery probability.

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::run_sweep;

fn main() {
    let configs = [
        PaperProtocol::EpidemicLifetime,
        PaperProtocol::SnwLifetime,
        PaperProtocol::MaxProp,
        PaperProtocol::Prophet,
    ];
    let seeds = [5u64, 6, 7];

    let mut scenarios = Vec::new();
    for &proto in &configs {
        for &seed in &seeds {
            let mut s = mini_scenario(proto, 180, seed);
            s.name = format!("pollution-collection/{}", proto.label());
            s.duration_secs = 3.0 * 3600.0;
            // Sensor readings: small and steady.
            s.traffic.size_lo = 50_000;
            s.traffic.size_hi = 200_000;
            s.traffic.interval_lo = 10.0;
            s.traffic.interval_hi = 20.0;
            scenarios.push(s);
        }
    }

    println!("pollution-collection workload: TTL 180 min, 50-200 kB sensor readings");
    println!("(three seeds per protocol; delivery ratio is the success metric)\n");
    let reports = run_sweep(&scenarios);

    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "protocol", "P(deliver)", "avg delay", "relayed", "overhead"
    );
    for i in 0..configs.len() {
        let chunk = &reports[i * seeds.len()..(i + 1) * seeds.len()];
        let prob = chunk.iter().map(|r| r.delivery_probability()).sum::<f64>() / chunk.len() as f64;
        let delay = chunk.iter().map(|r| r.avg_delay_mins()).sum::<f64>() / chunk.len() as f64;
        let relayed = chunk.iter().map(|r| r.messages.relayed).sum::<u64>() / chunk.len() as u64;
        let overhead = chunk
            .iter()
            .map(|r| r.messages.overhead_ratio())
            .sum::<f64>()
            / chunk.len() as f64;
        println!(
            "{:<14} {:>12.3} {:>9.1} min {:>10} {:>10.1}",
            reports[i * seeds.len()].router,
            prob,
            delay,
            relayed,
            overhead
        );
    }
    println!("\nNote the trade-off the paper discusses: flooding buys delivery ratio");
    println!("at a steep overhead cost, while quota/estimation protocols spend far");
    println!("fewer transmissions per delivered message.");
}

//! Running on your own map: WKT import/export.
//!
//! ```sh
//! cargo run --release --example custom_map
//! ```
//!
//! The paper runs on a WKT extract of Helsinki shipped with the ONE
//! simulator. This example shows the full map workflow: author (or load) a
//! WKT road network, run the paper scenario on it, and export the
//! synthetic-city substitute to WKT for inspection in GIS tooling.

use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::scenario::MapSpec;
use vdtn::World;
use vdtn_geo::wkt;
use vdtn_geo::SyntheticCityGen;
use vdtn_sim_core::SimRng;

/// A hand-authored toy downtown: two avenues, three streets, one diagonal.
const HAND_WKT: &str = "\
LINESTRING (0 0, 400 0, 800 0, 1200 0)
LINESTRING (0 600, 400 600, 800 600, 1200 600)
LINESTRING (0 0, 0 600)
LINESTRING (400 0, 400 600)
LINESTRING (800 0, 800 600)
LINESTRING (1200 0, 1200 600)
LINESTRING (400 0, 800 600)
";

fn main() {
    // 1. Parse a WKT document into a road graph (snapping shared endpoints).
    let graph = wkt::parse_document_connected(HAND_WKT, 0.5).expect("valid WKT");
    println!(
        "hand-authored map: {} vertices, {} edges, {:.0} m of road, connected = {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.total_length(),
        graph.is_connected()
    );

    // 2. Run a short paper scenario on it by inlining the WKT in the config.
    let mut scenario = paper_scenario(PaperProtocol::SnwLifetime, 60, 7);
    scenario.name = "custom-map/hand-authored".into();
    scenario.map = MapSpec::WktText(HAND_WKT.to_string());
    scenario.duration_secs = 3_600.0;
    scenario.groups[0].count = 10;
    scenario.groups[1].count = 2;
    let report = World::build(&scenario).run();
    println!(
        "1 h on the toy map: {} created, {} delivered (P = {:.3}), delay {:.1} min",
        report.messages.created,
        report.messages.delivered_unique,
        report.delivery_probability(),
        report.avg_delay_mins()
    );

    // 3. Export the calibrated synthetic city for external inspection.
    let mut rng = SimRng::seed_from_u64(1);
    let city = SyntheticCityGen::default().generate(&mut rng);
    let doc = wkt::write_document(&city);
    let path = std::env::temp_dir().join("vdtn_synthetic_city.wkt");
    std::fs::write(&path, &doc).expect("write WKT");
    println!(
        "synthetic city ({} edges) exported to {} ({} bytes);\n\
         drop a real Helsinki extract in via MapSpec::WktText to run the paper\n\
         scenario on the original data.",
        city.edge_count(),
        path.display(),
        doc.len()
    );
}

//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` shim's [`Value`] data model. Because `syn`/`quote` are not
//! available offline, the item is parsed directly from the `proc_macro` token
//! stream; the supported grammar is exactly what this workspace needs:
//!
//! * structs with named fields, tuple structs (newtype or wider), unit structs;
//! * enums with unit, newtype, tuple, and struct variants;
//! * the container attribute `#[serde(transparent)]` and the field attribute
//!   `#[serde(skip)]` (skip serializes nothing and deserializes via
//!   `Default::default()`);
//! * no generic parameters (none of the workspace's serialized types are
//!   generic — the derive panics with a clear message if it meets one).
//!
//! Generated code mirrors serde's externally-tagged enum representation, so
//! JSON produced by the shim looks like real `serde_json` output.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    /// Tuple struct with this many fields (arity 1 = newtype, serialized as
    /// its inner value, which also covers `#[serde(transparent)]`).
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// True when the bracket-group body of an attribute is `serde(...)`
/// containing `word` anywhere inside the parentheses.
fn attr_contains(group_tokens: &[TokenTree], word: &str) -> bool {
    match group_tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    group_tokens.iter().skip(1).any(|t| match t {
        TokenTree::Group(g) => g
            .stream()
            .into_iter()
            .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == word)),
        _ => false,
    })
}

/// Consume a leading run of `#[...]` attributes starting at `*i`; reports
/// whether any of them was `#[serde(skip)]`.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if attr_contains(&body, "skip") {
                skip = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

/// Consume an optional `pub` / `pub(...)` visibility at `*i`.
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Consume tokens until a `,` at angle-bracket depth 0 (the end of a type or
/// discriminant expression). Leaves `*i` on the comma (or past the end).
fn eat_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if depth == 0 => return,
                '<' => depth += 1,
                '-' if p.spacing() == Spacing::Joint => {
                    // `->` in a fn-pointer type: swallow the `>` so it does
                    // not unbalance the angle depth.
                    if let Some(TokenTree::Punct(n)) = tokens.get(*i + 1) {
                        if n.as_char() == '>' {
                            *i += 2;
                            continue;
                        }
                    }
                }
                '>' => depth -= 1,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse the body of a braced field list: `[attrs] [vis] name : Type , ...`
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = eat_attrs(&tokens, &mut i);
        eat_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde shim derive: expected field name, found `{t}`"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            t => panic!("serde shim derive: expected `:` after field `{name}`, found {t:?}"),
        }
        eat_until_comma(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a parenthesised tuple-field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        eat_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        eat_until_comma(&tokens, &mut i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => panic!("serde shim derive: expected variant name, found `{t}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        // Optional explicit discriminant.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                eat_until_comma(&tokens, &mut i);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    eat_attrs(&tokens, &mut i);
    eat_visibility(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde shim derive: expected `struct` or `enum`, found {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde shim derive: expected type name, found {t:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            t => panic!("serde shim derive: malformed struct `{name}`: {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde shim derive: malformed enum `{name}`: {t:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "m.push((::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), \
                         ::serde::Serialize::to_value(x0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Seq(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "{ let mut fm: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "fm.push((::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        inner.push_str(&format!(
                            "::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Map(fm))]) }}"
                        ));
                        s.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {inner},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Generate the field initialisers for a named-field list read from map `src`.
fn named_field_inits(fields: &[Field], src: &str, ty: &str) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else {
            s.push_str(&format!(
                "{0}: match ::serde::Value::get_field({src}, \"{0}\") {{\n\
                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 None => return ::std::result::Result::Err(\
                 ::serde::Error::missing_field(\"{0}\", \"{ty}\")),\n}},\n",
                f.name
            ));
        }
    }
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Seq(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"array of length {n}\", \"{name}\")),\n}}",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => format!(
            "if !matches!(v, ::serde::Value::Map(_)) {{\n\
             return ::std::result::Result::Err(\
             ::serde::Error::expected(\"map\", \"{name}\"));\n}}\n\
             ::std::result::Result::Ok({name} {{\n{}\n}})",
            named_field_inits(fields, "v", name)
        ),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Unit variants are also legal in map form (payload
                        // ignored), matching serde's tolerance for `{"V":null}`.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match payload {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vn}({})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::expected(\
                             \"array of length {n}\", \"{name}::{vn}\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n{}\n}}),\n",
                        named_field_inits(fields, "payload", &format!("{name}::{vn}"))
                    )),
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::Error::expected(\"variant string or single-key map\", \"{name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}

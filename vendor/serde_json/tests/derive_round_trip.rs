//! End-to-end validation of the vendored derive macro + JSON codec across
//! every item shape the workspace uses.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
struct Id(u32);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Pair(f64, f64);

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Kind {
    Plain,
    Wrapped(Id),
    Edge(u32, u32),
    Config { alpha: f64, name: String },
}

#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
struct Cache {
    hits: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Record {
    id: Id,
    weights: Vec<(Id, f64)>,
    kind: Kind,
    label: Option<String>,
    #[serde(skip)]
    scratch: Cache,
}

fn round_trip<T>(value: &T) -> T
where
    T: Serialize + Deserialize,
{
    let compact = serde_json::to_string(value).unwrap();
    let pretty = serde_json::to_string_pretty(value).unwrap();
    let a: T = serde_json::from_str(&compact).unwrap();
    let _b: T = serde_json::from_str(&pretty).unwrap();
    a
}

#[test]
fn transparent_newtype_is_bare_value() {
    assert_eq!(serde_json::to_string(&Id(7)).unwrap(), "7");
    assert_eq!(round_trip(&Id(7)), Id(7));
}

#[test]
fn tuple_struct_is_array() {
    assert_eq!(
        serde_json::to_string(&Pair(1.5, -2.0)).unwrap(),
        "[1.5,-2.0]"
    );
    assert_eq!(round_trip(&Pair(1.5, -2.0)), Pair(1.5, -2.0));
}

#[test]
fn enum_forms_match_serde_externally_tagged() {
    assert_eq!(serde_json::to_string(&Kind::Plain).unwrap(), "\"Plain\"");
    assert_eq!(
        serde_json::to_string(&Kind::Wrapped(Id(3))).unwrap(),
        "{\"Wrapped\":3}"
    );
    assert_eq!(
        serde_json::to_string(&Kind::Edge(1, 2)).unwrap(),
        "{\"Edge\":[1,2]}"
    );
    assert_eq!(
        serde_json::to_string(&Kind::Config {
            alpha: 0.25,
            name: "x".into()
        })
        .unwrap(),
        "{\"Config\":{\"alpha\":0.25,\"name\":\"x\"}}"
    );
    for k in [
        Kind::Plain,
        Kind::Wrapped(Id(3)),
        Kind::Edge(1, 2),
        Kind::Config {
            alpha: 0.25,
            name: "x".into(),
        },
    ] {
        assert_eq!(round_trip(&k), k);
    }
}

#[test]
fn named_struct_with_skip_field() {
    let r = Record {
        id: Id(9),
        weights: vec![(Id(1), 0.5), (Id(2), 0.25)],
        kind: Kind::Config {
            alpha: 1.0,
            name: "n".into(),
        },
        label: None,
        scratch: Cache { hits: 999 },
    };
    let json = serde_json::to_string(&r).unwrap();
    assert!(!json.contains("scratch"), "skip field serialized: {json}");
    let back: Record = serde_json::from_str(&json).unwrap();
    // The skipped field falls back to Default.
    assert_eq!(back.scratch, Cache::default());
    assert_eq!(back.id, r.id);
    assert_eq!(back.weights, r.weights);
    assert_eq!(back.kind, r.kind);
    assert_eq!(back.label, None);
}

#[test]
fn unknown_variant_and_missing_field_error() {
    assert!(serde_json::from_str::<Kind>("\"Nope\"").is_err());
    assert!(serde_json::from_str::<Record>("{}").is_err());
}

//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` shim's [`serde::Value`] tree to JSON text and
//! parses JSON text back. Supports the workspace's API surface:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].
//!
//! Numbers print with round-trip precision (`{:?}` for `f64`); non-finite
//! floats serialize as `null` and deserialize back as NaN. Strings handle the
//! standard JSON escapes including `\uXXXX` with surrogate pairs.

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, out, indent, level),
        Value::Map(entries) => write_map(entries, out, indent, level),
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_seq(items: &[Value], out: &mut String, indent: Option<usize>, level: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_value(item, out, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push(']');
}

fn write_map(entries: &[(String, Value)], out: &mut String, indent: Option<usize>, level: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, item)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, level + 1);
        write_string(k, out);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(item, out, indent, level + 1);
    }
    newline_indent(out, indent, level);
    out.push('}');
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {} of JSON input",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a trailing \uXXXX.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated JSON string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.25)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1,0.5],[2,1.25]]");
        let back: Vec<(u32, f64)> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(u32, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "\u{1F600}");
    }

    #[test]
    fn numbers() {
        let x: f64 = from_str("1e3").unwrap();
        assert_eq!(x, 1000.0);
        let n: i64 = from_str("-42").unwrap();
        assert_eq!(n, -42);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
    }
}

//! Offline stand-in for the `rayon` crate.
//!
//! Provides the slice `par_iter().map(..).collect()` pipeline the sweep layer
//! uses, implemented with `std::thread::scope`. Items are split into one
//! contiguous chunk per available core; each chunk is mapped on its own
//! thread and the per-chunk outputs are concatenated in chunk order, so
//! **results preserve input order** exactly like rayon's indexed collect.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3, 4].par_iter().map(|x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

/// The traits needed for `slice.par_iter().map(f).collect()`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point: types that can produce a [`ParIter`] over `&Item`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// Borrowing parallel iterator over the elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each element through `f` (run on a pool of scoped threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminal operation is [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Execute the map across threads and collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk_len = n.div_ceil(threads);
        let f = &self.f;
        let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _out: Vec<u32> = input
            .par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        // At minimum the work ran; with >1 core it fans out.
        assert!(!seen.lock().unwrap().is_empty());
    }
}

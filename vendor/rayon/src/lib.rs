//! Offline stand-in for the `rayon` crate.
//!
//! Two layers, both deterministic in their observable outputs:
//!
//! * The slice `par_iter().map(..).collect()` pipeline the sweep layer uses,
//!   implemented with `std::thread::scope`. Items are split into one
//!   contiguous chunk per pool thread; each chunk is mapped on its own
//!   thread and the per-chunk outputs are concatenated in chunk order, so
//!   **results preserve input order** exactly like rayon's indexed collect.
//! * A persistent [`ThreadPool`] with [`ThreadPool::scope`] /
//!   [`ThreadPool::join`] primitives for the engine's sharded phases. The
//!   pool owns `threads - 1` workers; the caller thread participates by
//!   draining the queue while it waits, so a 1-thread pool runs everything
//!   inline on the caller with zero worker threads.
//!
//! Thread counts come from [`current_num_threads`]: the `VDTN_THREADS`
//! environment variable when set to a positive integer, otherwise
//! `std::thread::available_parallelism`. This pins both the chunking of
//! `par_iter` and the size of the lazily created global pool behind the
//! free [`scope`] / [`join`] functions.
//!
//! ```
//! use rayon::prelude::*;
//!
//! let squares: Vec<u64> = [1u64, 2, 3, 4].par_iter().map(|x| x * x).collect();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The traits needed for `slice.par_iter().map(f).collect()`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Number of threads parallel work should assume: the `VDTN_THREADS`
/// environment variable when it parses as a positive integer, otherwise
/// `std::thread::available_parallelism` (1 if that is unavailable).
pub fn current_num_threads() -> usize {
    threads_from_env(std::env::var("VDTN_THREADS").ok().as_deref())
}

/// Pure parsing core of [`current_num_threads`]: `var` is the raw value of
/// `VDTN_THREADS` (or `None` when unset). Zero, negative, or non-numeric
/// values fall back to the hardware default.
fn threads_from_env(var: Option<&str>) -> usize {
    match var.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is pushed or shutdown begins.
    ready: Condvar,
}

impl PoolShared {
    fn push(&self, job: Job) {
        let mut st = self.state.lock().expect("pool lock poisoned");
        st.queue.push_back(job);
        drop(st);
        self.ready.notify_one();
    }

    fn try_pop(&self) -> Option<Job> {
        self.state.lock().expect("pool lock poisoned").queue.pop_front()
    }
}

struct LatchState {
    pending: usize,
    panicked: bool,
}

/// Per-scope completion latch: counts outstanding spawned jobs and records
/// whether any of them panicked.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new() -> Self {
        Latch {
            state: Mutex::new(LatchState {
                pending: 0,
                panicked: false,
            }),
            done: Condvar::new(),
        }
    }

    fn pending(&self) -> usize {
        self.state.lock().expect("latch lock poisoned").pending
    }
}

/// A persistent worker pool. `threads` is the total parallelism including
/// the caller: the pool spawns `threads - 1` OS workers and the thread that
/// calls [`ThreadPool::scope`] works alongside them until the scope drains,
/// so `ThreadPool::new(1)` is a valid, fully inline pool.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Create a pool with the given total thread count (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total parallelism of this pool (workers + the participating caller).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with a [`Scope`] that can spawn borrowing tasks. Returns only
    /// after every spawned task has finished (the caller drains the queue
    /// while waiting). Panics from spawned tasks are re-raised here after
    /// the scope has fully drained.
    pub fn scope<'scope, R>(&self, f: impl FnOnce(&Scope<'scope>) -> R) -> R {
        let latch = Arc::new(Latch::new());
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            latch: Arc::clone(&latch),
            _marker: PhantomData,
        };
        // The guard drains the scope even if `f` unwinds, so spawned jobs
        // can never outlive the stack frames they borrow from.
        let guard = DrainGuard {
            shared: &self.shared,
            latch: &latch,
        };
        let result = f(&scope);
        drop(guard);
        let panicked = latch.state.lock().expect("latch lock poisoned").panicked;
        if panicked {
            panic!("a task spawned into a rayon scope panicked");
        }
        result
    }

    /// Run `a` and `b`, potentially in parallel, and return both results.
    /// `a` is offered to the pool; `b` runs on the caller.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB,
        RA: Send,
    {
        let mut ra: Option<RA> = None;
        let mut rb: Option<RB> = None;
        self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            rb = Some(b());
        });
        (
            ra.expect("join: spawned task did not run"),
            rb.expect("join: inline task did not run"),
        )
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool lock poisoned");
            st.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool lock poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.ready.wait(st).expect("pool lock poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Drains the scope's jobs on drop: the caller pops queued jobs and runs
/// them inline, then sleeps on the latch until in-flight jobs finish.
struct DrainGuard<'a> {
    shared: &'a PoolShared,
    latch: &'a Latch,
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        loop {
            if self.latch.pending() == 0 {
                return;
            }
            match self.shared.try_pop() {
                // Jobs from an unrelated concurrent scope may be popped
                // here too; running them is harmless and they settle their
                // own latch.
                Some(job) => job(),
                None => {
                    let st = self.latch.state.lock().expect("latch lock poisoned");
                    if st.pending > 0 {
                        // Re-checked under the lock, so the notify cannot be
                        // missed; spurious wakeups just re-loop.
                        drop(self.latch.done.wait(st));
                    }
                }
            }
        }
    }
}

/// Spawn handle passed to [`ThreadPool::scope`] closures. Tasks may borrow
/// from the enclosing stack frame (`'scope`); the scope waits for all of
/// them before returning.
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    latch: Arc<Latch>,
    /// Invariant over `'scope`, as in `std::thread::Scope`.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `f` onto the pool. It may run on any worker or on the caller
    /// thread while the scope drains.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.state.lock().expect("latch lock poisoned").pending += 1;
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let ok = catch_unwind(AssertUnwindSafe(f)).is_ok();
            let mut st = latch.state.lock().expect("latch lock poisoned");
            st.pending -= 1;
            if !ok {
                st.panicked = true;
            }
            if st.pending == 0 {
                latch.done.notify_all();
            }
        });
        // SAFETY: lifetime erasure in the style of rayon/crossbeam scopes.
        // `ThreadPool::scope` does not return — even on unwind, via
        // `DrainGuard` — until this job has completed, so the job cannot
        // outlive any `'scope` borrow it captures.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job)
        };
        self.shared.push(job);
    }
}

/// The process-wide pool used by the free [`scope`] / [`join`] functions.
/// Sized by [`current_num_threads`] at first use (so `VDTN_THREADS` must be
/// set before the first call to take effect there).
pub fn global_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| ThreadPool::new(current_num_threads()))
}

/// [`ThreadPool::scope`] on the global pool.
pub fn scope<'scope, R>(f: impl FnOnce(&Scope<'scope>) -> R) -> R {
    global_pool().scope(f)
}

/// [`ThreadPool::join`] on the global pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    global_pool().join(a, b)
}

/// Entry point: types that can produce a [`ParIter`] over `&Item`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// Borrowing parallel iterator over the elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each element through `f` (run on a pool of scoped threads).
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminal operation is [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Execute the map across threads and collect results in input order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = current_num_threads().min(n);
        let chunk_len = n.div_ceil(threads);
        let f = &self.f;
        let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _out: Vec<u32> = input
            .par_iter()
            .map(|x| {
                seen.lock().unwrap().insert(std::thread::current().id());
                *x
            })
            .collect();
        // At minimum the work ran; with >1 core it fans out.
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn env_override_parsing() {
        // Pure core: positive integers pin the count, junk falls back.
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 8 ")), 8);
        let hw = threads_from_env(None);
        assert!(hw >= 1);
        assert_eq!(threads_from_env(Some("0")), hw);
        assert_eq!(threads_from_env(Some("-2")), hw);
        assert_eq!(threads_from_env(Some("lots")), hw);
    }

    #[test]
    fn env_override_pins_current_num_threads() {
        // std synchronises env access internally (no C callers here), and
        // the only concurrent readers tolerate any positive value.
        std::env::set_var("VDTN_THREADS", "5");
        assert_eq!(current_num_threads(), 5);
        std::env::remove_var("VDTN_THREADS");
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack_data() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.num_threads(), threads);
            let counter = AtomicUsize::new(0);
            let data: Vec<usize> = (0..100).collect();
            pool.scope(|s| {
                for chunk in data.chunks(7) {
                    let counter = &counter;
                    s.spawn(move || {
                        counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::Relaxed), (0..100).sum::<usize>());
        }
    }

    #[test]
    fn scope_writes_into_disjoint_mut_chunks() {
        let pool = ThreadPool::new(4);
        let mut out = vec![0usize; 64];
        pool.scope(|s| {
            for (i, chunk) in out.chunks_mut(5).enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 5 + j;
                    }
                });
            }
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
        // Single-thread pool runs both on the caller.
        let pool1 = ThreadPool::new(1);
        let x = 10;
        let (a, b) = pool1.join(|| x + 1, || x + 2);
        assert_eq!((a, b), (11, 12));
    }

    #[test]
    fn global_scope_and_join_work() {
        let total = AtomicUsize::new(0);
        super::scope(|s| {
            for i in 0..16 {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), (0..16).sum::<usize>());
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn scope_task_panic_propagates_after_drain() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // The scope drained its healthy siblings before re-raising.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // The pool is still usable after a panicked scope.
        let (a, b) = pool.join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn sequential_scopes_reuse_the_pool() {
        let pool = ThreadPool::new(3);
        let mut acc = 0usize;
        for round in 0..50 {
            let local = AtomicUsize::new(0);
            pool.scope(|s| {
                for i in 0..4 {
                    let local = &local;
                    s.spawn(move || {
                        local.fetch_add(round * 4 + i, Ordering::Relaxed);
                    });
                }
            });
            acc += local.load(Ordering::Relaxed);
        }
        assert_eq!(acc, (0..200).sum::<usize>());
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro (with an
//! optional `#![proptest_config(...)]` header), integer-range strategies,
//! tuple strategies, [`collection::vec`], [`any`]`::<bool>()`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design of the shim:
//!
//! * cases are generated from a **fixed deterministic seed** (SplitMix64), so
//!   failures reproduce exactly across runs and machines;
//! * there is **no shrinking** — a failing case panics with the generated
//!   inputs left to inspection via the assertion message;
//! * the default case count is 64 (each simulator property runs whole
//!   simulations, so real proptest's 256 default would dominate test time).
//!   `ProptestConfig::with_cases` overrides it per block.

use std::ops::Range;

/// Deterministic SplitMix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed RNG; every `proptest!` block starts from the same stream.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Per-block configuration; only the case count is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property in the block `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

/// Strategy adapter for [`Arbitrary`] types.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` call site needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Property assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion; panics (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declare deterministic random-case tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec((0u64..10, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (n, _flag) in v {
                prop_assert!(n < 10);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to a crates.io registry, so the
//! workspace vendors a minimal serialization framework under the same crate
//! name. It provides the exact surface the VDTN workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` for structs and enums (via the
//!   sibling `serde_derive` shim),
//! * the container attribute `#[serde(transparent)]` and the field attribute
//!   `#[serde(skip)]`,
//! * blanket implementations for the std types that appear in the simulator's
//!   data model (integers, floats, `bool`, `String`, `Option`, `Vec`, arrays,
//!   tuples, and ordered/hashed maps).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` visitor pair;
//! values round-trip through the self-describing [`Value`] tree, which the
//! vendored `serde_json` shim renders to and parses from JSON text. Swapping
//! back to the real crates is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Self-describing serialized form: a JSON-like tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] tree does not match the target type.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// A type mismatch: `what` was expected while deserializing `ty`.
    pub fn expected(what: &str, ty: &str) -> Self {
        Error(format!("expected {what} while deserializing {ty}"))
    }

    /// A required map key was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// A free-form error message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the self-describing form.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self`, reporting a structural mismatch as [`Error`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{} out of range for i64", n)))?,
                    _ => return Err(Error::expected("signed integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:literal) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected(
                        concat!("array of length ", $len),
                        "tuple",
                    )),
                }
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

/// Maps serialize as ordered `[key, value]` pair arrays so that non-string
/// keys (e.g. `NodeId`) survive a JSON round-trip without a custom key codec.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v, "BTreeMap")
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_pairs(v, "HashMap")
    }
}

fn map_pairs<C, K, V>(v: &Value, ty: &str) -> Result<C, Error>
where
    C: FromIterator<(K, V)>,
    K: Deserialize,
    V: Deserialize,
{
    match v {
        Value::Seq(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Seq(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                _ => Err(Error::expected("[key, value] pair", ty)),
            })
            .collect(),
        _ => Err(Error::expected("array of pairs", ty)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let some = Some(7u32).to_value();
        assert_eq!(Option::<u32>::from_value(&some).unwrap(), Some(7));
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn map_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "three".to_string());
        let v = m.to_value();
        let back: BTreeMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn signed_crosses_value_variants() {
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
        assert_eq!(i64::from_value(&Value::I64(-9)).unwrap(), -9);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/type surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! `benchmark_group`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! and `Bencher::iter` — over a simple wall-clock loop: a short warm-up, then
//! timed batches until a ~1 s budget is spent, reporting the mean and best
//! per-iteration time.
//!
//! When the binary is invoked with `--test` (what `cargo test` does for
//! `harness = false` bench targets), every benchmark body runs exactly once
//! so the suite stays fast and still exercises the bench code paths.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per `criterion_group!`ed function chain.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.full_name(), self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix (and, in real criterion,
/// plotting config; the shim keeps only the naming).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full_name());
        run_bench(&label, self.criterion.test_mode, &mut f);
        self
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.full_name());
        run_bench(&label, self.criterion.test_mode, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter (group provides the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (n, Some(p)) => format!("{n}/{p}"),
            (n, None) => n.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the workload.
pub struct Bencher {
    test_mode: bool,
    /// (total elapsed, iterations) accumulated by `iter`.
    result: Option<(Duration, u64, Duration)>,
}

impl Bencher {
    /// Time `f`, keeping its return value alive via `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.result = None;
            return;
        }
        // Warm-up: a few iterations, also used to size the measured batch.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3
            || (warmup_start.elapsed() < Duration::from_millis(200) && warmup_iters < 1_000)
        {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        // Measure for ~1s wall clock or at least 10 iterations.
        let budget = Duration::from_secs(1);
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while (total < budget && per_iter < budget) || iters < 10 {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            best = best.min(dt);
            total += dt;
            iters += 1;
            if per_iter >= budget && iters >= 3 {
                break;
            }
        }
        self.result = Some((total, iters, best));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        test_mode,
        result: None,
    };
    f(&mut b);
    if test_mode {
        println!("test {label} ... ok (bench smoke)");
        return;
    }
    match b.result {
        Some((total, iters, best)) => {
            let mean = total / iters.max(1) as u32;
            println!(
                "bench {label:<60} mean {:>12} best {:>12} ({iters} iters)",
                format_duration(mean),
                format_duration(best),
            );
        }
        None => println!("bench {label:<60} (no measurement)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, mirroring criterion's API.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups, mirroring criterion's API.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 * 2));
    }

    #[test]
    fn runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
    }
}

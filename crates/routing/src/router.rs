//! The `Router` trait, its outcome types, and the protocol factory.

use crate::candidates::RoutingBackend;
use crate::offers::OfferView;
use crate::state::NodeState;
use crate::{
    DirectDeliveryRouter, EpidemicRouter, FirstContactRouter, MaxPropConfig, MaxPropRouter,
    ProphetConfig, ProphetRouter, SprayAndWaitRouter,
};
use serde::{Deserialize, Serialize};
use vdtn_bundle::{Message, MessageId, PolicyCombo};
use vdtn_sim_core::{NodeId, SimRng, SimTime, StateHash};

/// Result of handing a freshly created message to its source's router.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateOutcome {
    /// True if the message was stored at the source.
    pub stored: bool,
    /// Messages evicted to make room (reported for drop accounting).
    pub evicted: Vec<Message>,
}

/// Why a received message was not stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Already carrying a copy.
    Duplicate,
    /// Already consumed as final destination.
    AlreadyDelivered,
    /// Larger than the whole buffer.
    TooLarge,
    /// Could not free enough space under the drop policy.
    NoSpace,
    /// TTL elapsed while in flight.
    Expired,
}

/// Result of a completed incoming transfer at the receiver.
#[derive(Debug, Clone, PartialEq)]
pub enum ReceiveOutcome {
    /// This node is the destination.
    Delivered {
        /// False when this is a redundant copy of an already-consumed message.
        first_time: bool,
    },
    /// Stored for further forwarding; `evicted` lists congestion drops made
    /// to accommodate it.
    Stored {
        /// Messages evicted by the drop policy.
        evicted: Vec<Message>,
    },
    /// Not stored.
    Rejected(RejectReason),
}

/// Protocol metadata exchanged when two nodes meet, mirroring the control
/// traffic real protocols piggyback on the contact handshake.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Digest {
    /// Protocol exchanges no metadata (Epidemic, SnW, baselines).
    #[default]
    None,
    /// PRoPHET delivery predictabilities: `P(owner, dest)` pairs.
    Prophet {
        /// The digest owner's delivery-predictability vector.
        probs: Vec<(NodeId, f64)>,
    },
    /// MaxProp meeting-probability vector plus delivery acknowledgements.
    MaxProp {
        /// Owner's normalised meeting probabilities.
        probs: Vec<(NodeId, f64)>,
        /// Ids of messages known to be delivered (flooded acks).
        acks: Vec<MessageId>,
    },
}

/// A DTN routing protocol instance, one per node.
///
/// All methods are infallible; failures are expressed in the outcome types so
/// the engine can do uniform metric accounting across protocols.
///
/// `Sync` is required so the parallel engine can scan routers from several
/// shards at once through [`Router::plan_transfer`] (`&self`); all mutation
/// stays on the serial commit path.
pub trait Router: Send + Sync {
    /// Protocol label for reports (e.g. `"Epidemic"`).
    fn kind_label(&self) -> &'static str;

    /// A message was created at this node (it is the source). The router
    /// stamps protocol state (e.g. spray quota) and stores it.
    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome;

    /// Metadata to hand to a newly met peer. Called once per contact per
    /// side. Takes `&mut self` so protocols can memoise the assembled
    /// vectors behind a state-generation check (PRoPHET, MaxProp).
    fn digest(&mut self, _own: &NodeState, _now: SimTime) -> Digest {
        Digest::None
    }

    /// A contact to `peer` just came up; `peer_digest` is the peer's
    /// metadata. Returns messages *removed* from the buffer as a consequence
    /// (MaxProp deletes acknowledged messages here).
    fn on_contact_up(
        &mut self,
        _own: &mut NodeState,
        _peer: NodeId,
        _peer_digest: &Digest,
        _now: SimTime,
    ) -> Vec<Message> {
        Vec::new()
    }

    /// The contact to `peer` ended; `bytes_sent` is the payload volume this
    /// node transmitted during the contact (MaxProp adapts its hop-count
    /// threshold from this).
    fn on_contact_down(
        &mut self,
        _own: &mut NodeState,
        _peer: NodeId,
        _bytes_sent: u64,
        _now: SimTime,
    ) {
    }

    /// Choose the next message to send to `peer` over an idle connection.
    ///
    /// `offers` tracks the messages already attempted during this contact
    /// (the engine keeps it to mirror ONE's per-contact retry suppression):
    /// [`OfferView::is_offered`] ids must not be offered again, and
    /// schedule-order routers may use the view's resume cursor (see
    /// [`crate::offers`]) to skip the already-offered prefix of their
    /// cached order. Return `None` to stay silent this round.
    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId>;

    /// True when [`Router::next_transfer`] is a pure function of round-start
    /// state — no RNG draws and no router mutation beyond the per-pair
    /// [`OfferView`] — so the parallel engine may evaluate it concurrently
    /// through [`Router::plan_transfer`]. Policy routers return true exactly
    /// when scanning through the candidate index (the
    /// [`crate::candidates::RoutingBackend::Index`] backend under a
    /// non-`Random` scheduling policy); PRoPHET and MaxProp are always
    /// shareable. Directions whose router returns false are deferred to the
    /// serial commit, which calls [`Router::next_transfer`] unchanged.
    fn scan_is_shared(&self) -> bool {
        false
    }

    /// The shared-scan counterpart of [`Router::next_transfer`]: identical
    /// decision, `&self` receiver. Only called when
    /// [`Router::scan_is_shared`] is true; the `&self` receiver makes data
    /// races impossible by construction — the only mutable state a shared
    /// scan touches is the per-pair `offers` view, which the caller owns
    /// exclusively.
    fn plan_transfer(
        &self,
        _own: &NodeState,
        _peer: &NodeState,
        _peer_router: &dyn Router,
        _offers: &mut OfferView<'_>,
        _now: SimTime,
    ) -> Option<MessageId> {
        unreachable!("plan_transfer requires scan_is_shared()");
    }

    /// A transfer carrying `msg` (snapshot taken at send time) completed at
    /// this node. The router decides delivery/storage/rejection and performs
    /// any evictions its drop policy dictates.
    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome;

    /// An outgoing transfer of `msg_id` to `to` completed. `delivered` is
    /// true when `to` was the final destination (the paper's rule: the
    /// sender then discards its copy — implemented per protocol).
    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        to: NodeId,
        delivered: bool,
        now: SimTime,
    );

    /// An outgoing transfer was aborted by contact loss. Default: no-op
    /// (the copy was never surrendered).
    fn on_transfer_aborted(&mut self, _own: &mut NodeState, _msg_id: MessageId, _to: NodeId) {}

    /// Per-tick housekeeping (PRoPHET aging). Default: no-op.
    fn on_tick(&mut self, _own: &mut NodeState, _now: SimTime) {}

    /// Messages expired out of the buffer by the engine's TTL sweep;
    /// protocols with per-message state can clean up here.
    fn on_messages_expired(&mut self, _own: &mut NodeState, _ids: &[MessageId]) {}

    /// Protocol's delivery preference for `dest` at time `now`, higher =
    /// better (PRoPHET: aged predictability; MaxProp: negated path cost).
    /// `None` for protocols without such a metric.
    fn delivery_metric(&self, _dest: NodeId, _now: SimTime) -> Option<f64> {
        None
    }

    /// Monotone counter over protocol state that can change a
    /// [`Router::next_transfer`] *eligibility* verdict — encounter tables,
    /// ack sets, meeting probabilities. Together with the two buffers'
    /// generations and the peer's delivered-count it forms the engine's
    /// [`crate::offers::SilenceKey`]: between bumps, eligibility can only
    /// shrink (messages expire, peers learn messages, spray quotas halve)
    /// and the protocols' metric *comparisons* are invariant under pure
    /// time shift (PRoPHET ages both sides by the same factor, recency
    /// utilities shift by the same offset), so a `None` round stays `None`.
    /// Stateless protocols keep the default `0`.
    fn routing_generation(&self) -> u64 {
        0
    }

    /// True when [`Router::next_transfer`] consumes RNG draws (the `Random`
    /// scheduling policy re-shuffles per call). The engine never skips
    /// rounds for such routers — a skipped draw would shift the node's RNG
    /// lane and change downstream behaviour.
    fn next_transfer_draws_rng(&self) -> bool {
        false
    }

    /// Fold this protocol's *semantic* state — everything that influences
    /// future routing decisions — into the canonical state hash, in a fixed
    /// field order. Memoisation caches (digest caches, threshold caches) and
    /// within-run generation counters are excluded: they are rebuilt lazily
    /// and never change a decision. Default: nothing (stateless protocols).
    fn hash_state(&self, _h: &mut StateHash) {}

    /// Capture this protocol's semantic state for checkpointing. The
    /// counterpart of [`Router::restore_state`]; the same cache exclusions
    /// as [`Router::hash_state`] apply (caches rebuild after restore).
    /// Default: [`RouterSnapshot::Stateless`].
    fn snapshot_state(&self) -> RouterSnapshot {
        RouterSnapshot::Stateless
    }

    /// Re-install state captured by [`Router::snapshot_state`] on a freshly
    /// built router of the same kind. Panics on a kind mismatch — a
    /// snapshot only ever restores into the scenario that produced it.
    fn restore_state(&mut self, snap: RouterSnapshot) {
        assert!(
            matches!(snap, RouterSnapshot::Stateless),
            "{} router cannot restore stateful snapshot",
            self.kind_label()
        );
    }

    /// True when this router patches per-direction candidate indexes from
    /// buffer deltas (the [`crate::candidates::RoutingBackend::Index`]
    /// backend under a non-`Random` scheduling policy). The engine calls
    /// [`vdtn_bundle::Buffer::watch`] on every node buffer when any router
    /// asks, so both endpoints' membership changes are replayable; without
    /// the subscription the index still works but rebuilds on every change
    /// instead of patching. Default: `false` (protocols with native orders
    /// — PRoPHET, MaxProp — and the `Rescan` backend).
    fn wants_buffer_deltas(&self) -> bool {
        false
    }
}

/// Serializable semantic state of one router, for checkpointing.
///
/// Only *decision-relevant* state appears here; memoisation caches and
/// within-run generation counters are deliberately absent (they rebuild
/// lazily after restore, degrading only to rescans, never to different
/// decisions). Configuration is also absent: restore re-creates the router
/// from the scenario's [`RouterKind`] first, then installs this on top.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RouterSnapshot {
    /// Protocol carries no per-node semantic state beyond configuration
    /// (Epidemic, SnW, Direct Delivery, First Contact).
    Stateless,
    /// PRoPHET: delivery predictability `(p, last_update)` per peer id.
    Prophet {
        /// Dense table indexed by peer id.
        table: Vec<(f64, SimTime)>,
    },
    /// MaxProp: meeting probabilities, peers' reported vectors, flooded
    /// acks, Dijkstra path costs, and the adaptive-threshold inputs.
    MaxProp {
        /// Own normalised meeting probabilities, dense by peer id.
        probs: Vec<f64>,
        /// Peers' probability vectors learned from digests, sorted by peer.
        known: Vec<(u32, Vec<f64>)>,
        /// Delivered-message acks, sorted by id.
        acks: Vec<MessageId>,
        /// Cached per-destination path costs, dense by peer id.
        costs: Vec<f64>,
        /// Running mean of bytes moved per closed contact.
        avg_contact_bytes: f64,
        /// Closed contacts folded into the running mean.
        contacts_closed: u64,
    },
    /// Spray and Focus: last-encounter timestamp per peer id.
    SprayFocus {
        /// `last_met[peer]` — time this node last met `peer`.
        last_met: Vec<Option<SimTime>>,
    },
}

/// Serializable protocol selector + parameters; the factory for [`Router`]
/// instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RouterKind {
    /// Flooding.
    Epidemic,
    /// Binary Spray and Wait with `copies` initial replicas (paper: 12).
    SprayAndWait {
        /// Initial spray quota `L`.
        copies: u32,
        /// Binary halving (paper) vs. source spray.
        binary: bool,
    },
    /// PRoPHET with GRTRMax forwarding.
    Prophet(ProphetConfig),
    /// MaxProp.
    MaxProp(MaxPropConfig),
    /// Direct delivery (source holds until it meets the destination).
    DirectDelivery,
    /// First contact (single copy hops to the first node met).
    FirstContact,
    /// Spray and Focus: binary spray, then utility-based single-copy
    /// forwarding instead of waiting (extension protocol).
    SprayAndFocus {
        /// Initial spray quota `L`.
        copies: u32,
    },
}

impl RouterKind {
    /// Instantiate a router for node `own` with the default
    /// ([`RoutingBackend::Index`]) scan backend.
    ///
    /// `policy` applies to protocols without native scheduling/dropping
    /// (Epidemic, SnW, baselines); PRoPHET and MaxProp ignore it, exactly as
    /// in the paper.
    pub fn build(&self, own: NodeId, n_nodes: usize, policy: PolicyCombo) -> Box<dyn Router> {
        self.build_with_backend(own, n_nodes, policy, RoutingBackend::default())
    }

    /// Instantiate a router with an explicit scan backend. Protocols with
    /// native orders (PRoPHET, MaxProp) ignore the choice; both backends
    /// produce bit-identical reports (see `tests/engine_equivalence.rs`).
    pub fn build_with_backend(
        &self,
        own: NodeId,
        n_nodes: usize,
        policy: PolicyCombo,
        backend: RoutingBackend,
    ) -> Box<dyn Router> {
        match self {
            RouterKind::Epidemic => Box::new(EpidemicRouter::with_backend(policy, backend)),
            RouterKind::SprayAndWait { copies, binary } => Box::new(
                SprayAndWaitRouter::with_backend(*copies, *binary, policy, backend),
            ),
            RouterKind::Prophet(cfg) => Box::new(ProphetRouter::new(own, n_nodes, *cfg)),
            RouterKind::MaxProp(cfg) => Box::new(MaxPropRouter::new(own, n_nodes, *cfg)),
            RouterKind::DirectDelivery => {
                Box::new(DirectDeliveryRouter::with_backend(policy, backend))
            }
            RouterKind::FirstContact => Box::new(FirstContactRouter::with_backend(policy, backend)),
            RouterKind::SprayAndFocus { copies } => Box::new(
                crate::SprayAndFocusRouter::with_backend(own, n_nodes, *copies, policy, backend),
            ),
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::Epidemic => "Epidemic",
            RouterKind::SprayAndWait { .. } => "Spray and Wait",
            RouterKind::Prophet(_) => "PRoPHET",
            RouterKind::MaxProp(_) => "MaxProp",
            RouterKind::DirectDelivery => "Direct Delivery",
            RouterKind::FirstContact => "First Contact",
            RouterKind::SprayAndFocus { .. } => "Spray and Focus",
        }
    }

    /// The paper's Spray-and-Wait configuration (binary, L = 12).
    pub fn paper_snw() -> RouterKind {
        RouterKind::SprayAndWait {
            copies: 12,
            binary: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        let kinds = [
            RouterKind::Epidemic,
            RouterKind::paper_snw(),
            RouterKind::Prophet(ProphetConfig::default()),
            RouterKind::MaxProp(MaxPropConfig::default()),
            RouterKind::DirectDelivery,
            RouterKind::FirstContact,
            RouterKind::SprayAndFocus { copies: 8 },
        ];
        for kind in kinds {
            let r = kind.build(NodeId(0), 45, PolicyCombo::LIFETIME);
            assert_eq!(r.kind_label(), kind.label());
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(RouterKind::Epidemic.label(), "Epidemic");
        assert_eq!(RouterKind::paper_snw().label(), "Spray and Wait");
        assert_eq!(
            RouterKind::Prophet(ProphetConfig::default()).label(),
            "PRoPHET"
        );
        assert_eq!(
            RouterKind::MaxProp(MaxPropConfig::default()).label(),
            "MaxProp"
        );
    }

    #[test]
    fn kind_serde_round_trip() {
        let kind = RouterKind::paper_snw();
        let json = serde_json_like(&kind);
        assert!(json.contains("SprayAndWait"));
    }

    /// Minimal serde smoke check without pulling serde_json into this crate:
    /// use the Debug representation as a proxy that derive compiled.
    fn serde_json_like(kind: &RouterKind) -> String {
        format!("{kind:?}")
    }
}

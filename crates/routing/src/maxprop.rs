//! MaxProp routing (Burgess et al., INFOCOM 2006).
//!
//! MaxProp floods like Epidemic but brings its own transmission and eviction
//! orders, which is why the paper compares against it unmodified:
//!
//! * **Meeting probabilities**: node `i` keeps a normalised vector `f^i`
//!   over peers; meeting `j` increments `f^i_j` by 1 and re-normalises.
//!   Vectors are exchanged at every contact.
//! * **Path cost**: the cost of delivering to `d` is the cheapest path in
//!   the graph whose edge `u → v` costs `1 − f^u_v`, computed by Dijkstra
//!   over all vectors this node has collected.
//! * **Transmission order**: messages destined to the peer first; then a
//!   *head start* for young messages — hop counts below an adaptive
//!   threshold, lowest first — then everything else by ascending path cost.
//! * **Eviction order**: the reverse — highest path cost dropped first,
//!   head-start messages last.
//! * **Acknowledgements**: delivery acks are flooded in contact digests;
//!   acked messages are purged from buffers network-wide.
//!
//! The adaptive threshold follows the MaxProp paper's intent: the head-start
//! set is sized to (a fraction of) the *average bytes transferable per
//! contact*, estimated online from completed contacts. (ONE computes the
//! same statistic; our accounting of it is an approximation documented in
//! DESIGN.md.)

use crate::offers::OfferView;
use crate::router::{CreateOutcome, Digest, ReceiveOutcome, Router, RouterSnapshot};
use crate::state::NodeState;
use crate::util::{make_room_and_store, standard_receive};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use vdtn_bundle::{Message, MessageId};
use vdtn_sim_core::{NodeId, SimRng, SimTime, StateHash};

/// MaxProp tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxPropConfig {
    /// Fraction of the average per-contact byte volume granted to the
    /// young-message head start (the MaxProp paper splits the contact
    /// between new and ranked messages; 0.5 mirrors that split).
    pub head_start_fraction: f64,
}

impl Default for MaxPropConfig {
    fn default() -> Self {
        MaxPropConfig {
            head_start_fraction: 0.5,
        }
    }
}

/// Memoised digest payload: `(state generation, probs, acks)`.
type MaxPropDigestCache = (u64, Vec<(NodeId, f64)>, Vec<MessageId>);

/// Flooding router with cost-ranked scheduling, adaptive head start and
/// delivery-ack purging.
pub struct MaxPropRouter {
    own: NodeId,
    n: usize,
    cfg: MaxPropConfig,
    /// Own meeting-probability vector (normalised after the first meeting).
    probs: Vec<f64>,
    /// Collected vectors of other nodes, from contact digests.
    known: HashMap<u32, Vec<f64>>,
    /// Flooded delivery acknowledgements.
    acks: HashSet<MessageId>,
    /// Dijkstra result: cost from this node to every destination.
    costs: Vec<f64>,
    /// Online mean of payload bytes sent per completed contact.
    avg_contact_bytes: f64,
    contacts_closed: u64,
    /// Monotone counter bumped whenever `probs` or `acks` change; keys
    /// `digest_cache` (MaxProp digests are time-independent, so the state
    /// generation alone identifies them).
    state_gen: u64,
    /// Memoised digest payload for `state_gen`.
    digest_cache: Option<MaxPropDigestCache>,
    /// Memoised head-start threshold, keyed by `(buffer generation,
    /// contacts_closed)` — its only inputs are buffer membership (hop
    /// counts and sizes are immutable per stored copy) and the per-contact
    /// volume estimate, which moves only when a contact closes.
    threshold_cache: Option<((u64, u64), u32)>,
}

impl MaxPropRouter {
    /// Create a router for node `own` in a network of `n_nodes`.
    pub fn new(own: NodeId, n_nodes: usize, cfg: MaxPropConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.head_start_fraction));
        MaxPropRouter {
            own,
            n: n_nodes,
            cfg,
            probs: vec![0.0; n_nodes],
            known: HashMap::new(),
            acks: HashSet::new(),
            costs: vec![f64::INFINITY; n_nodes],
            avg_contact_bytes: 0.0,
            contacts_closed: 0,
            state_gen: 0,
            digest_cache: None,
            threshold_cache: None,
        }
    }

    /// Own meeting probability for `peer`.
    pub fn meeting_prob(&self, peer: NodeId) -> f64 {
        self.probs[peer.index()]
    }

    /// Current path cost estimate to `dest` (∞ when unknown).
    pub fn path_cost(&self, dest: NodeId) -> f64 {
        self.costs[dest.index()]
    }

    /// Delivery acknowledgements known to this node.
    pub fn acked(&self, id: MessageId) -> bool {
        self.acks.contains(&id)
    }

    fn record_meeting(&mut self, peer: NodeId) {
        self.state_gen += 1;
        self.probs[peer.index()] += 1.0;
        let sum: f64 = self.probs.iter().sum();
        for p in &mut self.probs {
            *p /= sum;
        }
    }

    /// Record a delivery acknowledgement; true if it was new.
    fn learn_ack(&mut self, id: MessageId) -> bool {
        let new = self.acks.insert(id);
        if new {
            self.state_gen += 1;
        }
        new
    }

    /// Single-source Dijkstra over the collected probability vectors.
    /// Edge `u → v` costs `1 − f^u_v` (only where `f^u_v > 0`).
    fn recompute_costs(&mut self) {
        let n = self.n;
        let mut dist = vec![f64::INFINITY; n];
        let mut settled = vec![false; n];
        dist[self.own.index()] = 0.0;
        // Dense Dijkstra: n ≤ a few hundred in any VDTN scenario.
        for _ in 0..n {
            let mut u = usize::MAX;
            let mut best = f64::INFINITY;
            for (i, &d) in dist.iter().enumerate() {
                if !settled[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            settled[u] = true;
            let vec_u: Option<&Vec<f64>> = if u == self.own.index() {
                Some(&self.probs)
            } else {
                self.known.get(&(u as u32))
            };
            if let Some(fu) = vec_u {
                for (v, &p) in fu.iter().enumerate() {
                    if p > 0.0 && !settled[v] {
                        let cand = dist[u] + (1.0 - p);
                        if cand < dist[v] {
                            dist[v] = cand;
                        }
                    }
                }
            }
        }
        self.costs = dist;
    }

    /// Hop-count threshold below which messages get the head start.
    ///
    /// The head-start set holds the youngest messages (lowest hop counts)
    /// whose cumulative size fits in `head_start_fraction` of the average
    /// contact volume. With no contact statistics yet the threshold is 0
    /// (pure cost ranking), as in ONE.
    ///
    /// Memoised per `(buffer generation, contacts closed)`: between those
    /// two moving, the O(B log B) hop-count sort would recompute the same
    /// value on every routing round and every reception.
    fn threshold(&mut self, own: &NodeState) -> u32 {
        let threshold = self.threshold_value(own);
        if self.contacts_closed != 0 && self.avg_contact_bytes > 0.0 {
            let key = (own.buffer.generation(), self.contacts_closed);
            self.threshold_cache = Some((key, threshold));
        }
        threshold
    }

    /// The pure (`&self`) core of [`MaxPropRouter::threshold`]: serves the
    /// memo on a key hit, otherwise recomputes without storing. The shared
    /// parallel scan uses this directly — the memo is a cost cache, never a
    /// behaviour change, so skipping the store cannot alter verdicts.
    fn threshold_value(&self, own: &NodeState) -> u32 {
        if self.contacts_closed == 0 || self.avg_contact_bytes <= 0.0 {
            return 0;
        }
        let key = (own.buffer.generation(), self.contacts_closed);
        if let Some((k, cached)) = self.threshold_cache {
            if k == key {
                return cached;
            }
        }
        let budget = self.cfg.head_start_fraction * self.avg_contact_bytes;
        let mut msgs: Vec<(u32, u64)> = own.buffer.iter().map(|m| (m.hops, m.size)).collect();
        msgs.sort_unstable_by_key(|&(hops, _)| hops);
        let mut acc = 0u64;
        let mut threshold = 0u32;
        for (hops, size) in msgs {
            acc += size;
            if (acc as f64) > budget {
                break;
            }
            threshold = hops + 1;
        }
        threshold
    }

    /// Victim chooser: highest path cost first, head-start messages last.
    fn pick_victim(&self, state: &NodeState, threshold: u32) -> Option<MessageId> {
        let rank = |m: &Message| {
            let cost = self.costs[m.dst.index()];
            // Head-start messages are maximally protected.
            if m.hops < threshold {
                (0u8, cost)
            } else {
                (1u8, cost)
            }
        };
        state
            .buffer
            .iter()
            .max_by(|a, b| {
                let (pa, ca) = rank(a);
                let (pb, cb) = rank(b);
                pa.cmp(&pb)
                    .then(ca.partial_cmp(&cb).expect("finite-or-inf costs"))
            })
            .map(|m| m.id)
    }
}

impl Router for MaxPropRouter {
    fn kind_label(&self) -> &'static str {
        "MaxProp"
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        _now: SimTime,
        _rng: &mut SimRng,
    ) -> CreateOutcome {
        let threshold = self.threshold(own);
        match make_room_and_store(own, msg, |state| self.pick_victim(state, threshold)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn digest(&mut self, _own: &NodeState, _now: SimTime) -> Digest {
        if let Some((gen, probs, acks)) = &self.digest_cache {
            if *gen == self.state_gen {
                return Digest::MaxProp {
                    probs: probs.clone(),
                    acks: acks.clone(),
                };
            }
        }
        let probs: Vec<(NodeId, f64)> = self
            .probs
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| (p > 0.0).then_some((NodeId(i as u32), p)))
            .collect();
        let acks: Vec<MessageId> = self.acks.iter().copied().collect();
        self.digest_cache = Some((self.state_gen, probs.clone(), acks.clone()));
        Digest::MaxProp { probs, acks }
    }

    fn on_contact_up(
        &mut self,
        own: &mut NodeState,
        peer: NodeId,
        peer_digest: &Digest,
        _now: SimTime,
    ) -> Vec<Message> {
        self.record_meeting(peer);
        let mut purged = Vec::new();
        if let Digest::MaxProp { probs, acks } = peer_digest {
            let mut dense = vec![0.0; self.n];
            for &(node, p) in probs {
                dense[node.index()] = p;
            }
            self.known.insert(peer.0, dense);
            for &ack in acks {
                if self.learn_ack(ack) {
                    if let Some(m) = own.buffer.remove(ack) {
                        purged.push(m);
                    }
                }
            }
        }
        self.recompute_costs();
        purged
    }

    fn on_contact_down(
        &mut self,
        _own: &mut NodeState,
        _peer: NodeId,
        bytes_sent: u64,
        _now: SimTime,
    ) {
        // Running mean of payload volume per contact feeds the threshold.
        self.contacts_closed += 1;
        let k = self.contacts_closed as f64;
        self.avg_contact_bytes += (bytes_sent as f64 - self.avg_contact_bytes) / k;
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        _rng: &mut SimRng,
    ) -> Option<MessageId> {
        // Memoise the threshold for this (generation, contacts) key, then
        // run the shared pure scan body.
        let _ = self.threshold(own);
        self.plan_transfer(own, peer, peer_router, offers, now)
    }

    fn scan_is_shared(&self) -> bool {
        // The scan never draws RNG; the threshold memo is read-only here
        // (see `threshold_value`), so the body is safe to run concurrently.
        true
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        let threshold = self.threshold_value(own);
        // Rank: (class, key) — class 0 = destined to peer, class 1 = head
        // start (by hop count), class 2 = cost-ranked. Lowest wins.
        let mut best: Option<((u8, f64), MessageId)> = None;
        for msg in own.buffer.iter() {
            if offers.is_offered(msg.id)
                || peer.knows(msg.id)
                || msg.is_expired(now)
                || self.acks.contains(&msg.id)
                || !peer.buffer.could_fit(msg.size)
            {
                continue;
            }
            let rank: (u8, f64) = if msg.dst == peer.id {
                (0, 0.0)
            } else if msg.hops < threshold {
                (1, msg.hops as f64)
            } else {
                (2, self.costs[msg.dst.index()])
            };
            let better = match &best {
                None => true,
                Some((r, _)) => rank < *r,
            };
            if better {
                best = Some((rank, msg.id));
            }
        }
        best.map(|(_, id)| id)
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        _rng: &mut SimRng,
    ) -> ReceiveOutcome {
        if self.acks.contains(&msg.id) && msg.dst != own.id {
            return ReceiveOutcome::Rejected(crate::router::RejectReason::AlreadyDelivered);
        }
        let threshold = self.threshold(own);
        let outcome = standard_receive(own, msg, now, |state| self.pick_victim(state, threshold));
        if let ReceiveOutcome::Delivered { .. } = outcome {
            // Destination floods the acknowledgement from now on.
            self.learn_ack(msg.id);
        }
        outcome
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        if delivered {
            // Sender both discards (paper rule) and starts flooding the ack.
            self.learn_ack(msg_id);
            own.buffer.remove(msg_id);
        }
    }

    fn on_messages_expired(&mut self, _own: &mut NodeState, _ids: &[MessageId]) {
        // Expired ids stay in the ack set harmlessly; nothing to clean.
    }

    fn delivery_metric(&self, dest: NodeId, _now: SimTime) -> Option<f64> {
        Some(-self.costs[dest.index()])
    }

    fn routing_generation(&self) -> u64 {
        // Eligibility depends on the ack set (and, through rank only, the
        // cost vectors); both move exactly with `state_gen`.
        self.state_gen
    }

    fn hash_state(&self, h: &mut StateHash) {
        // Semantic state only: probability vectors, acks, costs, and the
        // adaptive-threshold inputs. `state_gen` and the two memo caches are
        // within-run bookkeeping. Hash-set/map contents fold in sorted order.
        h.write_len(self.probs.len());
        for &p in &self.probs {
            h.write_f64(p);
        }
        let mut peers: Vec<u32> = self.known.keys().copied().collect();
        peers.sort_unstable();
        h.write_len(peers.len());
        for peer in peers {
            h.write_u32(peer);
            for &p in &self.known[&peer] {
                h.write_f64(p);
            }
        }
        let mut acks: Vec<MessageId> = self.acks.iter().copied().collect();
        acks.sort_unstable();
        h.write_len(acks.len());
        for ack in acks {
            h.write_u64(ack.0);
        }
        h.write_len(self.costs.len());
        for &c in &self.costs {
            h.write_f64(c);
        }
        h.write_f64(self.avg_contact_bytes);
        h.write_u64(self.contacts_closed);
    }

    fn snapshot_state(&self) -> RouterSnapshot {
        let mut known: Vec<(u32, Vec<f64>)> = self
            .known
            .iter()
            .map(|(&peer, v)| (peer, v.clone()))
            .collect();
        known.sort_unstable_by_key(|&(peer, _)| peer);
        let mut acks: Vec<MessageId> = self.acks.iter().copied().collect();
        acks.sort_unstable();
        RouterSnapshot::MaxProp {
            probs: self.probs.clone(),
            known,
            acks,
            costs: self.costs.clone(),
            avg_contact_bytes: self.avg_contact_bytes,
            contacts_closed: self.contacts_closed,
        }
    }

    fn restore_state(&mut self, snap: RouterSnapshot) {
        match snap {
            RouterSnapshot::MaxProp {
                probs,
                known,
                acks,
                costs,
                avg_contact_bytes,
                contacts_closed,
            } => {
                assert_eq!(probs.len(), self.n, "node count mismatch");
                self.probs = probs;
                self.known = known.into_iter().collect();
                self.acks = acks.into_iter().collect();
                self.costs = costs;
                self.avg_contact_bytes = avg_contact_bytes;
                self.contacts_closed = contacts_closed;
                self.state_gen = 0;
                self.digest_cache = None;
                self.threshold_cache = None;
            }
            other => panic!("MaxProp cannot restore {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn msg(id: u64, src: u32, dst: u32, size: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(src),
            NodeId(dst),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(90),
        )
    }

    fn state(id: u32) -> NodeState {
        NodeState::new(NodeId(id), 100_000, false)
    }

    #[test]
    fn meeting_probs_stay_normalised() {
        let mut r = MaxPropRouter::new(NodeId(0), 5, MaxPropConfig::default());
        r.record_meeting(NodeId(1));
        assert_eq!(r.meeting_prob(NodeId(1)), 1.0);
        r.record_meeting(NodeId(2));
        let sum: f64 = (0..5).map(|i| r.meeting_prob(NodeId(i))).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(r.meeting_prob(NodeId(1)) > r.meeting_prob(NodeId(3)));
        // Repeated meetings dominate.
        for _ in 0..10 {
            r.record_meeting(NodeId(1));
        }
        assert!(r.meeting_prob(NodeId(1)) > 0.8);
    }

    #[test]
    fn path_cost_via_intermediate() {
        // 0 meets 1 often; 1 meets 2 often; 0 never meets 2 directly.
        let mut r0 = MaxPropRouter::new(NodeId(0), 3, MaxPropConfig::default());
        let mut r1 = MaxPropRouter::new(NodeId(1), 3, MaxPropConfig::default());
        r1.record_meeting(NodeId(2));
        r1.record_meeting(NodeId(0));
        let d1 = r1.digest(&state(1), SimTime::ZERO);
        r0.on_contact_up(&mut state(0), NodeId(1), &d1, SimTime::ZERO);
        // Cost to 1: 1 − f^0_1 = 0. Cost to 2 via 1: (1−1) + (1−0.5) = 0.5.
        assert!(r0.path_cost(NodeId(1)) < 1e-9);
        assert!((r0.path_cost(NodeId(2)) - 0.5).abs() < 1e-9);
        // Metric is negated cost.
        assert!((r0.delivery_metric(NodeId(2), SimTime::ZERO).unwrap() + 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_destination_has_infinite_cost() {
        let r = MaxPropRouter::new(NodeId(0), 4, MaxPropConfig::default());
        assert!(r.path_cost(NodeId(3)).is_infinite());
    }

    #[test]
    fn acks_purge_buffers() {
        let mut r = MaxPropRouter::new(NodeId(0), 4, MaxPropConfig::default());
        let mut s = state(0);
        let mut rng = SimRng::seed_from_u64(1);
        r.on_message_created(&mut s, msg(7, 0, 3, 100), SimTime::ZERO, &mut rng);
        assert!(s.buffer.contains(MessageId(7)));
        // Peer digest carries an ack for message 7.
        let digest = Digest::MaxProp {
            probs: vec![],
            acks: vec![MessageId(7)],
        };
        let purged = r.on_contact_up(&mut s, NodeId(1), &digest, SimTime::ZERO);
        assert_eq!(purged.len(), 1);
        assert_eq!(purged[0].id, MessageId(7));
        assert!(!s.buffer.contains(MessageId(7)));
        // And the ack is now re-flooded in our own digest.
        match r.digest(&s, SimTime::ZERO) {
            Digest::MaxProp { acks, .. } => assert!(acks.contains(&MessageId(7))),
            other => panic!("wrong digest {other:?}"),
        }
    }

    #[test]
    fn acked_messages_rejected_on_receive_and_not_offered() {
        let mut r = MaxPropRouter::new(NodeId(1), 4, MaxPropConfig::default());
        let mut s = state(1);
        let mut rng = SimRng::seed_from_u64(1);
        r.acks.insert(MessageId(9));
        let out = r.on_message_received(
            &mut s,
            &msg(9, 0, 3, 100),
            NodeId(0),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(matches!(out, ReceiveOutcome::Rejected(_)));
        assert!(!s.buffer.contains(MessageId(9)));
    }

    #[test]
    fn delivery_creates_ack_and_discards_sender_copy() {
        let mut r = MaxPropRouter::new(NodeId(0), 4, MaxPropConfig::default());
        let mut s = state(0);
        let mut rng = SimRng::seed_from_u64(1);
        r.on_message_created(&mut s, msg(1, 0, 2, 100), SimTime::ZERO, &mut rng);
        r.on_transfer_success(&mut s, MessageId(1), NodeId(2), true, SimTime::ZERO);
        assert!(!s.buffer.contains(MessageId(1)));
        assert!(r.acked(MessageId(1)));
    }

    #[test]
    fn destination_receipt_creates_ack() {
        let mut r = MaxPropRouter::new(NodeId(2), 4, MaxPropConfig::default());
        let mut s = state(2);
        let mut rng = SimRng::seed_from_u64(1);
        let out = r.on_message_received(
            &mut s,
            &msg(1, 0, 2, 100),
            NodeId(0),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out, ReceiveOutcome::Delivered { first_time: true });
        assert!(r.acked(MessageId(1)));
    }

    #[test]
    fn schedule_prefers_peer_destination_then_cost() {
        let mut r = MaxPropRouter::new(NodeId(0), 5, MaxPropConfig::default());
        let mut s = state(0);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        // Learn: node 3 reachable cheaply, node 4 not at all.
        let mut r1 = MaxPropRouter::new(NodeId(1), 5, MaxPropConfig::default());
        r1.record_meeting(NodeId(3));
        let d1 = r1.digest(&state(1), now);
        r.on_contact_up(&mut s, NodeId(1), &d1, now);

        r.on_message_created(&mut s, msg(1, 0, 4, 100), now, &mut rng); // cost ∞
        r.on_message_created(&mut s, msg(2, 0, 3, 100), now, &mut rng); // cheap
        r.on_message_created(&mut s, msg(3, 0, 1, 100), now, &mut rng); // to peer

        let peer = state(1);
        let peer_router = MaxPropRouter::new(NodeId(1), 5, MaxPropConfig::default());
        // Message 3 goes first (peer is its destination).
        assert_eq!(
            r.next_transfer(
                &s,
                &peer,
                &peer_router,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(3))
        );
        // With it already offered, the cheap-cost message beats the
        // unreachable one.
        let mut offers = ContactOffers::new();
        offers.record(MessageId(3), s.buffer.handle_of(MessageId(3)).unwrap());
        assert_eq!(
            r.next_transfer(&s, &peer, &peer_router, &mut offers.view(0), now, &mut rng),
            Some(MessageId(2))
        );
    }

    #[test]
    fn threshold_grows_with_contact_stats() {
        let mut r = MaxPropRouter::new(NodeId(0), 5, MaxPropConfig::default());
        let mut s = state(0);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        // No stats yet → threshold 0.
        assert_eq!(r.threshold(&s), 0);
        // Buffer: two 1-hop messages of 100 B each and a fresh one.
        for (id, hops) in [(1u64, 0u32), (2, 1), (3, 4)] {
            let mut m = msg(id, 1, 4, 100);
            m.hops = hops;
            s.buffer.insert(m).unwrap();
        }
        // One closed contact with 400 B sent → budget 200 B → the two
        // lowest-hop messages fit → threshold = second msg hops + 1 = 2.
        r.on_contact_down(&mut s, NodeId(1), 400, now);
        assert_eq!(r.threshold(&s), 2);
        // Scheduling now prefers low-hop (head start) over cost.
        let peer = state(2);
        let pr = MaxPropRouter::new(NodeId(2), 5, MaxPropConfig::default());
        assert_eq!(
            r.next_transfer(
                &s,
                &peer,
                &pr,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1)),
            "lowest hop count first within the head start"
        );
    }

    #[test]
    fn victim_is_highest_cost_outside_head_start() {
        let mut r = MaxPropRouter::new(NodeId(0), 5, MaxPropConfig::default());
        let mut s = state(0);
        // Costs: dest 3 cheap, dest 4 unknown (∞).
        let mut r1 = MaxPropRouter::new(NodeId(1), 5, MaxPropConfig::default());
        r1.record_meeting(NodeId(3));
        let d1 = r1.digest(&state(1), SimTime::ZERO);
        r.on_contact_up(&mut s, NodeId(1), &d1, SimTime::ZERO);
        s.buffer.insert(msg(1, 0, 3, 100)).unwrap();
        s.buffer.insert(msg(2, 0, 4, 100)).unwrap();
        let victim = r.pick_victim(&s, 0).unwrap();
        assert_eq!(
            victim,
            MessageId(2),
            "unreachable destination dropped first"
        );
    }

    #[test]
    fn avg_contact_bytes_is_running_mean() {
        let mut r = MaxPropRouter::new(NodeId(0), 3, MaxPropConfig::default());
        let mut s = state(0);
        r.on_contact_down(&mut s, NodeId(1), 1000, SimTime::ZERO);
        r.on_contact_down(&mut s, NodeId(1), 3000, SimTime::ZERO);
        assert!((r.avg_contact_bytes - 2000.0).abs() < 1e-9);
    }
}

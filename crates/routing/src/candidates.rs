//! Delta-maintained per-direction routing candidate index.
//!
//! The PR 3 offer cursors made the *offered prefix* of a schedule order
//! cheap to skip, but a direction still rescanned its whole cached order
//! whenever the **peer's** buffer changed — on a saturated dense mesh that
//! rescan (mostly `peer.knows` hash hits) was the last super-constant cost
//! per membership change. [`CandidateIndex`] removes it: each direction of a
//! contact keeps the *set of messages still worth offering* —
//!
//! ```text
//! candidates(from → to) ⊇ { m ∈ from.buffer :
//!                           !offered(m) ∧ !to.knows(m) }
//! ```
//!
//! — sorted by the sender's [`SchedulingPolicy`] rank and **patched from
//! buffer deltas** ([`Buffer::deltas_since`]) instead of rebuilt: a routing
//! round after a single buffer change touches O(changes) entries, in the
//! wavefront style of processing only the changed frontier.
//!
//! # Ordering
//!
//! Entries are keyed `(rank, seq)` where `rank` is an order-preserving
//! `u64` encoding of the policy's sort key over **immutable** message
//! fields (absolute expiry — the PR 3 time-shift-invariant re-keying —
//! size, creation time, stored hop count) and `seq` is the sender buffer's
//! insertion sequence number, which encodes reception order. Lexicographic
//! `(rank, seq)` order is therefore exactly the stable sort
//! [`SchedulingPolicy::order`] performs — bit-identical scan results, not
//! just statistically equal ones.
//!
//! Since the arena refactor the index is **three parallel sorted columns
//! and nothing else** — `rank: u64`, `seq: u32`, arena handle: `u32`, 16
//! bytes per entry: removal deltas carry the removed copy's [`RankMeta`],
//! so the exact `(rank, seq)` key of the entry to delete is recomputed from
//! the delta (or from the sender's live meta) instead of being looked up in
//! a per-direction id→key hash map. Candidates are stored as [`MsgHandle`]s
//! into the world's shared [`MessageArena`] rather than 8-byte ids; the
//! scan resolves them lock-free. At 100k nodes the former id→key map was
//! the largest single consumer of contact memory, and index entries are the
//! most numerous per-contact records after it.
//!
//! # The superset invariant, and why staleness is safe
//!
//! The index is maintained as a **superset** of the true candidate set:
//! deliveries consumed at the peer (which change `to.delivered` without a
//! buffer delta) can leave stale entries behind. The scan re-applies the
//! router's own eligibility verdict to every entry it visits, so a stale
//! entry costs one check and is then pruned ([`Verdict::Never`]) — it can
//! never change which message is offered. What must *never* happen is a
//! missing true candidate; every mutation path below either keeps the entry
//! or is re-added by the delta that makes the message a candidate again
//! (e.g. a peer eviction replays as a receiver `Remove` delta and re-admits
//! the id).
//!
//! # Fallbacks
//!
//! * [`SchedulingPolicy::Random`] re-draws its permutation (and RNG stream)
//!   per call by contract, so it never uses the index — routers fall back
//!   to the full-rescan path (`ScheduleCache` + cursor-less scan), keeping
//!   the RNG stream bit-identical to the uncached engine.
//! * A generation discontinuity — consumer older than the delta ring,
//!   unwatched buffer, or a fresh contact — rebuilds the index from the
//!   sender's buffer in one O(B log B) pass, exactly what the first scan of
//!   a contact always cost.

use crate::offers::OfferedSet;
use crate::state::NodeState;
use vdtn_bundle::{
    Buffer, DeltaKind, MessageArena, MessageId, MsgHandle, RankMeta, ScheduleCache,
    SchedulingPolicy,
};

/// How a policy-driven router materialises its per-peer transmission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum RoutingBackend {
    /// Delta-maintained per-direction candidate sets (this PR; the
    /// default). `Random` scheduling transparently falls back to `Rescan`
    /// behaviour for RNG parity.
    #[default]
    Index,
    /// The PR 3 cursor-only path: generation-validated schedule cache plus
    /// per-contact resume cursors, full eligibility rescan per round. Kept
    /// as the equivalence reference and for the index-vs-cursor benches.
    Rescan,
}

/// A router's verdict on one candidate during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Offer this message now.
    Accept,
    /// This message can never become offerable to this peer during this
    /// contact (expired, larger than the peer's whole buffer, wrong
    /// destination for a direct protocol, spray quota exhausted, already
    /// consumed by the peer). The index drops the entry.
    Never,
    /// Not offerable right now, but a future state change could flip the
    /// verdict without a buffer delta (e.g. Spray-and-Focus recency
    /// utilities). The entry stays.
    NotNow,
}

/// Order-preserving `u64` encoding of a scheduling policy's sort key.
///
/// Descending keys are encoded as `u64::MAX - x`; every map is monotone and
/// injective per distinct key value, so `(rank, seq)` lexicographic order
/// equals the policy's stable sort over reception order.
fn rank_key(policy: SchedulingPolicy, m: &RankMeta) -> u64 {
    match policy {
        SchedulingPolicy::Fifo => 0, // seq (reception order) decides alone
        SchedulingPolicy::Random => {
            unreachable!("Random scheduling uses the full-rescan fallback")
        }
        SchedulingPolicy::LifetimeDesc => u64::MAX - m.expiry.as_millis(),
        SchedulingPolicy::LifetimeAsc => m.expiry.as_millis(),
        SchedulingPolicy::SmallestFirst => m.size,
        SchedulingPolicy::YoungestFirst => u64::MAX - m.created.as_millis(),
        SchedulingPolicy::FewestHops => m.hops as u64,
    }
}

/// One direction's sorted candidate set, patched from both endpoints'
/// buffer deltas (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    /// Policy rank of each entry; sorted lexicographically together with
    /// `seqs` (ranks alone may tie, `(rank, seq)` never does: `seq` is the
    /// sender buffer's insertion sequence number, never reused).
    ranks: Vec<u64>,
    /// Sender-buffer insertion sequence numbers, parallel to `ranks`.
    seqs: Vec<u32>,
    /// Arena handle of each candidate, parallel to `ranks`.
    handles: Vec<u32>,
    /// `(sender generation, receiver generation)` the index is synced to;
    /// `None` before the first build (or after a reset).
    synced: Option<(u64, u64)>,
}

impl CandidateIndex {
    /// Empty index; the first [`CandidateIndex::sync`] rebuilds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate ids in scheduling-rank order, resolved from `arena`
    /// (diagnostics and tests).
    pub fn ids_in_rank_order(&self, arena: &MessageArena) -> Vec<MessageId> {
        self.handles
            .iter()
            .map(|&h| arena.resolve(MsgHandle(h)).id)
            .collect()
    }

    /// Drop any state and force the next sync to rebuild.
    pub fn reset(&mut self) {
        self.ranks.clear();
        self.seqs.clear();
        self.handles.clear();
        self.synced = None;
    }

    /// A message was offered on this contact: it leaves both directions'
    /// candidate sets for good (TTL pruning of the offered set never makes
    /// an id re-offerable — ids are not reused and routers filter expired
    /// messages anyway). The rank key is not known here, so this is a
    /// linear handle scan — paid at most once per message per contact.
    pub fn on_offered(&mut self, handle: MsgHandle) {
        if let Some(pos) = self.handles.iter().position(|&h| h == handle.0) {
            self.remove_at(pos);
        }
    }

    /// Binary search of the parallel `(rank, seq)` columns.
    fn search(&self, key: (u64, u32)) -> Result<usize, usize> {
        let (mut lo, mut hi) = (0usize, self.ranks.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match (self.ranks[mid], self.seqs[mid]).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    fn insert_entry(&mut self, key: (u64, u32), handle: MsgHandle) {
        match self.search(key) {
            Ok(pos) => {
                // Already present: `(rank, seq)` keys identify one insert
                // event, so an exact hit is the same entry re-admitted.
                debug_assert_eq!(self.handles[pos], handle.0, "seq numbers are unique");
            }
            Err(pos) => {
                self.ranks.insert(pos, key.0);
                self.seqs.insert(pos, key.1);
                self.handles.insert(pos, handle.0);
            }
        }
    }

    /// Remove the entry with exactly this `(rank, seq)` key, if present.
    /// Keys are unique per sender-buffer insert event, so an exact hit is
    /// necessarily the entry the delta concerns.
    fn remove_exact(&mut self, key: (u64, u32)) {
        if let Ok(pos) = self.search(key) {
            self.remove_at(pos);
        }
    }

    fn remove_at(&mut self, pos: usize) {
        self.ranks.remove(pos);
        self.seqs.remove(pos);
        self.handles.remove(pos);
    }

    fn rebuild(
        &mut self,
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &OfferedSet,
    ) {
        self.ranks.clear();
        self.seqs.clear();
        self.handles.clear();
        let mut entries: Vec<((u64, u32), u32)> = Vec::with_capacity(sender.len());
        for (id, handle, meta) in sender.rank_entries() {
            if offered.contains(id) || recv.knows(id) {
                continue;
            }
            entries.push(((rank_key(policy, &meta), meta.seq), handle.0));
        }
        entries.sort_unstable_by_key(|e| e.0);
        for (key, handle) in entries {
            self.ranks.push(key.0);
            self.seqs.push(key.1);
            self.handles.push(handle);
        }
    }

    /// Bring the index up to date with both endpoints' current buffer
    /// generations: patch from deltas when both logs prove the interval,
    /// rebuild otherwise.
    ///
    /// Per-delta rules (the "invalidation table" — see ARCHITECTURE.md):
    ///
    /// | delta | effect on `from → to` candidates |
    /// |---|---|
    /// | sender `Insert` | add, unless offered or `to.knows` it |
    /// | sender `Remove`/`Expire` | drop (exact key from the carried meta) |
    /// | receiver `Insert` | drop (peer now knows it; key from the sender's live meta) |
    /// | receiver `Remove`/`Expire` | re-admit, if the sender still holds it, it was never offered here, and the peer did not consume it |
    pub fn sync(
        &mut self,
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &OfferedSet,
    ) {
        let target = (sender.generation(), recv.buffer.generation());
        if self.synced == Some(target) {
            return;
        }
        let deltas = self.synced.and_then(|(s_gen, r_gen)| {
            Some((
                sender.deltas_since(s_gen)?,
                recv.buffer.deltas_since(r_gen)?,
            ))
        });
        let Some((s_deltas, r_deltas)) = deltas else {
            self.rebuild(policy, sender, recv, offered);
            self.synced = Some(target);
            return;
        };
        // Patching costs O(Δ) entry edits; a rebuild costs one pass over
        // the sender's buffer. Past that break-even point, rebuild.
        if s_deltas.len() + r_deltas.len() > sender.len() + 16 {
            self.rebuild(policy, sender, recv, offered);
            self.synced = Some(target);
            return;
        }
        for d in s_deltas.iter() {
            match d.kind {
                DeltaKind::Insert => {
                    if !offered.contains(d.id) && !recv.knows(d.id) {
                        // Handle and rank meta are read from the sender's
                        // live store (insert deltas carry no snapshot — a
                        // stored copy's meta is immutable): `None` means
                        // the copy was removed again later in this same
                        // replayed batch, and skipping the insert is exact
                        // because the matching removal delta below then
                        // no-ops on the never-inserted key.
                        if let (Some(handle), Some(meta)) =
                            (sender.handle_of(d.id), sender.rank_meta(d.id))
                        {
                            self.insert_entry((rank_key(policy, &meta), meta.seq), handle);
                        }
                    }
                }
                // The removal delta carries the copy's insertion-time meta,
                // which is exactly the key any live entry was inserted
                // under.
                DeltaKind::Remove(meta) | DeltaKind::Expire(meta) => {
                    self.remove_exact((rank_key(policy, &meta), meta.seq));
                }
            }
        }
        for d in r_deltas.iter() {
            match d.kind {
                DeltaKind::Insert => {
                    // After the sender pass above, a live entry's key always
                    // equals the sender's current meta for the id; no entry
                    // can remain for an id the sender no longer stores.
                    if let Some(meta) = sender.rank_meta(d.id) {
                        self.remove_exact((rank_key(policy, &meta), meta.seq));
                    }
                }
                DeltaKind::Remove(_) | DeltaKind::Expire(_) => {
                    if offered.contains(d.id) || recv.delivered.contains(&d.id) {
                        continue;
                    }
                    if let Some(meta) = sender.rank_meta(d.id) {
                        let handle = sender.handle_of(d.id).expect("id has rank meta");
                        self.insert_entry((rank_key(policy, &meta), meta.seq), handle);
                    }
                }
            }
        }
        self.synced = Some(target);
    }

    /// Walk the candidates in rank order (ids resolved lock-free from
    /// `arena`) and return the first the router accepts.
    /// [`Verdict::Never`] entries are pruned as they are visited, so
    /// rejected-forever candidates are paid for exactly once per contact.
    pub fn scan(
        &mut self,
        arena: &MessageArena,
        mut eligible: impl FnMut(MessageId) -> Verdict,
    ) -> Option<MessageId> {
        let mut found = None;
        let mut dead: Vec<usize> = Vec::new();
        for (pos, &h) in self.handles.iter().enumerate() {
            let id = arena.resolve(MsgHandle(h)).id;
            match eligible(id) {
                Verdict::Accept => {
                    found = Some(id);
                    break;
                }
                Verdict::Never => dead.push(pos),
                Verdict::NotNow => {}
            }
        }
        // Positions were collected in ascending order; removing from the
        // back keeps the remaining ones valid.
        for &pos in dead.iter().rev() {
            self.remove_at(pos);
        }
        found
    }
}

/// A policy-driven router's order source: the backend choice plus the
/// [`ScheduleCache`] that serves as the whole mechanism under `Rescan` and
/// as the `Random` fallback under `Index` (untouched otherwise).
#[derive(Debug, Clone, Default)]
pub struct CandidateSource {
    backend: RoutingBackend,
    /// The full-rescan cache, handed to the crate-internal `scan_policy`
    /// dispatcher through the accessor below.
    cache: ScheduleCache,
}

impl CandidateSource {
    /// Construct the source for a backend choice.
    pub fn new(backend: RoutingBackend) -> Self {
        CandidateSource {
            backend,
            cache: ScheduleCache::new(),
        }
    }

    /// Which backend this source implements.
    pub fn backend(&self) -> RoutingBackend {
        self.backend
    }

    /// The cache backing the full-rescan path.
    pub(crate) fn cache_mut(&mut self) -> &mut ScheduleCache {
        &mut self.cache
    }

    /// True when this source patches per-direction candidate indexes from
    /// buffer deltas under `scheduling` — the single definition behind
    /// every policy router's `Router::wants_buffer_deltas` and the
    /// condition for the scan dispatcher taking the index path.
    pub fn wants_deltas(&self, scheduling: SchedulingPolicy) -> bool {
        self.backend == RoutingBackend::Index && scheduling != SchedulingPolicy::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::Message;
    use vdtn_sim_core::{NodeId, SimDuration, SimTime};

    fn msg(id: u64, size: u64, created_s: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(ttl_min),
        )
    }

    fn fresh_candidates(
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &OfferedSet,
        now: SimTime,
    ) -> Vec<MessageId> {
        let mut rng = vdtn_sim_core::SimRng::seed_from_u64(0);
        policy
            .order(sender, now, &mut rng)
            .into_iter()
            .filter(|&id| !offered.contains(id) && !recv.knows(id))
            .collect()
    }

    #[test]
    fn patched_index_matches_fresh_rescan_order() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = OfferedSet::new();
        let mut index = CandidateIndex::new();
        let now = SimTime::ZERO;

        for (id, ttl) in [(1u64, 30u64), (2, 90), (3, 10), (4, 60)] {
            sender.insert(msg(id, 100, 0.0, ttl)).unwrap();
        }
        index.sync(SchedulingPolicy::LifetimeDesc, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(sender.arena()),
            fresh_candidates(
                SchedulingPolicy::LifetimeDesc,
                &sender,
                &recv,
                &offered,
                now
            )
        );

        // Patch path: one removal, one insert, one peer insert.
        sender.remove(MessageId(2)).unwrap();
        sender.insert(msg(5, 100, 0.0, 120)).unwrap();
        recv.buffer.insert(msg(4, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::LifetimeDesc, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(sender.arena()),
            fresh_candidates(
                SchedulingPolicy::LifetimeDesc,
                &sender,
                &recv,
                &offered,
                now
            )
        );
        assert_eq!(
            index.ids_in_rank_order(sender.arena()),
            [MessageId(5), MessageId(1), MessageId(3)]
        );
    }

    #[test]
    fn peer_eviction_readmits_a_candidate() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = OfferedSet::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        recv.buffer.insert(msg(1, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert!(
            index.ids_in_rank_order(sender.arena()).is_empty(),
            "peer knows it"
        );

        recv.buffer.remove(MessageId(1)).unwrap(); // peer evicted its copy
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(sender.arena()), [MessageId(1)]);
    }

    #[test]
    fn delivered_consumption_is_pruned_at_scan_time() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = OfferedSet::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(sender.arena()), [MessageId(1)]);

        // The peer consumes the message as destination: no buffer delta.
        recv.delivered.insert(MessageId(1));
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(sender.arena()),
            [MessageId(1)],
            "superset: stale entry allowed"
        );
        // The scan's verdict prunes it, and it never comes back — not even
        // via a later peer-buffer delta.
        let got = index.scan(sender.arena(), |id| {
            if recv.knows(id) {
                Verdict::Never
            } else {
                Verdict::Accept
            }
        });
        assert_eq!(got, None);
        assert!(index.ids_in_rank_order(sender.arena()).is_empty());
    }

    #[test]
    fn offered_ids_leave_both_sides_and_stay_out() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let recv = NodeState::new(NodeId(2), 100_000, false);
        let mut offered = OfferedSet::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        sender.insert(msg(2, 100, 0.0, 90)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        offered.insert(MessageId(1));
        index.on_offered(sender.handle_of(MessageId(1)).unwrap());
        assert_eq!(index.ids_in_rank_order(sender.arena()), [MessageId(2)]);
        // Re-sync with the offered id excluded from a rebuild too.
        index.reset();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(sender.arena()), [MessageId(2)]);
    }

    #[test]
    fn scan_prunes_never_and_keeps_not_now() {
        let mut sender = Buffer::new(100_000);
        let recv = NodeState::new(NodeId(2), 100_000, false);
        let offered = OfferedSet::new();
        let mut index = CandidateIndex::new();
        for id in 1..=3u64 {
            sender.insert(msg(id, 100, 0.0, 60)).unwrap();
        }
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        let got = index.scan(sender.arena(), |id| match id.0 {
            1 => Verdict::Never,
            2 => Verdict::NotNow,
            _ => Verdict::Accept,
        });
        assert_eq!(got, Some(MessageId(3)));
        assert_eq!(
            index.ids_in_rank_order(sender.arena()),
            [MessageId(2), MessageId(3)],
            "Never pruned, NotNow and the accepted id kept"
        );
    }

    #[test]
    fn discontinuity_falls_back_to_rebuild() {
        let mut sender = Buffer::new(u64::MAX);
        sender.watch();
        let recv = NodeState::new(NodeId(2), u64::MAX, false);
        let offered = OfferedSet::new();
        let mut index = CandidateIndex::new();
        sender.insert(msg(1, 1, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        // Blow past the delta ring.
        for i in 100..3_000u64 {
            sender.insert(msg(i, 1, 0.0, 60)).unwrap();
        }
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(sender.arena()).len(), sender.len());
        assert_eq!(index.ids_in_rank_order(sender.arena())[0], MessageId(1));
    }

    #[test]
    fn source_backend_dispatch() {
        assert_eq!(
            CandidateSource::new(RoutingBackend::Index).backend(),
            RoutingBackend::Index
        );
        assert_eq!(
            CandidateSource::new(RoutingBackend::Rescan).backend(),
            RoutingBackend::Rescan
        );
        assert_eq!(CandidateSource::default().backend(), RoutingBackend::Index);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdtn_bundle::Message;
    use vdtn_sim_core::{NodeId, SimDuration, SimRng, SimTime};

    /// All seven scheduling policies; `Random` exercises the fallback
    /// contract instead of the index.
    const POLICIES: [SchedulingPolicy; 7] = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::Random,
        SchedulingPolicy::LifetimeDesc,
        SchedulingPolicy::LifetimeAsc,
        SchedulingPolicy::SmallestFirst,
        SchedulingPolicy::YoungestFirst,
        SchedulingPolicy::FewestHops,
    ];

    proptest! {
        /// Issue satellite: under random interleaved inserts, removals,
        /// TTL expiries, peer-buffer churn, offered records, destination
        /// consumption and index/generation resets, the index's rank order
        /// equals a fresh `SchedulingPolicy::order` rescan (restricted to
        /// live candidates) for every policy, at every step. `Random` — the
        /// fallback policy — instead checks the index is bypassed by
        /// asserting the fresh order is a permutation (its order is drawn
        /// per call by contract and covered by the `ScheduleCache` suite).
        #[test]
        fn index_order_matches_fresh_rescan(
            policy_idx in 0usize..POLICIES.len(),
            ops in proptest::collection::vec(
                (0u64..25, 1u64..400, 0u64..90, 0u64..8),
                1..120,
            ),
        ) {
            let policy = POLICIES[policy_idx];
            let mut sender = Buffer::new(30_000);
            sender.watch();
            let mut recv = NodeState::new(NodeId(1), 30_000, false);
            recv.buffer.watch();
            let mut offered = OfferedSet::new();
            let mut index = CandidateIndex::new();
            let mut now = SimTime::ZERO;
            let mut rng = SimRng::seed_from_u64(11);
            for (id, size, ttl_min, action) in ops {
                match action {
                    0 | 1 => {
                        let mut m = Message::new(
                            MessageId(id),
                            NodeId(0),
                            NodeId(1),
                            size,
                            now,
                            SimDuration::from_mins(ttl_min + 1),
                        );
                        m.hops = (size % 5) as u32;
                        m.received = now;
                        if action == 0 {
                            let _ = sender.insert(m);
                        } else {
                            let _ = recv.buffer.insert(m);
                        }
                    }
                    2 => {
                        sender.remove(MessageId(id));
                    }
                    3 => {
                        recv.buffer.remove(MessageId(id));
                    }
                    4 => {
                        now += SimDuration::from_mins(ttl_min);
                        sender.drain_expired(now);
                        recv.buffer.drain_expired(now);
                        offered.prune_expired(now, sender.arena().as_ref());
                    }
                    5 => {
                        if sender.contains(MessageId(id)) && !offered.contains(MessageId(id)) {
                            offered.insert(MessageId(id));
                            index.on_offered(sender.handle_of(MessageId(id)).unwrap());
                        }
                    }
                    6 => {
                        // Destination consumption: delivered grows with no
                        // buffer delta. The index may keep a stale entry
                        // (superset invariant); prune it the way a real
                        // scan does before comparing.
                        recv.delivered.insert(MessageId(id));
                    }
                    _ => {
                        // Generation reset: a fresh index must rebuild and
                        // agree immediately.
                        index.reset();
                    }
                }
                if policy == SchedulingPolicy::Random {
                    let fresh = policy.order(&sender, now, &mut rng);
                    let mut sorted: Vec<u64> = fresh.iter().map(|m| m.0).collect();
                    sorted.sort_unstable();
                    let mut expected: Vec<u64> = sender.ids_in_order().map(|m| m.0).collect();
                    expected.sort_unstable();
                    prop_assert_eq!(sorted, expected, "Random stays a permutation");
                    continue;
                }
                index.sync(policy, &sender, &recv, &offered);
                // A real scan prunes peer-known entries via `Never`.
                index.scan(sender.arena(), |id| {
                    if recv.knows(id) {
                        Verdict::Never
                    } else {
                        Verdict::NotNow
                    }
                });
                let expected: Vec<MessageId> = policy
                    .order(&sender, now, &mut rng)
                    .into_iter()
                    .filter(|&id| !offered.contains(id) && !recv.knows(id))
                    .collect();
                prop_assert_eq!(index.ids_in_rank_order(sender.arena()), &expected[..]);
            }
        }
    }
}

//! Delta-maintained per-direction routing candidate index.
//!
//! The PR 3 offer cursors made the *offered prefix* of a schedule order
//! cheap to skip, but a direction still rescanned its whole cached order
//! whenever the **peer's** buffer changed — on a saturated dense mesh that
//! rescan (mostly `peer.knows` hash hits) was the last super-constant cost
//! per membership change. [`CandidateIndex`] removes it: each direction of a
//! contact keeps the *set of messages still worth offering* —
//!
//! ```text
//! candidates(from → to) ⊇ { m ∈ from.buffer :
//!                           !offered(m) ∧ !to.knows(m) }
//! ```
//!
//! — sorted by the sender's [`SchedulingPolicy`] rank and **patched from
//! buffer deltas** ([`Buffer::deltas_since`]) instead of rebuilt: a routing
//! round after a single buffer change touches O(changes) entries, in the
//! wavefront style of processing only the changed frontier.
//!
//! # Ordering
//!
//! Entries are keyed `(rank, seq)` where `rank` is an order-preserving
//! `u64` encoding of the policy's sort key over **immutable** message
//! fields (absolute expiry — the PR 3 time-shift-invariant re-keying —
//! size, creation time, stored hop count) and `seq` is the sender buffer's
//! insertion sequence number, which encodes reception order. Lexicographic
//! `(rank, seq)` order is therefore exactly the stable sort
//! [`SchedulingPolicy::order`] performs — bit-identical scan results, not
//! just statistically equal ones.
//!
//! # The superset invariant, and why staleness is safe
//!
//! The index is maintained as a **superset** of the true candidate set:
//! deliveries consumed at the peer (which change `to.delivered` without a
//! buffer delta) can leave stale entries behind. The scan re-applies the
//! router's own eligibility verdict to every entry it visits, so a stale
//! entry costs one check and is then pruned ([`Verdict::Never`]) — it can
//! never change which message is offered. What must *never* happen is a
//! missing true candidate; every mutation path below either keeps the entry
//! or is re-added by the delta that makes the message a candidate again
//! (e.g. a peer eviction replays as a receiver `Remove` delta and re-admits
//! the id).
//!
//! # Fallbacks
//!
//! * [`SchedulingPolicy::Random`] re-draws its permutation (and RNG stream)
//!   per call by contract, so it never uses the index — routers fall back
//!   to the full-rescan path (`ScheduleCache` + cursor-less scan), keeping
//!   the RNG stream bit-identical to the uncached engine.
//! * A generation discontinuity — consumer older than the delta ring,
//!   unwatched buffer, or a fresh contact — rebuilds the index from the
//!   sender's buffer in one O(B log B) pass, exactly what the first scan of
//!   a contact always cost.

use crate::state::NodeState;
use std::collections::HashMap;
use vdtn_bundle::{Buffer, DeltaKind, MessageId, RankMeta, ScheduleCache, SchedulingPolicy};
use vdtn_sim_core::SimTime;

/// How a policy-driven router materialises its per-peer transmission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingBackend {
    /// Delta-maintained per-direction candidate sets (this PR; the
    /// default). `Random` scheduling transparently falls back to `Rescan`
    /// behaviour for RNG parity.
    #[default]
    Index,
    /// The PR 3 cursor-only path: generation-validated schedule cache plus
    /// per-contact resume cursors, full eligibility rescan per round. Kept
    /// as the equivalence reference and for the index-vs-cursor benches.
    Rescan,
}

/// A router's verdict on one candidate during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Offer this message now.
    Accept,
    /// This message can never become offerable to this peer during this
    /// contact (expired, larger than the peer's whole buffer, wrong
    /// destination for a direct protocol, spray quota exhausted, already
    /// consumed by the peer). The index drops the entry.
    Never,
    /// Not offerable right now, but a future state change could flip the
    /// verdict without a buffer delta (e.g. Spray-and-Focus recency
    /// utilities). The entry stays.
    NotNow,
}

/// Order-preserving `u64` encoding of a scheduling policy's sort key.
///
/// Descending keys are encoded as `u64::MAX - x`; every map is monotone and
/// injective per distinct key value, so `(rank, seq)` lexicographic order
/// equals the policy's stable sort over reception order.
fn rank_key(policy: SchedulingPolicy, m: &RankMeta) -> u64 {
    match policy {
        SchedulingPolicy::Fifo => 0, // seq (reception order) decides alone
        SchedulingPolicy::Random => {
            unreachable!("Random scheduling uses the full-rescan fallback")
        }
        SchedulingPolicy::LifetimeDesc => u64::MAX - m.expiry.as_millis(),
        SchedulingPolicy::LifetimeAsc => m.expiry.as_millis(),
        SchedulingPolicy::SmallestFirst => m.size,
        SchedulingPolicy::YoungestFirst => u64::MAX - m.created.as_millis(),
        SchedulingPolicy::FewestHops => m.hops as u64,
    }
}

/// One direction's sorted candidate set, patched from both endpoints'
/// buffer deltas (see the [module docs](self)).
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    /// Sorted `(rank, seq)` keys, parallel to `ids`.
    keys: Vec<(u64, u64)>,
    /// Candidate ids in rank order, parallel to `keys`.
    ids: Vec<MessageId>,
    /// Membership guard and reverse lookup: id → its `(rank, seq)` key.
    members: HashMap<MessageId, (u64, u64)>,
    /// `(sender generation, receiver generation)` the index is synced to;
    /// `None` before the first build (or after a reset).
    synced: Option<(u64, u64)>,
}

impl CandidateIndex {
    /// Empty index; the first [`CandidateIndex::sync`] rebuilds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Candidate ids in scheduling-rank order (diagnostics and tests).
    pub fn ids_in_rank_order(&self) -> &[MessageId] {
        &self.ids
    }

    /// Drop any state and force the next sync to rebuild.
    pub fn reset(&mut self) {
        self.keys.clear();
        self.ids.clear();
        self.members.clear();
        self.synced = None;
    }

    /// A message was offered on this contact: it leaves both directions'
    /// candidate sets for good (TTL pruning of the offered set never makes
    /// an id re-offerable — ids are not reused and routers filter expired
    /// messages anyway).
    pub fn on_offered(&mut self, id: MessageId) {
        self.remove_entry(id);
    }

    fn insert_entry(&mut self, key: (u64, u64), id: MessageId) {
        if self.members.contains_key(&id) {
            return;
        }
        let pos = match self.keys.binary_search(&key) {
            Ok(_) => {
                debug_assert!(false, "seq numbers are unique per buffer");
                return;
            }
            Err(p) => p,
        };
        self.keys.insert(pos, key);
        self.ids.insert(pos, id);
        self.members.insert(id, key);
    }

    fn remove_entry(&mut self, id: MessageId) {
        if let Some(key) = self.members.remove(&id) {
            let pos = self
                .keys
                .binary_search(&key)
                .expect("member keys are present in the sorted vector");
            self.keys.remove(pos);
            self.ids.remove(pos);
        }
    }

    fn rebuild(
        &mut self,
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &HashMap<MessageId, SimTime>,
    ) {
        self.keys.clear();
        self.ids.clear();
        self.members.clear();
        let mut entries: Vec<((u64, u64), MessageId)> = Vec::with_capacity(sender.len());
        for id in sender.ids_in_order() {
            if offered.contains_key(&id) || recv.knows(id) {
                continue;
            }
            let meta = sender.rank_meta(id).expect("listed id has meta");
            entries.push(((rank_key(policy, &meta), meta.seq), id));
        }
        entries.sort_unstable_by_key(|e| e.0);
        for (key, id) in entries {
            self.keys.push(key);
            self.ids.push(id);
            self.members.insert(id, key);
        }
    }

    /// Bring the index up to date with both endpoints' current buffer
    /// generations: patch from deltas when both logs prove the interval,
    /// rebuild otherwise.
    ///
    /// Per-delta rules (the "invalidation table" — see ARCHITECTURE.md):
    ///
    /// | delta | effect on `from → to` candidates |
    /// |---|---|
    /// | sender `Insert` | add, unless offered or `to.knows` it |
    /// | sender `Remove`/`Expire` | drop |
    /// | receiver `Insert` | drop (peer now knows it) |
    /// | receiver `Remove`/`Expire` | re-admit, if the sender still holds it, it was never offered here, and the peer did not consume it |
    pub fn sync(
        &mut self,
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &HashMap<MessageId, SimTime>,
    ) {
        let target = (sender.generation(), recv.buffer.generation());
        if self.synced == Some(target) {
            return;
        }
        let deltas = self.synced.and_then(|(s_gen, r_gen)| {
            Some((
                sender.deltas_since(s_gen)?,
                recv.buffer.deltas_since(r_gen)?,
            ))
        });
        let Some((s_deltas, r_deltas)) = deltas else {
            self.rebuild(policy, sender, recv, offered);
            self.synced = Some(target);
            return;
        };
        // Patching costs O(Δ) entry edits; a rebuild costs one pass over
        // the sender's buffer. Past that break-even point, rebuild.
        if s_deltas.len() + r_deltas.len() > sender.len() + 16 {
            self.rebuild(policy, sender, recv, offered);
            self.synced = Some(target);
            return;
        }
        for d in s_deltas {
            match &d.kind {
                DeltaKind::Insert(meta) => {
                    if !offered.contains_key(&d.id) && !recv.knows(d.id) {
                        self.insert_entry((rank_key(policy, meta), meta.seq), d.id);
                    }
                }
                DeltaKind::Remove | DeltaKind::Expire => self.remove_entry(d.id),
            }
        }
        for d in r_deltas {
            match &d.kind {
                DeltaKind::Insert(_) => self.remove_entry(d.id),
                DeltaKind::Remove | DeltaKind::Expire => {
                    if offered.contains_key(&d.id) || recv.delivered.contains(&d.id) {
                        continue;
                    }
                    if let Some(meta) = sender.rank_meta(d.id) {
                        self.insert_entry((rank_key(policy, &meta), meta.seq), d.id);
                    }
                }
            }
        }
        self.synced = Some(target);
    }

    /// Walk the candidates in rank order and return the first the router
    /// accepts. [`Verdict::Never`] entries are pruned as they are visited,
    /// so rejected-forever candidates are paid for exactly once per
    /// contact.
    pub fn scan(&mut self, mut eligible: impl FnMut(MessageId) -> Verdict) -> Option<MessageId> {
        let mut found = None;
        let mut dead: Vec<MessageId> = Vec::new();
        for &id in &self.ids {
            match eligible(id) {
                Verdict::Accept => {
                    found = Some(id);
                    break;
                }
                Verdict::Never => dead.push(id),
                Verdict::NotNow => {}
            }
        }
        for id in dead {
            self.remove_entry(id);
        }
        found
    }
}

/// A policy-driven router's order source: the backend choice plus the
/// [`ScheduleCache`] that serves as the whole mechanism under `Rescan` and
/// as the `Random` fallback under `Index` (untouched otherwise).
#[derive(Debug, Clone, Default)]
pub struct CandidateSource {
    backend: RoutingBackend,
    /// The full-rescan cache, handed to the crate-internal `scan_policy`
    /// dispatcher through the accessor below.
    cache: ScheduleCache,
}

impl CandidateSource {
    /// Construct the source for a backend choice.
    pub fn new(backend: RoutingBackend) -> Self {
        CandidateSource {
            backend,
            cache: ScheduleCache::new(),
        }
    }

    /// Which backend this source implements.
    pub fn backend(&self) -> RoutingBackend {
        self.backend
    }

    /// The cache backing the full-rescan path.
    pub(crate) fn cache_mut(&mut self) -> &mut ScheduleCache {
        &mut self.cache
    }

    /// True when this source patches per-direction candidate indexes from
    /// buffer deltas under `scheduling` — the single definition behind
    /// every policy router's `Router::wants_buffer_deltas` and the
    /// condition for the scan dispatcher taking the index path.
    pub fn wants_deltas(&self, scheduling: SchedulingPolicy) -> bool {
        self.backend == RoutingBackend::Index && scheduling != SchedulingPolicy::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::Message;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, created_s: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(ttl_min),
        )
    }

    fn fresh_candidates(
        policy: SchedulingPolicy,
        sender: &Buffer,
        recv: &NodeState,
        offered: &HashMap<MessageId, SimTime>,
        now: SimTime,
    ) -> Vec<MessageId> {
        let mut rng = vdtn_sim_core::SimRng::seed_from_u64(0);
        policy
            .order(sender, now, &mut rng)
            .into_iter()
            .filter(|&id| !offered.contains_key(&id) && !recv.knows(id))
            .collect()
    }

    #[test]
    fn patched_index_matches_fresh_rescan_order() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = HashMap::new();
        let mut index = CandidateIndex::new();
        let now = SimTime::ZERO;

        for (id, ttl) in [(1u64, 30u64), (2, 90), (3, 10), (4, 60)] {
            sender.insert(msg(id, 100, 0.0, ttl)).unwrap();
        }
        index.sync(SchedulingPolicy::LifetimeDesc, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(),
            fresh_candidates(
                SchedulingPolicy::LifetimeDesc,
                &sender,
                &recv,
                &offered,
                now
            )
        );

        // Patch path: one removal, one insert, one peer insert.
        sender.remove(MessageId(2)).unwrap();
        sender.insert(msg(5, 100, 0.0, 120)).unwrap();
        recv.buffer.insert(msg(4, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::LifetimeDesc, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(),
            fresh_candidates(
                SchedulingPolicy::LifetimeDesc,
                &sender,
                &recv,
                &offered,
                now
            )
        );
        assert_eq!(
            index.ids_in_rank_order(),
            [MessageId(5), MessageId(1), MessageId(3)]
        );
    }

    #[test]
    fn peer_eviction_readmits_a_candidate() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = HashMap::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        recv.buffer.insert(msg(1, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert!(index.ids_in_rank_order().is_empty(), "peer knows it");

        recv.buffer.remove(MessageId(1)).unwrap(); // peer evicted its copy
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(), [MessageId(1)]);
    }

    #[test]
    fn delivered_consumption_is_pruned_at_scan_time() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let mut recv = NodeState::new(NodeId(2), 100_000, false);
        recv.buffer.watch();
        let offered = HashMap::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(), [MessageId(1)]);

        // The peer consumes the message as destination: no buffer delta.
        recv.delivered.insert(MessageId(1));
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(
            index.ids_in_rank_order(),
            [MessageId(1)],
            "superset: stale entry allowed"
        );
        // The scan's verdict prunes it, and it never comes back — not even
        // via a later peer-buffer delta.
        let got = index.scan(|id| {
            if recv.knows(id) {
                Verdict::Never
            } else {
                Verdict::Accept
            }
        });
        assert_eq!(got, None);
        assert!(index.ids_in_rank_order().is_empty());
    }

    #[test]
    fn offered_ids_leave_both_sides_and_stay_out() {
        let mut sender = Buffer::new(100_000);
        sender.watch();
        let recv = NodeState::new(NodeId(2), 100_000, false);
        let mut offered = HashMap::new();
        let mut index = CandidateIndex::new();

        sender.insert(msg(1, 100, 0.0, 60)).unwrap();
        sender.insert(msg(2, 100, 0.0, 90)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        offered.insert(MessageId(1), SimTime::from_secs_f64(3600.0));
        index.on_offered(MessageId(1));
        assert_eq!(index.ids_in_rank_order(), [MessageId(2)]);
        // Re-sync with the offered id excluded from a rebuild too.
        index.reset();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order(), [MessageId(2)]);
    }

    #[test]
    fn scan_prunes_never_and_keeps_not_now() {
        let mut sender = Buffer::new(100_000);
        let recv = NodeState::new(NodeId(2), 100_000, false);
        let offered = HashMap::new();
        let mut index = CandidateIndex::new();
        for id in 1..=3u64 {
            sender.insert(msg(id, 100, 0.0, 60)).unwrap();
        }
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        let got = index.scan(|id| match id.0 {
            1 => Verdict::Never,
            2 => Verdict::NotNow,
            _ => Verdict::Accept,
        });
        assert_eq!(got, Some(MessageId(3)));
        assert_eq!(
            index.ids_in_rank_order(),
            [MessageId(2), MessageId(3)],
            "Never pruned, NotNow and the accepted id kept"
        );
    }

    #[test]
    fn discontinuity_falls_back_to_rebuild() {
        let mut sender = Buffer::new(u64::MAX);
        sender.watch();
        let recv = NodeState::new(NodeId(2), u64::MAX, false);
        let offered = HashMap::new();
        let mut index = CandidateIndex::new();
        sender.insert(msg(1, 1, 0.0, 60)).unwrap();
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        // Blow past the delta ring.
        for i in 100..3_000u64 {
            sender.insert(msg(i, 1, 0.0, 60)).unwrap();
        }
        index.sync(SchedulingPolicy::Fifo, &sender, &recv, &offered);
        assert_eq!(index.ids_in_rank_order().len(), sender.len());
        assert_eq!(index.ids_in_rank_order()[0], MessageId(1));
    }

    #[test]
    fn source_backend_dispatch() {
        assert_eq!(
            CandidateSource::new(RoutingBackend::Index).backend(),
            RoutingBackend::Index
        );
        assert_eq!(
            CandidateSource::new(RoutingBackend::Rescan).backend(),
            RoutingBackend::Rescan
        );
        assert_eq!(CandidateSource::default().backend(), RoutingBackend::Index);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdtn_bundle::Message;
    use vdtn_sim_core::{NodeId, SimDuration, SimRng};

    /// All seven scheduling policies; `Random` exercises the fallback
    /// contract instead of the index.
    const POLICIES: [SchedulingPolicy; 7] = [
        SchedulingPolicy::Fifo,
        SchedulingPolicy::Random,
        SchedulingPolicy::LifetimeDesc,
        SchedulingPolicy::LifetimeAsc,
        SchedulingPolicy::SmallestFirst,
        SchedulingPolicy::YoungestFirst,
        SchedulingPolicy::FewestHops,
    ];

    proptest! {
        /// Issue satellite: under random interleaved inserts, removals,
        /// TTL expiries, peer-buffer churn, offered records, destination
        /// consumption and index/generation resets, the index's rank order
        /// equals a fresh `SchedulingPolicy::order` rescan (restricted to
        /// live candidates) for every policy, at every step. `Random` — the
        /// fallback policy — instead checks the index is bypassed by
        /// asserting the fresh order is a permutation (its order is drawn
        /// per call by contract and covered by the `ScheduleCache` suite).
        #[test]
        fn index_order_matches_fresh_rescan(
            policy_idx in 0usize..POLICIES.len(),
            ops in proptest::collection::vec(
                (0u64..25, 1u64..400, 0u64..90, 0u64..8),
                1..120,
            ),
        ) {
            let policy = POLICIES[policy_idx];
            let mut sender = Buffer::new(30_000);
            sender.watch();
            let mut recv = NodeState::new(NodeId(1), 30_000, false);
            recv.buffer.watch();
            let mut offered: HashMap<MessageId, SimTime> = HashMap::new();
            let mut index = CandidateIndex::new();
            let mut now = SimTime::ZERO;
            let mut rng = SimRng::seed_from_u64(11);
            for (id, size, ttl_min, action) in ops {
                match action {
                    0 | 1 => {
                        let mut m = Message::new(
                            MessageId(id),
                            NodeId(0),
                            NodeId(1),
                            size,
                            now,
                            SimDuration::from_mins(ttl_min + 1),
                        );
                        m.hops = (size % 5) as u32;
                        m.received = now;
                        if action == 0 {
                            let _ = sender.insert(m);
                        } else {
                            let _ = recv.buffer.insert(m);
                        }
                    }
                    2 => {
                        sender.remove(MessageId(id));
                    }
                    3 => {
                        recv.buffer.remove(MessageId(id));
                    }
                    4 => {
                        now += SimDuration::from_mins(ttl_min);
                        sender.drain_expired(now);
                        recv.buffer.drain_expired(now);
                        offered.retain(|_, e| *e > now);
                    }
                    5 => {
                        if sender.contains(MessageId(id)) && !offered.contains_key(&MessageId(id)) {
                            let expiry = sender.get(MessageId(id)).unwrap().expiry();
                            offered.insert(MessageId(id), expiry);
                            index.on_offered(MessageId(id));
                        }
                    }
                    6 => {
                        // Destination consumption: delivered grows with no
                        // buffer delta. The index may keep a stale entry
                        // (superset invariant); prune it the way a real
                        // scan does before comparing.
                        recv.delivered.insert(MessageId(id));
                    }
                    _ => {
                        // Generation reset: a fresh index must rebuild and
                        // agree immediately.
                        index.reset();
                    }
                }
                if policy == SchedulingPolicy::Random {
                    let fresh = policy.order(&sender, now, &mut rng);
                    let mut sorted: Vec<u64> = fresh.iter().map(|m| m.0).collect();
                    sorted.sort_unstable();
                    let mut expected: Vec<u64> = sender.ids_in_order().map(|m| m.0).collect();
                    expected.sort_unstable();
                    prop_assert_eq!(sorted, expected, "Random stays a permutation");
                    continue;
                }
                index.sync(policy, &sender, &recv, &offered);
                // A real scan prunes peer-known entries via `Never`.
                index.scan(|id| {
                    if recv.knows(id) {
                        Verdict::Never
                    } else {
                        Verdict::NotNow
                    }
                });
                let expected: Vec<MessageId> = policy
                    .order(&sender, now, &mut rng)
                    .into_iter()
                    .filter(|&id| !offered.contains_key(&id) && !recv.knows(id))
                    .collect();
                prop_assert_eq!(index.ids_in_rank_order(), &expected[..]);
            }
        }
    }
}

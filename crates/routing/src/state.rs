//! The router-visible node state.

use std::collections::HashSet;
use std::sync::Arc;
use vdtn_bundle::{Buffer, MessageArena, MessageId};
use vdtn_sim_core::NodeId;

/// Everything about a node that routing logic may read or mutate.
///
/// Positions, radios and movement live in the engine; routers only see the
/// store-and-forward state. Keeping this separate from the router objects is
/// what lets the engine borrow "node A's state, node B's state, and both
/// routers" simultaneously without interior mutability.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identity.
    pub id: NodeId,
    /// Message store.
    pub buffer: Buffer,
    /// True for stationary relay nodes (they never originate traffic and are
    /// never message destinations in the paper's workload, but store and
    /// forward like any other node).
    pub is_relay: bool,
    /// Messages this node has received as final destination. Consulted by
    /// senders as part of the summary-vector exchange so delivered messages
    /// are not re-offered (mirrors ONE's `DENIED_OLD` handshake).
    pub delivered: HashSet<MessageId>,
}

impl NodeState {
    /// Create a node with an empty buffer of `capacity` bytes (backed by a
    /// private metadata arena; see [`NodeState::with_arena`]).
    pub fn new(id: NodeId, capacity: u64, is_relay: bool) -> Self {
        NodeState {
            id,
            buffer: Buffer::new(capacity),
            is_relay,
            delivered: HashSet::new(),
        }
    }

    /// Create a node whose buffer shares `arena` with every other node in
    /// the world, so each logical message's immutable metadata is interned
    /// once no matter how many replicas the routers spread.
    pub fn with_arena(id: NodeId, capacity: u64, is_relay: bool, arena: Arc<MessageArena>) -> Self {
        NodeState {
            id,
            buffer: Buffer::with_arena(capacity, arena),
            is_relay,
            delivered: HashSet::new(),
        }
    }

    /// True if this node has a copy of `id` or has already consumed it as
    /// the destination — i.e. offering it is pointless.
    pub fn knows(&self, id: MessageId) -> bool {
        self.buffer.contains(id) || self.delivered.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::Message;
    use vdtn_sim_core::{SimDuration, SimTime};

    #[test]
    fn knows_covers_buffer_and_delivered() {
        let mut s = NodeState::new(NodeId(3), 1_000, false);
        assert!(!s.knows(MessageId(1)));
        s.buffer
            .insert(Message::new(
                MessageId(1),
                NodeId(0),
                NodeId(3),
                10,
                SimTime::ZERO,
                SimDuration::from_mins(1),
            ))
            .unwrap();
        assert!(s.knows(MessageId(1)));
        s.delivered.insert(MessageId(2));
        assert!(s.knows(MessageId(2)));
    }
}

//! Spray and Focus routing (Spyropoulos et al. 2007) — extension protocol.
//!
//! Identical spray phase to binary Spray and Wait, but instead of *waiting*
//! once a single copy remains, the copy is *focused*: handed off (moved, not
//! copied) to any peer whose utility for the destination is higher. Utility
//! is last-encounter recency — a node that met the destination more recently
//! is a better custodian. This fixes Spray-and-Wait's weakness in scenarios
//! where the source's spray never reaches the destination's neighbourhood,
//! and is the natural "future work" extension of the paper's SnW results.

use crate::candidates::{CandidateSource, RoutingBackend, Verdict};
use crate::offers::OfferView;
use crate::router::{CreateOutcome, ReceiveOutcome, Router, RouterSnapshot};
use crate::state::NodeState;
use crate::util::{make_room_and_store, policy_victim, scan_policy, standard_receive};
use vdtn_bundle::{Message, MessageId, PolicyCombo, SchedulingPolicy};
use vdtn_sim_core::{NodeId, SimRng, SimTime, StateHash};

/// Quota-replication router with utility-based focus phase.
pub struct SprayAndFocusRouter {
    initial_copies: u32,
    policy: PolicyCombo,
    /// `last_met[d]` = time this node last encountered node `d` directly.
    last_met: Vec<Option<SimTime>>,
    /// Bumped on every `last_met` write; the focus-phase eligibility
    /// compares recencies, so this is the router's routing generation.
    met_gen: u64,
    source: CandidateSource,
}

impl SprayAndFocusRouter {
    /// Create with spray quota `L = initial_copies` (binary halving).
    /// `_own` is accepted for factory-signature uniformity.
    pub fn new(own: NodeId, n_nodes: usize, initial_copies: u32, policy: PolicyCombo) -> Self {
        Self::with_backend(
            own,
            n_nodes,
            initial_copies,
            policy,
            RoutingBackend::default(),
        )
    }

    /// Create with an explicit scan backend (benches, equivalence tests).
    pub fn with_backend(
        _own: NodeId,
        n_nodes: usize,
        initial_copies: u32,
        policy: PolicyCombo,
        backend: RoutingBackend,
    ) -> Self {
        assert!(initial_copies >= 1, "spray quota must be at least 1");
        SprayAndFocusRouter {
            initial_copies,
            policy,
            last_met: vec![None; n_nodes],
            met_gen: 0,
            source: CandidateSource::new(backend),
        }
    }

    /// Utility for delivering to `dest`: seconds since we last met it
    /// (lower = better), `None` if never met.
    pub fn recency_secs(&self, dest: NodeId, now: SimTime) -> Option<f64> {
        self.last_met[dest.index()].map(|t| now.since(t).as_secs_f64())
    }
}

/// Spray-and-Focus eligibility verdict, shared by the serial and parallel
/// scan paths so both decide identically. A failed *utility* comparison is
/// the one non-permanent rejection in the policy routers — recency tables
/// move without a buffer delta — so it keeps the candidate (`NotNow`);
/// everything else is final.
fn focus_verdict<'a>(
    own: &'a NodeState,
    peer: &'a NodeState,
    peer_router: &'a dyn Router,
    last_met: &'a [Option<SimTime>],
    now: SimTime,
) -> impl FnMut(MessageId) -> Verdict + 'a {
    move |id| {
        if peer.knows(id) {
            return Verdict::Never;
        }
        let msg = own.buffer.get(id).expect("ordered id is stored");
        if msg.is_expired(now) || !peer.buffer.could_fit(msg.size) {
            return Verdict::Never;
        }
        if msg.dst == peer.id || msg.copies > 1 {
            return Verdict::Accept; // direct delivery or spray phase
        }
        // Focus phase: hand off the single copy only if the peer has
        // strictly better (more recent) last-encounter utility.
        let peer_recency = peer_router.delivery_metric(msg.dst, now);
        let own_recency = last_met[msg.dst.index()]
            .map(|t| -now.since(t).as_secs_f64())
            .unwrap_or(f64::NEG_INFINITY);
        if matches!(peer_recency, Some(p) if p > own_recency) {
            Verdict::Accept
        } else {
            Verdict::NotNow
        }
    }
}

impl Router for SprayAndFocusRouter {
    fn kind_label(&self) -> &'static str {
        "Spray and Focus"
    }

    fn routing_generation(&self) -> u64 {
        self.met_gen
    }

    fn next_transfer_draws_rng(&self) -> bool {
        self.policy.scheduling == SchedulingPolicy::Random
    }

    fn wants_buffer_deltas(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        mut msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        msg.copies = self.initial_copies;
        match make_room_and_store(own, msg, policy_victim(self.policy.dropping, now, rng)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn on_contact_up(
        &mut self,
        _own: &mut NodeState,
        peer: NodeId,
        _peer_digest: &crate::router::Digest,
        now: SimTime,
    ) -> Vec<Message> {
        self.last_met[peer.index()] = Some(now);
        self.met_gen += 1;
        Vec::new()
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId> {
        // Split borrows: the scan holds the source mutably while the
        // eligibility check reads the encounter table.
        scan_policy(
            &mut self.source,
            self.policy.scheduling,
            &own.buffer,
            peer,
            offers,
            now,
            rng,
            focus_verdict(own, peer, peer_router, &self.last_met, now),
        )
    }

    fn scan_is_shared(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        debug_assert!(self.scan_is_shared());
        offers.scan_index(
            self.policy.scheduling,
            &own.buffer,
            peer,
            focus_verdict(own, peer, peer_router, &self.last_met, now),
        )
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        self.last_met[from.index()] = Some(now);
        self.met_gen += 1;
        let mut incoming = *msg;
        // Spray phase splits the quota; focus phase moves the whole copy.
        incoming.copies = if msg.copies > 1 {
            (msg.copies / 2).max(1)
        } else {
            1
        };
        standard_receive(
            own,
            &incoming,
            now,
            policy_victim(self.policy.dropping, now, rng),
        )
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        if delivered {
            own.buffer.remove(msg_id);
            return;
        }
        let Some(copies) = own.buffer.copies_mut(msg_id) else {
            return;
        };
        if *copies > 1 {
            // Spray: keep the ceiling half.
            *copies -= *copies / 2;
        } else {
            // Focus: the copy moved to the better custodian.
            own.buffer.remove(msg_id);
        }
    }

    fn delivery_metric(&self, dest: NodeId, now: SimTime) -> Option<f64> {
        // Negated recency: higher (closer to zero) = met more recently.
        self.recency_secs(dest, now).map(|s| -s)
    }

    fn hash_state(&self, h: &mut StateHash) {
        // The encounter table is the only semantic state; `met_gen` and the
        // candidate-source cache are within-run bookkeeping.
        h.write_len(self.last_met.len());
        for met in &self.last_met {
            match met {
                Some(t) => {
                    h.write_bool(true);
                    h.write_u64(t.as_millis());
                }
                None => h.write_bool(false),
            }
        }
    }

    fn snapshot_state(&self) -> RouterSnapshot {
        RouterSnapshot::SprayFocus {
            last_met: self.last_met.clone(),
        }
    }

    fn restore_state(&mut self, snap: RouterSnapshot) {
        match snap {
            RouterSnapshot::SprayFocus { last_met } => {
                assert_eq!(last_met.len(), self.last_met.len(), "node count mismatch");
                self.last_met = last_met;
                self.met_gen = 0;
            }
            other => panic!("Spray and Focus cannot restore {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn msg(id: u64, dst: u32, copies: u32) -> Message {
        let mut m = Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(dst),
            100,
            SimTime::ZERO,
            SimDuration::from_mins(90),
        );
        m.copies = copies;
        m
    }

    fn setup() -> (
        SprayAndFocusRouter,
        SprayAndFocusRouter,
        NodeState,
        NodeState,
    ) {
        (
            SprayAndFocusRouter::new(NodeId(1), 10, 8, PolicyCombo::LIFETIME),
            SprayAndFocusRouter::new(NodeId(2), 10, 8, PolicyCombo::LIFETIME),
            NodeState::new(NodeId(1), 100_000, false),
            NodeState::new(NodeId(2), 100_000, false),
        )
    }

    #[test]
    fn spray_phase_behaves_like_snw() {
        let (mut a, b, mut sa, sb) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        a.on_message_created(&mut sa, msg(1, 9, 0), t(0.0), &mut rng);
        assert_eq!(sa.buffer.get(MessageId(1)).unwrap().copies, 8);
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                t(0.0),
                &mut rng
            ),
            Some(MessageId(1))
        );
        a.on_transfer_success(&mut sa, MessageId(1), NodeId(2), false, t(0.0));
        assert_eq!(sa.buffer.get(MessageId(1)).unwrap().copies, 4);
    }

    #[test]
    fn focus_phase_moves_to_better_custodian() {
        let (mut a, mut b, mut sa, mut sb) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        sa.buffer.insert(msg(1, 9, 1)).unwrap();

        // Peer never met node 9: no handoff.
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                t(100.0),
                &mut rng
            ),
            None
        );
        // Peer met node 9 at t = 50: handoff happens.
        b.on_contact_up(&mut sb, NodeId(9), &crate::router::Digest::None, t(50.0));
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                t(100.0),
                &mut rng
            ),
            Some(MessageId(1))
        );
        // After the handoff the single copy is gone from the sender.
        a.on_transfer_success(&mut sa, MessageId(1), NodeId(2), false, t(100.0));
        assert!(!sa.buffer.contains(MessageId(1)));
    }

    #[test]
    fn focus_requires_strictly_better_utility() {
        let (mut a, mut b, mut sa, mut sb) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        sa.buffer.insert(msg(1, 9, 1)).unwrap();
        // Both met node 9, but we met it more recently.
        a.on_contact_up(&mut sa, NodeId(9), &crate::router::Digest::None, t(80.0));
        b.on_contact_up(&mut sb, NodeId(9), &crate::router::Digest::None, t(50.0));
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                t(100.0),
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn destination_contact_always_wins() {
        let (mut a, _, mut sa, _) = setup();
        let b_dest = SprayAndFocusRouter::new(NodeId(9), 10, 8, PolicyCombo::LIFETIME);
        let sb_dest = NodeState::new(NodeId(9), 100_000, false);
        let mut rng = SimRng::seed_from_u64(1);
        sa.buffer.insert(msg(1, 9, 1)).unwrap();
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb_dest,
                &b_dest,
                &mut ContactOffers::new().view(0),
                t(5.0),
                &mut rng
            ),
            Some(MessageId(1))
        );
        a.on_transfer_success(&mut sa, MessageId(1), NodeId(9), true, t(5.0));
        assert!(sa.buffer.is_empty());
    }

    #[test]
    fn receive_updates_encounter_table() {
        let (mut a, _, mut sa, _) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        let m = msg(1, 9, 4);
        a.on_message_received(&mut sa, &m, NodeId(3), t(42.0), &mut rng);
        assert_eq!(a.recency_secs(NodeId(3), t(52.0)), Some(10.0));
        // Received copy took half the quota.
        assert_eq!(sa.buffer.get(MessageId(1)).unwrap().copies, 2);
    }
}

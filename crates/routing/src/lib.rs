//! DTN routing protocols.
//!
//! Implements the four protocols the paper evaluates plus two classic
//! baselines, all behind the object-safe [`Router`] trait driven by the
//! engine in the `vdtn` crate:
//!
//! | Protocol | Replication | Scheduling / dropping |
//! |---|---|---|
//! | [`EpidemicRouter`] | unlimited flooding | pluggable [`PolicyCombo`] (the paper's experiment) |
//! | [`SprayAndWaitRouter`] | quota `L` (binary halving) | pluggable [`PolicyCombo`] |
//! | [`ProphetRouter`] | probabilistic (GRTRMax) | own: forward by peer delivery predictability, drop FIFO |
//! | [`MaxPropRouter`] | flooding + acks | own: hop-count head start, then path cost; drop by cost |
//! | [`DirectDeliveryRouter`] | none | pluggable |
//! | [`FirstContactRouter`] | single moving copy | pluggable |
//!
//! The trait's flows are data-oriented: every mutation reports what was
//! evicted / delivered / rejected back to the engine, which owns all metric
//! accounting.

pub mod direct;
pub mod epidemic;
pub mod maxprop;
pub mod prophet;
pub mod router;
pub mod snw;
pub mod sprayfocus;
pub mod state;
pub(crate) mod util;

pub use direct::{DirectDeliveryRouter, FirstContactRouter};
pub use epidemic::EpidemicRouter;
pub use maxprop::{MaxPropConfig, MaxPropRouter};
pub use prophet::{ProphetConfig, ProphetRouter};
pub use router::{
    CreateOutcome, Digest, ReceiveOutcome, RejectReason, Router, RouterKind,
};
pub use snw::SprayAndWaitRouter;
pub use sprayfocus::SprayAndFocusRouter;
pub use state::NodeState;

// Re-export for downstream convenience: routing configs embed policies.
pub use vdtn_bundle::PolicyCombo;

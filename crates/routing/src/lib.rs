//! DTN routing protocols.
//!
//! Implements the four protocols the paper evaluates plus two classic
//! baselines, all behind the object-safe [`Router`] trait driven by the
//! engine in the `vdtn` crate:
//!
//! | Protocol | Replication | Scheduling / dropping |
//! |---|---|---|
//! | [`EpidemicRouter`] | unlimited flooding | pluggable [`PolicyCombo`] (the paper's experiment) |
//! | [`SprayAndWaitRouter`] | quota `L` (binary halving) | pluggable [`PolicyCombo`] |
//! | [`ProphetRouter`] | probabilistic (GRTRMax) | own: forward by peer delivery predictability, drop FIFO |
//! | [`MaxPropRouter`] | flooding + acks | own: hop-count head start, then path cost; drop by cost |
//! | [`DirectDeliveryRouter`] | none | pluggable |
//! | [`FirstContactRouter`] | single moving copy | pluggable |
//!
//! The trait's flows are data-oriented: every mutation reports what was
//! evicted / delivered / rejected back to the engine, which owns all metric
//! accounting.
//!
//! # Example
//!
//! ```
//! use vdtn_bundle::{Message, MessageId, PolicyCombo};
//! use vdtn_routing::{NodeState, RouterKind};
//! use vdtn_sim_core::{NodeId, SimDuration, SimRng, SimTime};
//!
//! // An Epidemic router for node 0 in a 10-node world.
//! let mut router = RouterKind::Epidemic.build(NodeId(0), 10, PolicyCombo::FIFO_FIFO);
//! let mut state = NodeState::new(NodeId(0), 1_000_000, false);
//! let mut rng = SimRng::seed_from_u64(1);
//! let outcome = router.on_message_created(
//!     &mut state,
//!     Message::new(
//!         MessageId(1),
//!         NodeId(0),
//!         NodeId(3),
//!         500_000,
//!         SimTime::ZERO,
//!         SimDuration::from_mins(60),
//!     ),
//!     SimTime::ZERO,
//!     &mut rng,
//! );
//! assert!(outcome.stored);
//! assert_eq!(state.buffer.len(), 1);
//! ```

pub mod candidates;
pub mod direct;
pub mod epidemic;
pub mod maxprop;
pub mod offers;
pub mod prophet;
pub mod router;
pub mod snw;
pub mod sprayfocus;
pub mod state;
pub(crate) mod util;

pub use candidates::{CandidateIndex, CandidateSource, RoutingBackend, Verdict};
pub use direct::{DirectDeliveryRouter, FirstContactRouter};
pub use epidemic::EpidemicRouter;
pub use maxprop::{MaxPropConfig, MaxPropRouter};
pub use offers::{ContactOffers, OfferView};
pub use prophet::{ProphetConfig, ProphetRouter};
pub use router::{
    CreateOutcome, Digest, ReceiveOutcome, RejectReason, Router, RouterKind, RouterSnapshot,
};
pub use snw::SprayAndWaitRouter;
pub use sprayfocus::SprayAndFocusRouter;
pub use state::NodeState;

// Re-export for downstream convenience: routing configs embed policies.
pub use vdtn_bundle::PolicyCombo;

//! PRoPHET routing (Lindgren et al., draft-irtf-dtnrg-prophet).
//!
//! Probabilistic routing using a history of encounters and transitivity.
//! Each node maintains a delivery predictability `P(a, b) ∈ [0, 1]` for
//! every other node, updated by three rules:
//!
//! * **encounter**: `P(a,b) ← P(a,b) + (1 − P(a,b)) · P_init`
//! * **aging**: `P(a,b) ← P(a,b) · γ^k` with `k` elapsed time units
//! * **transitivity**: `P(a,c) ← P(a,c) + (1 − P(a,c)) · P(a,b) · P(b,c) · β`
//!
//! Forwarding uses the **GRTRMax** strategy the paper selects: a message is
//! offered to a peer only if the peer's predictability for the destination
//! exceeds ours, and candidates are offered in descending order of the
//! peer's predictability. Buffer eviction is oldest-first (reception FIFO),
//! matching the ONE implementation the paper ran.
//!
//! Aging is applied lazily per entry (each entry stores its last-update
//! time), which is numerically identical to per-tick aging but O(1) per
//! access instead of O(n) per tick.

use crate::offers::OfferView;
use crate::router::{CreateOutcome, Digest, ReceiveOutcome, Router, RouterSnapshot};
use crate::state::NodeState;
use crate::util::{make_room_and_store, standard_receive};
use serde::{Deserialize, Serialize};
use vdtn_bundle::{DropPolicy, Message, MessageId};
use vdtn_sim_core::{NodeId, SimRng, SimTime, StateHash};

/// PRoPHET parameters (defaults from the draft / ONE).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProphetConfig {
    /// Encounter reinforcement `P_init`.
    pub p_init: f64,
    /// Transitivity scaling `β`.
    pub beta: f64,
    /// Aging base `γ` per time unit.
    pub gamma: f64,
    /// Seconds per aging time unit.
    pub time_unit_secs: f64,
}

impl Default for ProphetConfig {
    fn default() -> Self {
        ProphetConfig {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            time_unit_secs: 30.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    p: f64,
    last_update: SimTime,
}

/// Memoised digest payload: `(table generation, timestamp, entries)`.
type ProphetDigestCache = (u64, SimTime, Vec<(NodeId, f64)>);

/// Probabilistic router with GRTRMax forwarding.
pub struct ProphetRouter {
    own: NodeId,
    cfg: ProphetConfig,
    /// `table[d]` = predictability of delivering to node `d`.
    table: Vec<Entry>,
    /// Monotone counter bumped on every table mutation; keys `digest_cache`.
    table_gen: u64,
    /// Memoised digest vector: valid while `(table_gen, now)` both match —
    /// aged predictabilities are time-dependent, so the timestamp is part of
    /// the key. Saves the per-entry `powf` rebuild when several contacts of
    /// this node come up in the same tick.
    digest_cache: Option<ProphetDigestCache>,
}

impl ProphetRouter {
    /// Create a router for node `own` in a network of `n_nodes` nodes.
    pub fn new(own: NodeId, n_nodes: usize, cfg: ProphetConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.p_init));
        assert!((0.0..=1.0).contains(&cfg.beta));
        assert!((0.0..1.0).contains(&cfg.gamma) || cfg.gamma == 1.0);
        assert!(cfg.time_unit_secs > 0.0);
        ProphetRouter {
            own,
            cfg,
            table: vec![
                Entry {
                    p: 0.0,
                    last_update: SimTime::ZERO,
                };
                n_nodes
            ],
            table_gen: 0,
            digest_cache: None,
        }
    }

    /// Aged predictability for `dest` at `now` (read-only).
    pub fn predictability(&self, dest: NodeId, now: SimTime) -> f64 {
        let e = &self.table[dest.index()];
        self.aged(e, now)
    }

    fn aged(&self, e: &Entry, now: SimTime) -> f64 {
        if e.p == 0.0 {
            return 0.0;
        }
        let k = now.since(e.last_update).as_secs_f64() / self.cfg.time_unit_secs;
        e.p * self.cfg.gamma.powf(k)
    }

    fn age_in_place(&mut self, dest: usize, now: SimTime) {
        let aged = self.aged(&self.table[dest], now);
        self.table[dest] = Entry {
            p: aged,
            last_update: now,
        };
    }

    fn on_encounter(&mut self, peer: NodeId, now: SimTime) {
        self.table_gen += 1;
        self.age_in_place(peer.index(), now);
        let e = &mut self.table[peer.index()];
        e.p += (1.0 - e.p) * self.cfg.p_init;
    }

    fn apply_transitivity(&mut self, peer: NodeId, peer_probs: &[(NodeId, f64)], now: SimTime) {
        let p_ab = self.predictability(peer, now);
        if p_ab == 0.0 {
            return;
        }
        self.table_gen += 1;
        for &(c, p_bc) in peer_probs {
            if c == self.own || c == peer {
                continue;
            }
            self.age_in_place(c.index(), now);
            let e = &mut self.table[c.index()];
            e.p += (1.0 - e.p) * p_ab * p_bc * self.cfg.beta;
        }
    }
}

impl Router for ProphetRouter {
    fn kind_label(&self) -> &'static str {
        "PRoPHET"
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        match make_room_and_store(own, msg, |state| {
            DropPolicy::Fifo.select_victim(&state.buffer, now, rng, |_| false)
        }) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn digest(&mut self, _own: &NodeState, now: SimTime) -> Digest {
        if let Some((gen, at, probs)) = &self.digest_cache {
            if *gen == self.table_gen && *at == now {
                return Digest::Prophet {
                    probs: probs.clone(),
                };
            }
        }
        let probs: Vec<(NodeId, f64)> = self
            .table
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let p = self.aged(e, now);
                (p > 1e-6).then_some((NodeId(i as u32), p))
            })
            .collect();
        self.digest_cache = Some((self.table_gen, now, probs.clone()));
        Digest::Prophet { probs }
    }

    fn on_contact_up(
        &mut self,
        _own: &mut NodeState,
        peer: NodeId,
        peer_digest: &Digest,
        now: SimTime,
    ) -> Vec<Message> {
        self.on_encounter(peer, now);
        if let Digest::Prophet { probs } = peer_digest {
            self.apply_transitivity(peer, probs, now);
        }
        Vec::new()
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        _rng: &mut SimRng,
    ) -> Option<MessageId> {
        // The scan is a pure function of round-start state (see
        // `plan_transfer`), so serial and parallel paths share one body.
        self.plan_transfer(own, peer, peer_router, offers, now)
    }

    fn scan_is_shared(&self) -> bool {
        // GRTRMax never draws RNG and mutates nothing during the scan.
        true
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        // GRTRMax: candidate if the peer is the destination, or the peer's
        // predictability for the destination beats ours; rank by the peer's
        // predictability, destination contacts first.
        let mut best: Option<(f64, MessageId)> = None;
        for msg in own.buffer.iter() {
            if offers.is_offered(msg.id) || peer.knows(msg.id) || msg.is_expired(now) {
                continue;
            }
            if !peer.buffer.could_fit(msg.size) && msg.dst != peer.id {
                continue;
            }
            let rank = if msg.dst == peer.id {
                f64::INFINITY
            } else {
                let p_peer = peer_router.delivery_metric(msg.dst, now).unwrap_or(0.0);
                let p_own = self.predictability(msg.dst, now);
                if p_peer <= p_own {
                    continue;
                }
                p_peer
            };
            // Strict > keeps the earliest-received message on ties, making
            // the choice deterministic.
            if best.map(|(r, _)| rank > r).unwrap_or(true) {
                best = Some((rank, msg.id));
            }
        }
        best.map(|(_, id)| id)
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        standard_receive(own, msg, now, |state| {
            DropPolicy::Fifo.select_victim(&state.buffer, now, rng, |_| false)
        })
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        // GRTR-family forwarding is replicative: the sender keeps its copy
        // unless the message just reached its destination (paper rule).
        if delivered {
            own.buffer.remove(msg_id);
        }
    }

    fn delivery_metric(&self, dest: NodeId, now: SimTime) -> Option<f64> {
        Some(self.predictability(dest, now))
    }

    fn routing_generation(&self) -> u64 {
        // GRTRMax eligibility compares aged predictabilities; aging scales
        // both sides of the comparison by the same factor, so the verdict
        // can only change when the table itself does.
        self.table_gen
    }

    fn hash_state(&self, h: &mut StateHash) {
        // The table is the protocol's entire semantic state; `table_gen` and
        // the digest cache are within-run bookkeeping and excluded.
        h.write_len(self.table.len());
        for e in &self.table {
            h.write_f64(e.p);
            h.write_u64(e.last_update.as_millis());
        }
    }

    fn snapshot_state(&self) -> RouterSnapshot {
        RouterSnapshot::Prophet {
            table: self.table.iter().map(|e| (e.p, e.last_update)).collect(),
        }
    }

    fn restore_state(&mut self, snap: RouterSnapshot) {
        match snap {
            RouterSnapshot::Prophet { table } => {
                assert_eq!(table.len(), self.table.len(), "node count mismatch");
                self.table = table
                    .into_iter()
                    .map(|(p, last_update)| Entry { p, last_update })
                    .collect();
                // Restart generations at 0: every consumer of the old
                // counter (silence memos, digest caches) is rebuilt fresh
                // alongside the router, so only monotonicity matters.
                self.table_gen = 0;
                self.digest_cache = None;
            }
            other => panic!("PRoPHET cannot restore {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn router(own: u32) -> ProphetRouter {
        ProphetRouter::new(NodeId(own), 10, ProphetConfig::default())
    }

    fn state(id: u32) -> NodeState {
        NodeState::new(NodeId(id), 100_000, false)
    }

    #[test]
    fn encounter_raises_predictability() {
        let mut r = router(0);
        assert_eq!(r.predictability(NodeId(1), t(0.0)), 0.0);
        r.on_encounter(NodeId(1), t(0.0));
        assert!((r.predictability(NodeId(1), t(0.0)) - 0.75).abs() < 1e-12);
        r.on_encounter(NodeId(1), t(0.0));
        // 0.75 + 0.25·0.75 = 0.9375
        assert!((r.predictability(NodeId(1), t(0.0)) - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn aging_decays_with_time_units() {
        let mut r = router(0);
        r.on_encounter(NodeId(1), t(0.0));
        // 10 time units of 30 s → factor 0.98^10.
        let expected = 0.75 * 0.98f64.powi(10);
        assert!((r.predictability(NodeId(1), t(300.0)) - expected).abs() < 1e-12);
    }

    #[test]
    fn transitivity_learns_through_peers() {
        let mut r = router(0);
        r.on_encounter(NodeId(1), t(0.0));
        // Peer 1 reports P(1, 2) = 0.8.
        r.apply_transitivity(NodeId(1), &[(NodeId(2), 0.8)], t(0.0));
        // P(0,2) = 0 + 1·0.75·0.8·0.25 = 0.15
        assert!((r.predictability(NodeId(2), t(0.0)) - 0.15).abs() < 1e-12);
        // Own and peer entries are skipped by transitivity.
        r.apply_transitivity(NodeId(1), &[(NodeId(0), 0.9), (NodeId(1), 0.9)], t(0.0));
        assert_eq!(r.predictability(NodeId(0), t(0.0)), 0.0);
    }

    #[test]
    fn digest_contains_only_nonzero_entries() {
        let mut r = router(0);
        r.on_encounter(NodeId(3), t(0.0));
        match r.digest(&state(0), t(0.0)) {
            Digest::Prophet { probs } => {
                assert_eq!(probs.len(), 1);
                assert_eq!(probs[0].0, NodeId(3));
            }
            other => panic!("wrong digest {other:?}"),
        }
    }

    #[test]
    fn grtrmax_forwards_only_to_better_peers() {
        let mut rng = SimRng::seed_from_u64(1);
        let now = t(0.0);
        let mut a = router(0);
        let mut b = router(1);
        let mut sa = state(0);
        let sb = state(1);
        // Message destined to node 2.
        let m = Message::new(
            MessageId(1),
            NodeId(0),
            NodeId(2),
            100,
            now,
            SimDuration::from_mins(60),
        );
        a.on_message_created(&mut sa, m, now, &mut rng);
        // Neither side knows node 2: no forward.
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None
        );
        // Peer has met node 2: forward.
        b.on_encounter(NodeId(2), now);
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1))
        );
        // If we now beat the peer, stay silent again.
        a.on_encounter(NodeId(2), now);
        a.on_encounter(NodeId(2), now);
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn destination_contact_trumps_metrics() {
        let mut rng = SimRng::seed_from_u64(1);
        let now = t(0.0);
        let mut a = router(0);
        let b = router(2);
        let mut sa = state(0);
        let sb = state(2); // peer IS the destination
        let m = Message::new(
            MessageId(1),
            NodeId(0),
            NodeId(2),
            100,
            now,
            SimDuration::from_mins(60),
        );
        a.on_message_created(&mut sa, m, now, &mut rng);
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1))
        );
    }

    #[test]
    fn ranks_by_peer_predictability() {
        let mut rng = SimRng::seed_from_u64(1);
        let now = t(0.0);
        let mut a = router(0);
        let mut b = router(1);
        let mut sa = state(0);
        let sb = state(1);
        // Peer knows node 2 weakly, node 3 strongly.
        b.on_encounter(NodeId(2), now);
        b.on_encounter(NodeId(3), now);
        b.on_encounter(NodeId(3), now);
        for (id, dst) in [(1u64, 2u32), (2, 3)] {
            let m = Message::new(
                MessageId(id),
                NodeId(0),
                NodeId(dst),
                100,
                now,
                SimDuration::from_mins(60),
            );
            a.on_message_created(&mut sa, m, now, &mut rng);
        }
        // GRTRMax sends the message with the highest peer predictability
        // first: message 2 (dst 3, P ≈ 0.9375) over message 1 (P = 0.75).
        assert_eq!(
            a.next_transfer(
                &sa,
                &sb,
                &b,
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(2))
        );
    }

    #[test]
    fn contact_up_integrates_digest() {
        let now = t(0.0);
        let mut a = router(0);
        let mut b = router(1);
        b.on_encounter(NodeId(4), now);
        let digest_b = b.digest(&state(1), now);
        let dropped = a.on_contact_up(&mut state(0), NodeId(1), &digest_b, now);
        assert!(dropped.is_empty());
        assert!(a.predictability(NodeId(1), now) > 0.7, "direct encounter");
        assert!(a.predictability(NodeId(4), now) > 0.1, "transitive entry");
    }
}

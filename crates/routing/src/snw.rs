//! Spray and Wait routing (Spyropoulos et al. 2005).
//!
//! Each message starts with a quota of `L` logical copies (the paper uses
//! `L = 12`). In the **binary** variant a node holding `n > 1` copies hands
//! ⌊n/2⌋ to a peer that has none and keeps ⌈n/2⌉; a node holding a single
//! copy waits and forwards only to the final destination ("wait phase").
//! The non-binary ("source spray") variant hands exactly one copy at a time.
//!
//! The quota travels inside the message snapshot: at transfer completion the
//! sender halves its stored copy and the receiver stores the complement, so
//! the total number of logical copies in the network never exceeds `L`
//! (property-tested in the integration suite).

use crate::candidates::{CandidateSource, RoutingBackend, Verdict};
use crate::offers::OfferView;
use crate::router::{CreateOutcome, ReceiveOutcome, Router};
use crate::state::NodeState;
use crate::util::{make_room_and_store, policy_victim, scan_policy, standard_receive};
use vdtn_bundle::{Message, MessageId, PolicyCombo, SchedulingPolicy};
use vdtn_sim_core::{NodeId, SimRng, SimTime};

/// Quota-replication router with pluggable buffer policies.
pub struct SprayAndWaitRouter {
    initial_copies: u32,
    binary: bool,
    policy: PolicyCombo,
    source: CandidateSource,
}

impl SprayAndWaitRouter {
    /// Create with quota `L = initial_copies`; `binary` selects the paper's
    /// binary halving variant (default candidate-index backend).
    pub fn new(initial_copies: u32, binary: bool, policy: PolicyCombo) -> Self {
        Self::with_backend(initial_copies, binary, policy, RoutingBackend::default())
    }

    /// Create with an explicit scan backend (benches, equivalence tests).
    pub fn with_backend(
        initial_copies: u32,
        binary: bool,
        policy: PolicyCombo,
        backend: RoutingBackend,
    ) -> Self {
        assert!(initial_copies >= 1, "spray quota must be at least 1");
        SprayAndWaitRouter {
            initial_copies,
            binary,
            policy,
            source: CandidateSource::new(backend),
        }
    }

    /// Copies the receiver obtains from a sender holding `sender_copies`.
    fn receiver_share(&self, sender_copies: u32) -> u32 {
        if self.binary {
            sender_copies / 2
        } else {
            1
        }
    }

    /// Copies the sender retains after a successful spray.
    fn sender_share(&self, sender_copies: u32) -> u32 {
        sender_copies - self.receiver_share(sender_copies)
    }
}

/// Spray-and-Wait's eligibility verdict, shared by the serial and parallel
/// scan paths so both decide identically. All rejections are permanent for
/// this direction: peer-knows hits at the index scan mean destination
/// consumption, expiry and capacity fits are final, and a stored copy's
/// quota only ever shrinks (halving via `copies_mut`, a fresh copy is a
/// fresh insert delta) — so a wait-phase copy headed elsewhere never comes
/// back.
fn spray_verdict<'a>(
    own: &'a NodeState,
    peer: &'a NodeState,
    now: SimTime,
) -> impl FnMut(MessageId) -> Verdict + 'a {
    move |id| {
        if peer.knows(id) {
            return Verdict::Never;
        }
        let msg = own.buffer.get(id).expect("ordered id is stored");
        if msg.is_expired(now) || !peer.buffer.could_fit(msg.size) {
            return Verdict::Never;
        }
        // Spray phase needs quota; wait phase only direct delivery.
        if msg.dst == peer.id || msg.copies > 1 {
            Verdict::Accept
        } else {
            Verdict::Never
        }
    }
}

impl Router for SprayAndWaitRouter {
    fn kind_label(&self) -> &'static str {
        "Spray and Wait"
    }

    fn next_transfer_draws_rng(&self) -> bool {
        self.policy.scheduling == SchedulingPolicy::Random
    }

    fn wants_buffer_deltas(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        mut msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        msg.copies = self.initial_copies;
        match make_room_and_store(own, msg, policy_victim(self.policy.dropping, now, rng)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId> {
        scan_policy(
            &mut self.source,
            self.policy.scheduling,
            &own.buffer,
            peer,
            offers,
            now,
            rng,
            spray_verdict(own, peer, now),
        )
    }

    fn scan_is_shared(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        debug_assert!(self.scan_is_shared());
        offers.scan_index(
            self.policy.scheduling,
            &own.buffer,
            peer,
            spray_verdict(own, peer, now),
        )
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        // The snapshot carries the sender's quota at send time; this side
        // stores its share. Destination delivery ignores quotas.
        let mut incoming = *msg;
        incoming.copies = self.receiver_share(msg.copies).max(1);
        standard_receive(
            own,
            &incoming,
            now,
            policy_victim(self.policy.dropping, now, rng),
        )
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        if delivered {
            own.buffer.remove(msg_id);
            return;
        }
        if let Some(copies) = own.buffer.copies_mut(msg_id) {
            *copies = self.sender_share(*copies).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn msg(id: u64, dst: u32) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(dst),
            100,
            SimTime::ZERO,
            SimDuration::from_mins(90),
        )
    }

    fn setup(binary: bool) -> (SprayAndWaitRouter, NodeState, NodeState, SimRng) {
        (
            SprayAndWaitRouter::new(12, binary, PolicyCombo::LIFETIME),
            NodeState::new(NodeId(1), 10_000, false),
            NodeState::new(NodeId(2), 10_000, false),
            SimRng::seed_from_u64(3),
        )
    }

    #[test]
    fn source_stamps_initial_quota() {
        let (mut r, mut own, _, mut rng) = setup(true);
        r.on_message_created(&mut own, msg(1, 9), SimTime::ZERO, &mut rng);
        assert_eq!(own.buffer.get(MessageId(1)).unwrap().copies, 12);
    }

    #[test]
    fn binary_halving_shares() {
        let (r, ..) = setup(true);
        assert_eq!(r.receiver_share(12), 6);
        assert_eq!(r.sender_share(12), 6);
        assert_eq!(r.receiver_share(3), 1);
        assert_eq!(r.sender_share(3), 2);
        assert_eq!(r.receiver_share(2), 1);
        assert_eq!(r.sender_share(2), 1);
    }

    #[test]
    fn source_spray_hands_one() {
        let (r, ..) = setup(false);
        assert_eq!(r.receiver_share(12), 1);
        assert_eq!(r.sender_share(12), 11);
    }

    #[test]
    fn spray_then_wait_transition() {
        let (mut r, mut own, peer, mut rng) = setup(true);
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9), now, &mut rng);
        // Quota 12 > 1 ⇒ sprayable to a non-destination peer.
        assert_eq!(
            r.next_transfer(
                &own,
                &peer,
                &dummy(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1))
        );
        // Force the wait phase: single copy left. The in-place quota edit
        // must be visible through the schedule cache (copies is not a
        // scheduling key, so the cached order stays valid).
        *own.buffer.copies_mut(MessageId(1)).unwrap() = 1;
        assert_eq!(
            r.next_transfer(
                &own,
                &peer,
                &dummy(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None,
            "wait phase: no spray to non-destination"
        );
        // But direct delivery is always allowed.
        let dest = NodeState::new(NodeId(9), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &dest,
                &dummy(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1))
        );
    }

    fn dummy() -> SprayAndWaitRouter {
        SprayAndWaitRouter::new(12, true, PolicyCombo::FIFO_FIFO)
    }

    #[test]
    fn quota_conserved_across_a_hop() {
        let (mut r, mut sender, mut receiver, mut rng) = setup(true);
        let now = SimTime::ZERO;
        r.on_message_created(&mut sender, msg(1, 9), now, &mut rng);
        let snapshot = sender.buffer.get(MessageId(1)).unwrap();
        // Receiver side.
        let out = r.on_message_received(&mut receiver, &snapshot, NodeId(1), now, &mut rng);
        assert!(matches!(out, ReceiveOutcome::Stored { .. }));
        // Sender side.
        r.on_transfer_success(&mut sender, MessageId(1), NodeId(2), false, now);
        let s = sender.buffer.get(MessageId(1)).unwrap().copies;
        let v = receiver.buffer.get(MessageId(1)).unwrap().copies;
        assert_eq!(s + v, 12, "logical copies conserved");
        assert_eq!(s, 6);
        assert_eq!(v, 6);
    }

    #[test]
    fn quota_chain_reaches_wait_phase() {
        let (r, ..) = setup(true);
        let mut copies = 12u32;
        let mut hops = 0;
        while copies > 1 {
            copies = r.sender_share(copies);
            hops += 1;
        }
        // 12 → 6 → 3 → 2 → 1: four halvings.
        assert_eq!(hops, 4);
    }

    #[test]
    fn delivery_removes_sender_copy() {
        let (mut r, mut own, _, mut rng) = setup(true);
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 2), now, &mut rng);
        r.on_transfer_success(&mut own, MessageId(1), NodeId(2), true, now);
        assert!(!own.buffer.contains(MessageId(1)));
    }

    #[test]
    fn receiver_share_never_zero() {
        // A sender in wait phase only sends to the destination, but if a
        // quota-1 snapshot ever reaches a relay the share clamps to 1.
        let (mut r, _, mut receiver, mut rng) = setup(true);
        let mut m = msg(1, 9);
        m.copies = 1;
        let out = r.on_message_received(&mut receiver, &m, NodeId(1), SimTime::ZERO, &mut rng);
        assert!(matches!(out, ReceiveOutcome::Stored { .. }));
        assert_eq!(receiver.buffer.get(MessageId(1)).unwrap().copies, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_quota_rejected() {
        SprayAndWaitRouter::new(0, true, PolicyCombo::FIFO_FIFO);
    }
}

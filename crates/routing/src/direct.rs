//! Baseline routers: Direct Delivery and First Contact.
//!
//! Neither appears in the paper's figures, but both are classic DTN
//! baselines (zero replication) that bound the protocol space from below:
//! Direct Delivery gives the worst-case delay/best-case overhead, First
//! Contact shows what a single wandering copy achieves. They are used by the
//! extension benches and as sanity anchors in the integration tests
//! (Epidemic must dominate both on delivery ratio).

use crate::candidates::{CandidateSource, RoutingBackend, Verdict};
use crate::offers::OfferView;
use crate::router::{CreateOutcome, ReceiveOutcome, Router};
use crate::state::NodeState;
use crate::util::{make_room_and_store, policy_victim, scan_policy, standard_receive};
use vdtn_bundle::{Message, MessageId, PolicyCombo, SchedulingPolicy};
use vdtn_sim_core::{NodeId, SimRng, SimTime};

/// Source holds every message until it meets the destination.
pub struct DirectDeliveryRouter {
    policy: PolicyCombo,
    source: CandidateSource,
}

impl DirectDeliveryRouter {
    /// Create with the given buffer policies (scheduling matters only for
    /// the order of multiple deliverable messages at one contact).
    pub fn new(policy: PolicyCombo) -> Self {
        Self::with_backend(policy, RoutingBackend::default())
    }

    /// Create with an explicit scan backend (benches, equivalence tests).
    pub fn with_backend(policy: PolicyCombo, backend: RoutingBackend) -> Self {
        DirectDeliveryRouter {
            policy,
            source: CandidateSource::new(backend),
        }
    }
}

impl Router for DirectDeliveryRouter {
    fn kind_label(&self) -> &'static str {
        "Direct Delivery"
    }

    fn next_transfer_draws_rng(&self) -> bool {
        self.policy.scheduling == SchedulingPolicy::Random
    }

    fn wants_buffer_deltas(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        match make_room_and_store(own, msg, policy_victim(self.policy.dropping, now, rng)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId> {
        // The destination test is constant per direction and expiry is
        // final, so every rejection is permanent for this contact.
        scan_policy(
            &mut self.source,
            self.policy.scheduling,
            &own.buffer,
            peer,
            offers,
            now,
            rng,
            direct_verdict(own, peer, now),
        )
    }

    fn scan_is_shared(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        debug_assert!(self.scan_is_shared());
        offers.scan_index(
            self.policy.scheduling,
            &own.buffer,
            peer,
            direct_verdict(own, peer, now),
        )
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        // Only ever receives as the destination, but the standard pipeline
        // handles stray relays gracefully anyway.
        standard_receive(own, msg, now, policy_victim(self.policy.dropping, now, rng))
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        if delivered {
            own.buffer.remove(msg_id);
        }
    }
}

/// Direct Delivery's eligibility verdict, shared by the serial and
/// parallel scan paths so both decide identically.
fn direct_verdict<'a>(
    own: &'a NodeState,
    peer: &'a NodeState,
    now: SimTime,
) -> impl FnMut(MessageId) -> Verdict + 'a {
    move |id| {
        if peer.knows(id) {
            return Verdict::Never;
        }
        let msg = own.buffer.get(id).expect("ordered id is stored");
        if msg.dst == peer.id && !msg.is_expired(now) {
            Verdict::Accept
        } else {
            Verdict::Never
        }
    }
}

/// First Contact's eligibility verdict (identical tests to flooding: the
/// single copy goes to the first peer that can hold it).
fn first_contact_verdict<'a>(
    own: &'a NodeState,
    peer: &'a NodeState,
    now: SimTime,
) -> impl FnMut(MessageId) -> Verdict + 'a {
    move |id| {
        if peer.knows(id) {
            return Verdict::Never;
        }
        let msg = own.buffer.get(id).expect("ordered id is stored");
        if msg.is_expired(now) || !peer.buffer.could_fit(msg.size) {
            return Verdict::Never;
        }
        Verdict::Accept
    }
}

/// Single copy forwarded to the first peer encountered (and then erased at
/// the sender), hopping until it meets the destination or expires.
pub struct FirstContactRouter {
    policy: PolicyCombo,
    source: CandidateSource,
}

impl FirstContactRouter {
    /// Create with the given buffer policies.
    pub fn new(policy: PolicyCombo) -> Self {
        Self::with_backend(policy, RoutingBackend::default())
    }

    /// Create with an explicit scan backend (benches, equivalence tests).
    pub fn with_backend(policy: PolicyCombo, backend: RoutingBackend) -> Self {
        FirstContactRouter {
            policy,
            source: CandidateSource::new(backend),
        }
    }
}

impl Router for FirstContactRouter {
    fn kind_label(&self) -> &'static str {
        "First Contact"
    }

    fn next_transfer_draws_rng(&self) -> bool {
        self.policy.scheduling == SchedulingPolicy::Random
    }

    fn wants_buffer_deltas(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        match make_room_and_store(own, msg, policy_victim(self.policy.dropping, now, rng)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId> {
        scan_policy(
            &mut self.source,
            self.policy.scheduling,
            &own.buffer,
            peer,
            offers,
            now,
            rng,
            first_contact_verdict(own, peer, now),
        )
    }

    fn scan_is_shared(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        debug_assert!(self.scan_is_shared());
        offers.scan_index(
            self.policy.scheduling,
            &own.buffer,
            peer,
            first_contact_verdict(own, peer, now),
        )
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        standard_receive(own, msg, now, policy_victim(self.policy.dropping, now, rng))
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        _delivered: bool,
        _now: SimTime,
    ) {
        // The single copy moved on — always relinquish it.
        own.buffer.remove(msg_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn msg(id: u64, dst: u32) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(dst),
            100,
            SimTime::ZERO,
            SimDuration::from_mins(90),
        )
    }

    #[test]
    fn direct_delivery_waits_for_destination() {
        let mut r = DirectDeliveryRouter::new(PolicyCombo::FIFO_FIFO);
        let mut own = NodeState::new(NodeId(1), 10_000, false);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9), now, &mut rng);

        let relay = NodeState::new(NodeId(5), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &relay,
                &dummy_dd(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None,
            "never offers to a relay"
        );
        let dest = NodeState::new(NodeId(9), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &dest,
                &dummy_dd(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1))
        );
        r.on_transfer_success(&mut own, MessageId(1), NodeId(9), true, now);
        assert!(own.buffer.is_empty());
    }

    fn dummy_dd() -> DirectDeliveryRouter {
        DirectDeliveryRouter::new(PolicyCombo::FIFO_FIFO)
    }

    #[test]
    fn first_contact_forwards_to_anyone_and_relinquishes() {
        let mut r = FirstContactRouter::new(PolicyCombo::FIFO_FIFO);
        let mut own = NodeState::new(NodeId(1), 10_000, false);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9), now, &mut rng);

        let relay = NodeState::new(NodeId(5), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &relay,
                &dummy_fc(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(1)),
            "first contact forwards to any peer"
        );
        // Successful relay (not destination): copy leaves the sender.
        r.on_transfer_success(&mut own, MessageId(1), NodeId(5), false, now);
        assert!(own.buffer.is_empty(), "single copy moves, never replicates");
    }

    fn dummy_fc() -> FirstContactRouter {
        FirstContactRouter::new(PolicyCombo::FIFO_FIFO)
    }

    #[test]
    fn direct_delivery_orders_multiple_deliverables_by_policy() {
        let mut r = DirectDeliveryRouter::new(PolicyCombo::LIFETIME);
        let mut own = NodeState::new(NodeId(1), 10_000, false);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        let mut m1 = msg(1, 9);
        m1.ttl = SimDuration::from_mins(10);
        let mut m2 = msg(2, 9);
        m2.ttl = SimDuration::from_mins(90);
        r.on_message_created(&mut own, m1, now, &mut rng);
        r.on_message_created(&mut own, m2, now, &mut rng);
        let dest = NodeState::new(NodeId(9), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &dest,
                &dummy_dd(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            Some(MessageId(2)),
            "Lifetime DESC offers the longest-lived first"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(dummy_dd().kind_label(), "Direct Delivery");
        assert_eq!(dummy_fc().kind_label(), "First Contact");
    }
}

//! Shared storage and scheduling-scan logic used by every protocol.

use crate::candidates::{CandidateSource, Verdict};
use crate::offers::OfferView;
use crate::router::{ReceiveOutcome, RejectReason};
use crate::state::NodeState;
use vdtn_bundle::{Buffer, DropPolicy, Message, MessageId, ScheduleCache, SchedulingPolicy};
use vdtn_sim_core::{SimRng, SimTime};

/// Store `msg` in `own.buffer`, evicting victims chosen by `pick_victim`
/// until it fits. Returns the evicted messages, or a [`RejectReason`] if the
/// message can never fit / no victim is available.
///
/// `pick_victim` abstracts over the drop policy so MaxProp and PRoPHET can
/// plug their native eviction orders while Epidemic/SnW use [`DropPolicy`].
pub fn make_room_and_store(
    own: &mut NodeState,
    msg: Message,
    mut pick_victim: impl FnMut(&NodeState) -> Option<MessageId>,
) -> Result<Vec<Message>, RejectReason> {
    if !own.buffer.could_fit(msg.size) {
        return Err(RejectReason::TooLarge);
    }
    let mut evicted = Vec::new();
    while !own.buffer.fits_now(msg.size) {
        match pick_victim(own) {
            Some(victim) => {
                let dropped = own
                    .buffer
                    .remove(victim)
                    .expect("drop policy must pick stored messages");
                evicted.push(dropped);
            }
            None => {
                // Roll back: failed receptions must not shrink the buffer.
                for m in evicted {
                    own.buffer
                        .insert(m)
                        .expect("reinserting evicted messages cannot fail");
                }
                return Err(RejectReason::NoSpace);
            }
        }
    }
    own.buffer.insert(msg).expect("space was just ensured");
    Ok(evicted)
}

/// The shared scheduling scan of every policy-driven router, dispatched on
/// the router's [`CandidateSource`] backend. `eligible` receives the bare
/// id and returns a [`Verdict`] — routers order their rejection tests
/// cheapest-first (a `peer.knows` hit should not pay for a message fetch)
/// and classify each rejection as [`Verdict::Never`] (permanent for this
/// direction and contact: the index drops the entry) or [`Verdict::NotNow`]
/// (re-evaluated next round). Both backends return bit-identical results;
/// they differ only in how much work a round after a buffer change costs.
///
/// * `Index`: sync the per-direction candidate index from buffer deltas and
///   scan only live candidates — O(changes) per round on a quiescent
///   contact. `Random` scheduling transparently falls back to the rescan
///   path below, so its per-call RNG draws stay bit-identical.
/// * `Rescan`: the PR 3 path — refresh the generation-validated schedule
///   cache and rescan from the offer cursor.
#[allow(clippy::too_many_arguments)] // mirrors `Router::next_transfer`'s surface
pub fn scan_policy(
    source: &mut CandidateSource,
    policy: SchedulingPolicy,
    buffer: &Buffer,
    peer: &NodeState,
    offers: &mut OfferView<'_>,
    now: SimTime,
    rng: &mut SimRng,
    mut eligible: impl FnMut(MessageId) -> Verdict,
) -> Option<MessageId> {
    if source.wants_deltas(policy) {
        offers.scan_index(policy, buffer, peer, eligible)
    } else {
        scan_schedule(source.cache_mut(), policy, buffer, offers, now, rng, |id| {
            eligible(id) == Verdict::Accept
        })
    }
}

/// The full-rescan scan: walk the cached schedule order and return the
/// first not-yet-offered message that `eligible` accepts (peer- and
/// protocol-specific checks).
///
/// Implements the consumer side of the offer-cursor protocol (see
/// [`crate::offers`]): scanning resumes at the saved cursor when the cached
/// order's generation still matches, the contiguous offered prefix advances
/// the cursor for the next round, and `Random` orders — which carry no
/// cursor token — always scan from the front. Exactly equivalent to
/// re-ordering the buffer and scanning from zero, minus the redundant work.
pub fn scan_schedule(
    cache: &mut ScheduleCache,
    policy: SchedulingPolicy,
    buffer: &Buffer,
    offers: &mut OfferView<'_>,
    now: SimTime,
    rng: &mut SimRng,
    mut eligible: impl FnMut(MessageId) -> bool,
) -> Option<MessageId> {
    let (order, token) = cache.refresh(policy, buffer, now, rng);
    let mut start = match token {
        Some(t) => offers.resume(t),
        None => 0,
    };
    while start < order.len() && offers.is_offered(order[start]) {
        start += 1;
    }
    if let Some(t) = token {
        offers.save(t, start);
    }
    order[start..]
        .iter()
        .copied()
        .find(|&id| !offers.is_offered(id) && eligible(id))
}

/// The standard reception pipeline shared by every protocol:
/// expiry check → delivery check → duplicate check → store with eviction.
///
/// `pick_victim` supplies the protocol's eviction order.
pub fn standard_receive(
    own: &mut NodeState,
    msg: &Message,
    now: SimTime,
    pick_victim: impl FnMut(&NodeState) -> Option<MessageId>,
) -> ReceiveOutcome {
    if msg.is_expired(now) {
        return ReceiveOutcome::Rejected(RejectReason::Expired);
    }
    if msg.dst == own.id {
        let first_time = own.delivered.insert(msg.id);
        return ReceiveOutcome::Delivered { first_time };
    }
    if own.delivered.contains(&msg.id) {
        return ReceiveOutcome::Rejected(RejectReason::AlreadyDelivered);
    }
    if own.buffer.contains(msg.id) {
        return ReceiveOutcome::Rejected(RejectReason::Duplicate);
    }
    match make_room_and_store(own, msg.relayed_copy(now), pick_victim) {
        Ok(evicted) => ReceiveOutcome::Stored { evicted },
        Err(reason) => ReceiveOutcome::Rejected(reason),
    }
}

/// Victim chooser backed by a [`DropPolicy`], never evicting `incoming`
/// (it is not stored yet, but guards against id reuse) and respecting the
/// policy's own ordering.
pub fn policy_victim<'a>(
    policy: DropPolicy,
    now: SimTime,
    rng: &'a mut SimRng,
) -> impl FnMut(&NodeState) -> Option<MessageId> + 'a {
    move |state: &NodeState| policy.select_victim(&state.buffer, now, rng, |_| false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(ttl_min),
        )
    }

    #[test]
    fn stores_when_space_available() {
        let mut s = NodeState::new(NodeId(1), 1_000, false);
        let evicted = make_room_and_store(&mut s, msg(1, 400, 60), |_| None).unwrap();
        assert!(evicted.is_empty());
        assert!(s.buffer.contains(MessageId(1)));
    }

    #[test]
    fn evicts_until_fit() {
        let mut s = NodeState::new(NodeId(1), 1_000, false);
        s.buffer.insert(msg(1, 400, 10)).unwrap();
        s.buffer.insert(msg(2, 400, 60)).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let evicted = make_room_and_store(
            &mut s,
            msg(3, 600, 60),
            policy_victim(DropPolicy::LifetimeAsc, SimTime::ZERO, &mut rng),
        )
        .unwrap();
        // Message 1 (10 min TTL) goes first; 600 needed, 200 free, one drop
        // frees 400 → enough.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, MessageId(1));
        assert!(s.buffer.contains(MessageId(3)));
        assert_eq!(s.buffer.used(), 1_000);
    }

    #[test]
    fn too_large_rejected_without_eviction() {
        let mut s = NodeState::new(NodeId(1), 1_000, false);
        s.buffer.insert(msg(1, 500, 60)).unwrap();
        let r = make_room_and_store(&mut s, msg(2, 1_500, 60), |_| {
            panic!("must not consult the drop policy for impossible fits")
        });
        assert_eq!(r.unwrap_err(), RejectReason::TooLarge);
        assert!(s.buffer.contains(MessageId(1)));
    }

    #[test]
    fn no_victim_rolls_back() {
        let mut s = NodeState::new(NodeId(1), 1_000, false);
        s.buffer.insert(msg(1, 600, 60)).unwrap();
        let r = make_room_and_store(&mut s, msg(2, 800, 60), |_| None);
        assert_eq!(r.unwrap_err(), RejectReason::NoSpace);
        assert!(s.buffer.contains(MessageId(1)));
        assert_eq!(s.buffer.used(), 600);
    }

    #[test]
    fn standard_receive_delivery_and_duplicates() {
        let mut s = NodeState::new(NodeId(9), 10_000, false);
        let m = msg(5, 100, 60); // dst = NodeId(9)
        let out = standard_receive(&mut s, &m, SimTime::ZERO, |_| None);
        assert_eq!(out, ReceiveOutcome::Delivered { first_time: true });
        // Second copy of the same message: delivered but not first time.
        let out = standard_receive(&mut s, &m, SimTime::ZERO, |_| None);
        assert_eq!(out, ReceiveOutcome::Delivered { first_time: false });
        // Nothing stored at the destination.
        assert!(s.buffer.is_empty());
    }

    #[test]
    fn standard_receive_relay_path() {
        let mut s = NodeState::new(NodeId(3), 10_000, false);
        let m = msg(5, 100, 60);
        let now = SimTime::from_secs_f64(10.0);
        match standard_receive(&mut s, &m, now, |_| None) {
            ReceiveOutcome::Stored { evicted } => assert!(evicted.is_empty()),
            other => panic!("expected store, got {other:?}"),
        }
        let stored = s.buffer.get(MessageId(5)).unwrap();
        assert_eq!(stored.hops, 1);
        assert_eq!(stored.received, now);
        // Duplicate re-reception rejected.
        let out = standard_receive(&mut s, &m, now, |_| None);
        assert_eq!(out, ReceiveOutcome::Rejected(RejectReason::Duplicate));
    }

    #[test]
    fn standard_receive_expired_in_flight() {
        let mut s = NodeState::new(NodeId(3), 10_000, false);
        let m = msg(5, 100, 1); // TTL 1 min
        let out = standard_receive(&mut s, &m, SimTime::from_secs_f64(61.0), |_| None);
        assert_eq!(out, ReceiveOutcome::Rejected(RejectReason::Expired));
    }
}

//! Per-contact offer bookkeeping: what was already offered on a connection,
//! plus each direction's resume cursor into its cached schedule order.
//!
//! The engine owns one [`ContactOffers`] per live connection (replacing the
//! former pair-keyed `HashSet<MessageId>` + separate sent-bytes map) and
//! hands routers a directional [`OfferView`] at every routing round.
//!
//! # The offer-cursor protocol
//!
//! A schedule-order router scans its cached order for the first message the
//! peer should get. During a long contact that order's prefix fills up with
//! already-offered messages, and a scan that restarts from zero re-checks
//! every one of them each round. The cursor removes that rescan:
//!
//! * [`OfferView::resume`] returns the saved position when the supplied
//!   **token** (the sender's cached-order generation) matches the one the
//!   cursor was saved under, and `0` otherwise — the cursor *only rewinds
//!   when the generation changes*;
//! * the router advances past the contiguous offered prefix and calls
//!   [`OfferView::save`] so the next round starts there;
//! * soundness: the offered set only grows during a contact (TTL pruning
//!   removes only globally expired ids, which every router filters out
//!   anyway), and a cached order is immutable for its generation — so every
//!   position below the cursor stays offered-or-expired for as long as the
//!   token matches.

use crate::candidates::{CandidateIndex, Verdict};
use crate::state::NodeState;
use vdtn_bundle::{Buffer, MessageArena, MessageId, MsgHandle, SchedulingPolicy};
use vdtn_sim_core::SimTime;

/// The ids already offered during one contact, as a sorted vector.
///
/// Offer sets are small (bounded by live traffic over a contact) but there
/// is one per live connection — on a 100k-node dense mesh that is hundreds
/// of thousands of them — so per-entry size dominates contact memory. A
/// sorted `Vec<MessageId>` costs 8 bytes per tracked id with zero
/// per-instance table overhead; membership tests stay O(log n), insertion
/// O(n) memmove (cheap at these sizes). The message expiry needed for TTL
/// pruning is *not* duplicated per entry: it lives in the world's interned
/// [`MessageArena`] record and is looked up only during the (rare, serial)
/// prune.
#[derive(Debug, Clone, Default)]
pub struct OfferedSet {
    /// Tracked ids, sorted, unique.
    ids: Vec<MessageId>,
}

impl OfferedSet {
    /// Fresh, empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `id` is in the set.
    pub fn contains(&self, id: MessageId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Record `id`. Idempotent.
    pub fn insert(&mut self, id: MessageId) {
        if let Err(pos) = self.ids.binary_search(&id) {
            self.ids.insert(pos, id);
        }
    }

    /// Drop every id whose message (per its interned metadata in `arena`)
    /// has expired at `now`. Ids the arena does not know are kept — they
    /// cannot be proven dead.
    pub fn prune_expired(&mut self, now: SimTime, arena: &MessageArena) {
        self.ids.retain(|&id| {
            arena
                .lookup(id)
                .map_or(true, |h| arena.resolve(h).expiry() > now)
        });
    }

    /// Number of tracked ids.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One direction's resume point into a cached schedule order.
#[derive(Debug, Clone, Copy, Default)]
struct Cursor {
    token: u64,
    pos: u32,
    valid: bool,
}

/// Snapshot of every input that can turn a silent routing round loud again:
/// `[sender buffer insert-count, sender routing generation, receiver buffer
/// generation, receiver routing generation, receiver delivered-count]`.
///
/// If a round returned `None` under some key and the key is unchanged, the
/// round is still `None` — every eligibility input is monotone between key
/// changes (offered sets and delivered sets only grow, TTL expiry only
/// removes candidates, capacity fits are constant per message, and the
/// protocols' metric comparisons are invariant under pure time shift — see
/// `Router::routing_generation`). The sender-side component is the buffer's
/// **delta summary** ([`Buffer::insert_count`]) rather than its full
/// generation: a removal from the sender's buffer only shrinks its
/// candidate set, and every survivor was already rejected under identical
/// receiver state at an earlier (or equal) time — so sender removals keep a
/// silent direction silent, and only *inserts* need to break the memo. The
/// engine uses the key two ways: to skip a provably silent round outright
/// within an executed tick, and — since every key input only changes inside
/// executed ticks — to skip scheduling the next tick's `LinkRound` wake
/// entirely when every idle direction is silent under its current key.
pub type SilenceKey = [u64; 5];

/// Offer state for one live connection (both directions).
#[derive(Debug, Clone, Default)]
pub struct ContactOffers {
    /// Ids already offered during this contact; the engine prunes ids
    /// whose message died of TTL (expiry read from the world's message
    /// arena) so the set stays bounded by *live* traffic over arbitrarily
    /// long contacts.
    offered: OfferedSet,
    /// Scan cursors per direction: `[lower-id sender, higher-id sender]`.
    cursors: [Cursor; 2],
    /// Delta-maintained candidate sets per direction (same indexing), used
    /// by routers on the [`crate::candidates::RoutingBackend::Index`]
    /// backend; empty and untouched under `Rescan` or `Random` scheduling.
    indexes: [CandidateIndex; 2],
    /// Payload bytes completed per direction (same indexing), feeding
    /// MaxProp's per-contact volume estimator at contact teardown.
    sent_bytes: [u64; 2],
    /// Last state snapshot under which each direction's routing round
    /// returned `None`. A stale snapshot simply fails to match — no
    /// explicit invalidation is ever needed.
    silence: [Option<SilenceKey>; 2],
}

impl ContactOffers {
    /// Fresh state for a contact that just came up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `id` was offered on this contact. The id leaves both
    /// directions' candidate indexes for good; `handle` is its arena handle
    /// in the sender's buffer (the indexes store handles, not ids — callers
    /// without a live index may pass any handle).
    pub fn record(&mut self, id: MessageId, handle: MsgHandle) {
        self.offered.insert(id);
        self.indexes[0].on_offered(handle);
        self.indexes[1].on_offered(handle);
    }

    /// True if `id` was already offered on this contact.
    pub fn is_offered(&self, id: MessageId) -> bool {
        self.offered.contains(id)
    }

    /// Number of ids currently tracked.
    pub fn offered_count(&self) -> usize {
        self.offered.len()
    }

    /// Drop every tracked id whose message (per `arena`) has expired at
    /// `now`.
    ///
    /// Behaviour-neutral: message ids are never reused and every router
    /// refuses to offer expired messages, so a pruned id can never be
    /// re-offered — this is purely a memory bound. Cursors stay valid: an
    /// expired id below a cursor was drained from the sender's buffer by
    /// the same tick's TTL sweep, which bumped the buffer generation and
    /// therefore rewinds that cursor at its next scan.
    pub fn prune_expired(&mut self, now: SimTime, arena: &MessageArena) {
        self.offered.prune_expired(now, arena);
    }

    /// Account `bytes` of completed payload for direction `side`.
    pub fn add_sent(&mut self, side: usize, bytes: u64) {
        self.sent_bytes[side] += bytes;
    }

    /// Payload bytes completed per direction.
    pub fn sent_bytes(&self) -> [u64; 2] {
        self.sent_bytes
    }

    /// True if direction `side` is known to be silent under `key` — i.e. a
    /// routing round was already answered `None` from exactly this state.
    pub fn is_silent(&self, side: usize, key: &SilenceKey) -> bool {
        self.silence[side].as_ref() == Some(key)
    }

    /// Record that direction `side` answered `None` under `key`.
    pub fn set_silent(&mut self, side: usize, key: SilenceKey) {
        self.silence[side] = Some(key);
    }

    /// The offered ids, sorted — the canonical enumeration snapshotting and
    /// state hashing fold over.
    pub fn offered_ids(&self) -> &[MessageId] {
        &self.offered.ids
    }

    /// Rebuild contact state from snapshotted semantic fields: the offered
    /// ids (sorted) and per-direction sent bytes. Cursors, candidate
    /// indexes, and silence memos are caches — they start cold and rebuild
    /// on first use, degrading only to rescans, never to different
    /// decisions.
    pub fn restore(offered_ids: Vec<MessageId>, sent_bytes: [u64; 2]) -> Self {
        debug_assert!(offered_ids.windows(2).all(|w| w[0] < w[1]), "ids sorted");
        ContactOffers {
            offered: OfferedSet { ids: offered_ids },
            sent_bytes,
            ..Self::default()
        }
    }

    /// Fold the contact's semantic state (offered ids + sent bytes) into a
    /// canonical state hash. Cursors, indexes, and silence memos are
    /// excluded for the same reason [`ContactOffers::restore`] drops them.
    pub fn hash_into(&self, h: &mut vdtn_sim_core::StateHash) {
        h.write_len(self.offered.ids.len());
        for id in &self.offered.ids {
            h.write_u64(id.0);
        }
        h.write_u64(self.sent_bytes[0]);
        h.write_u64(self.sent_bytes[1]);
    }

    /// Directional view for the sender on `side` (0 = lower node id).
    pub fn view(&mut self, side: usize) -> OfferView<'_> {
        OfferView {
            offered: &self.offered,
            cursor: &mut self.cursors[side],
            index: &mut self.indexes[side],
        }
    }
}

/// What a router sees of a contact's offer state when choosing the next
/// transfer: the offered-id set plus its own direction's cursor.
#[derive(Debug)]
pub struct OfferView<'a> {
    offered: &'a OfferedSet,
    cursor: &'a mut Cursor,
    index: &'a mut CandidateIndex,
}

impl OfferView<'_> {
    /// True if `id` was already offered during this contact.
    pub fn is_offered(&self, id: MessageId) -> bool {
        self.offered.contains(id)
    }

    /// Sync this direction's candidate index against both endpoints and
    /// return the first candidate `eligible` accepts, in scheduling-rank
    /// order (the `Index` backend's scan; see [`crate::candidates`]).
    /// Must not be called for [`SchedulingPolicy::Random`], which keeps the
    /// full-rescan fallback for RNG parity.
    pub fn scan_index(
        &mut self,
        policy: SchedulingPolicy,
        buffer: &Buffer,
        peer: &NodeState,
        eligible: impl FnMut(MessageId) -> Verdict,
    ) -> Option<MessageId> {
        debug_assert_ne!(policy, SchedulingPolicy::Random);
        self.index.sync(policy, buffer, peer, self.offered);
        self.index.scan(buffer.arena(), eligible)
    }

    /// Scan-start position for the schedule order identified by `token`;
    /// rewinds to 0 when the order changed since the cursor was saved.
    pub fn resume(&self, token: u64) -> usize {
        if self.cursor.valid && self.cursor.token == token {
            self.cursor.pos as usize
        } else {
            0
        }
    }

    /// Save the resume position for the order identified by `token`. Every
    /// position below `pos` must be offered (see the module docs).
    pub fn save(&mut self, token: u64, pos: usize) {
        *self.cursor = Cursor {
            token,
            pos: pos as u32,
            valid: true,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = ContactOffers::new();
        assert!(!c.is_offered(MessageId(1)));
        c.record(MessageId(1), MsgHandle(0));
        assert!(c.is_offered(MessageId(1)));
        assert_eq!(c.offered_count(), 1);
        assert!(c.view(0).is_offered(MessageId(1)));
        assert!(c.view(1).is_offered(MessageId(1)));
    }

    #[test]
    fn prune_drops_only_expired() {
        use vdtn_bundle::Message;
        use vdtn_sim_core::{NodeId, SimDuration};
        let arena = MessageArena::new();
        // Message 1 expires at 60 s, message 2 at 120 s.
        for (id, ttl_s) in [(1u64, 60.0), (2, 120.0)] {
            arena.intern(&Message::new(
                MessageId(id),
                NodeId(0),
                NodeId(1),
                10,
                SimTime::ZERO,
                SimDuration::from_secs_f64(ttl_s),
            ));
        }
        let mut c = ContactOffers::new();
        c.record(MessageId(1), arena.lookup(MessageId(1)).unwrap());
        c.record(MessageId(2), arena.lookup(MessageId(2)).unwrap());
        // An id the arena never saw cannot be proven dead — it stays.
        c.record(MessageId(9), MsgHandle(0));
        c.prune_expired(SimTime::from_secs_f64(60.0), &arena); // expiry ≤ now is dead
        assert!(!c.is_offered(MessageId(1)));
        assert!(c.is_offered(MessageId(2)));
        assert!(c.is_offered(MessageId(9)));
        assert_eq!(c.offered_count(), 2);
    }

    #[test]
    fn cursor_resumes_per_token_and_side() {
        let mut c = ContactOffers::new();
        // Unsaved cursor always starts at zero.
        assert_eq!(c.view(0).resume(7), 0);
        c.view(0).save(7, 3);
        assert_eq!(c.view(0).resume(7), 3, "same token resumes");
        assert_eq!(c.view(0).resume(8), 0, "generation change rewinds");
        assert_eq!(c.view(1).resume(7), 0, "sides are independent");
        c.view(1).save(9, 5);
        assert_eq!(c.view(0).resume(7), 3);
        assert_eq!(c.view(1).resume(9), 5);
    }

    #[test]
    fn sent_bytes_accumulate_per_side() {
        let mut c = ContactOffers::new();
        c.add_sent(0, 100);
        c.add_sent(1, 40);
        c.add_sent(0, 1);
        assert_eq!(c.sent_bytes(), [101, 40]);
    }
}

//! Epidemic routing (Vahdat & Becker 2000).
//!
//! Nodes replicate every message to every peer that lacks it (summary-vector
//! anti-entropy). With infinite resources this is delay-optimal; under
//! finite buffers and bandwidth its performance hinges entirely on the
//! scheduling and dropping policies — which is precisely the knob the paper
//! turns.

use crate::candidates::{CandidateSource, RoutingBackend, Verdict};
use crate::offers::OfferView;
use crate::router::{CreateOutcome, ReceiveOutcome, Router};
use crate::state::NodeState;
use crate::util::{make_room_and_store, policy_victim, scan_policy, standard_receive};
use vdtn_bundle::{Message, MessageId, PolicyCombo, SchedulingPolicy};
use vdtn_sim_core::{NodeId, SimRng, SimTime};

/// Flooding router with pluggable buffer policies.
pub struct EpidemicRouter {
    policy: PolicyCombo,
    source: CandidateSource,
}

impl EpidemicRouter {
    /// Create with the given scheduling/dropping combination (default
    /// candidate-index backend).
    pub fn new(policy: PolicyCombo) -> Self {
        Self::with_backend(policy, RoutingBackend::default())
    }

    /// Create with an explicit scan backend (benches, equivalence tests).
    pub fn with_backend(policy: PolicyCombo, backend: RoutingBackend) -> Self {
        EpidemicRouter {
            policy,
            source: CandidateSource::new(backend),
        }
    }

    /// The active policy combination.
    pub fn policy(&self) -> PolicyCombo {
        self.policy
    }
}

/// The flooding eligibility verdict, shared by the serial scan
/// ([`Router::next_transfer`]) and the parallel shared scan
/// ([`Router::plan_transfer`]) so both paths decide identically.
/// Every rejection is permanent for this contact direction: a peer-knows
/// hit seen by the index scan can only mean destination consumption (buffer
/// membership is synced from deltas), expiry is final, and capacity fits
/// are constant per message.
fn flood_verdict<'a>(
    own: &'a NodeState,
    peer: &'a NodeState,
    now: SimTime,
) -> impl FnMut(MessageId) -> Verdict + 'a {
    move |id| {
        if peer.knows(id) {
            return Verdict::Never;
        }
        let msg = own.buffer.get(id).expect("ordered id is stored");
        if msg.is_expired(now) || !peer.buffer.could_fit(msg.size) {
            return Verdict::Never;
        }
        Verdict::Accept
    }
}

impl Router for EpidemicRouter {
    fn kind_label(&self) -> &'static str {
        "Epidemic"
    }

    fn next_transfer_draws_rng(&self) -> bool {
        self.policy.scheduling == SchedulingPolicy::Random
    }

    fn wants_buffer_deltas(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn on_message_created(
        &mut self,
        own: &mut NodeState,
        msg: Message,
        now: SimTime,
        rng: &mut SimRng,
    ) -> CreateOutcome {
        match make_room_and_store(own, msg, policy_victim(self.policy.dropping, now, rng)) {
            Ok(evicted) => CreateOutcome {
                stored: true,
                evicted,
            },
            Err(_) => CreateOutcome {
                stored: false,
                evicted: Vec::new(),
            },
        }
    }

    fn next_transfer(
        &mut self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MessageId> {
        // Scheduling policy orders the buffer; offer the first message the
        // peer does not already know and that could physically fit there.
        scan_policy(
            &mut self.source,
            self.policy.scheduling,
            &own.buffer,
            peer,
            offers,
            now,
            rng,
            flood_verdict(own, peer, now),
        )
    }

    fn scan_is_shared(&self) -> bool {
        self.source.wants_deltas(self.policy.scheduling)
    }

    fn plan_transfer(
        &self,
        own: &NodeState,
        peer: &NodeState,
        _peer_router: &dyn Router,
        offers: &mut OfferView<'_>,
        now: SimTime,
    ) -> Option<MessageId> {
        debug_assert!(self.scan_is_shared());
        offers.scan_index(
            self.policy.scheduling,
            &own.buffer,
            peer,
            flood_verdict(own, peer, now),
        )
    }

    fn on_message_received(
        &mut self,
        own: &mut NodeState,
        msg: &Message,
        _from: NodeId,
        now: SimTime,
        rng: &mut SimRng,
    ) -> ReceiveOutcome {
        standard_receive(own, msg, now, policy_victim(self.policy.dropping, now, rng))
    }

    fn on_transfer_success(
        &mut self,
        own: &mut NodeState,
        msg_id: MessageId,
        _to: NodeId,
        delivered: bool,
        _now: SimTime,
    ) {
        // Paper rule: after handing a message to its final destination the
        // sender discards its own copy. Otherwise Epidemic keeps replicating.
        if delivered {
            own.buffer.remove(msg_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offers::ContactOffers;
    use vdtn_sim_core::SimDuration;

    fn msg(id: u64, dst: u32, size: u64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(dst),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(ttl_min),
        )
    }

    fn setup() -> (EpidemicRouter, NodeState, NodeState, SimRng) {
        (
            EpidemicRouter::new(PolicyCombo::LIFETIME),
            NodeState::new(NodeId(1), 10_000, false),
            NodeState::new(NodeId(2), 10_000, false),
            SimRng::seed_from_u64(7),
        )
    }

    #[test]
    fn offers_messages_peer_lacks_in_policy_order() {
        let (mut r, mut own, peer, mut rng) = setup();
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9, 100, 10), now, &mut rng);
        r.on_message_created(&mut own, msg(2, 9, 100, 90), now, &mut rng);
        r.on_message_created(&mut own, msg(3, 9, 100, 50), now, &mut rng);
        // Lifetime DESC: longest TTL first → message 2.
        let mut offers = ContactOffers::new();
        let next = r.next_transfer(&own, &peer, &r_dummy(), &mut offers.view(0), now, &mut rng);
        assert_eq!(next, Some(MessageId(2)));
    }

    fn r_dummy() -> EpidemicRouter {
        EpidemicRouter::new(PolicyCombo::FIFO_FIFO)
    }

    #[test]
    fn skips_messages_peer_knows_or_excluded() {
        let (mut r, mut own, mut peer, mut rng) = setup();
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9, 100, 90), now, &mut rng);
        r.on_message_created(&mut own, msg(2, 9, 100, 50), now, &mut rng);
        // Peer already carries message 1.
        peer.buffer.insert(msg(1, 9, 100, 90)).unwrap();
        let mut offers = ContactOffers::new();
        let next = r.next_transfer(&own, &peer, &r_dummy(), &mut offers.view(0), now, &mut rng);
        assert_eq!(next, Some(MessageId(2)));
        // Marking message 2 offered silences the router.
        offers.record(MessageId(2), own.buffer.handle_of(MessageId(2)).unwrap());
        let next = r.next_transfer(&own, &peer, &r_dummy(), &mut offers.view(0), now, &mut rng);
        assert_eq!(next, None);
    }

    #[test]
    fn skips_messages_peer_consumed() {
        let (mut r, mut own, mut peer, mut rng) = setup();
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 2, 100, 90), now, &mut rng);
        peer.delivered.insert(MessageId(1));
        assert_eq!(
            r.next_transfer(
                &own,
                &peer,
                &r_dummy(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn skips_expired_and_oversized() {
        let (mut r, mut own, _, mut rng) = setup();
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 9, 100, 1), now, &mut rng);
        let later = SimTime::from_secs_f64(120.0);
        let peer = NodeState::new(NodeId(2), 10_000, false);
        assert_eq!(
            r.next_transfer(
                &own,
                &peer,
                &r_dummy(),
                &mut ContactOffers::new().view(0),
                later,
                &mut rng
            ),
            None,
            "expired message must not be offered"
        );
        // Message larger than the peer's whole buffer is never offered.
        // (Fresh router for the fresh node: a router's schedule cache is
        // bound to its own node's buffer, as in the engine.)
        let mut r2 = EpidemicRouter::new(PolicyCombo::LIFETIME);
        let mut own2 = NodeState::new(NodeId(1), 10_000, false);
        r2.on_message_created(&mut own2, msg(2, 9, 9_000, 90), now, &mut rng);
        let tiny_peer = NodeState::new(NodeId(2), 1_000, false);
        assert_eq!(
            r2.next_transfer(
                &own2,
                &tiny_peer,
                &r_dummy(),
                &mut ContactOffers::new().view(0),
                now,
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn sender_discards_after_final_delivery_only() {
        let (mut r, mut own, _, mut rng) = setup();
        let now = SimTime::ZERO;
        r.on_message_created(&mut own, msg(1, 2, 100, 90), now, &mut rng);
        r.on_transfer_success(&mut own, MessageId(1), NodeId(5), false, now);
        assert!(own.buffer.contains(MessageId(1)), "relay keeps its copy");
        r.on_transfer_success(&mut own, MessageId(1), NodeId(2), true, now);
        assert!(
            !own.buffer.contains(MessageId(1)),
            "copy discarded after delivering to destination"
        );
    }

    #[test]
    fn creation_overflow_uses_drop_policy() {
        let mut r = EpidemicRouter::new(PolicyCombo::LIFETIME);
        let mut own = NodeState::new(NodeId(1), 250, false);
        let mut rng = SimRng::seed_from_u64(1);
        let now = SimTime::ZERO;
        let c1 = r.on_message_created(&mut own, msg(1, 9, 100, 5), now, &mut rng);
        assert!(c1.stored && c1.evicted.is_empty());
        let c2 = r.on_message_created(&mut own, msg(2, 9, 100, 90), now, &mut rng);
        assert!(c2.stored);
        // Third message forces eviction of the shortest-TTL (message 1).
        let c3 = r.on_message_created(&mut own, msg(3, 9, 100, 50), now, &mut rng);
        assert!(c3.stored);
        assert_eq!(c3.evicted.len(), 1);
        assert_eq!(c3.evicted[0].id, MessageId(1));
    }
}

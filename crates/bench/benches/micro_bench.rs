//! Micro/ablation benches for the design choices called out in DESIGN.md:
//! contact detection back-ends, policy ordering cost, buffer operations,
//! and shortest-path algorithm choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdtn_bundle::{Buffer, Message, MessageId, SchedulingPolicy};
use vdtn_geo::{astar, dijkstra, GridMapGen, Point, SpatialGrid, SyntheticCityGen};
use vdtn_sim_core::{NodeId, SimDuration, SimRng, SimTime};

fn random_points(n: usize, w: f64, h: f64, seed: u64) -> Vec<Point> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.next_f64() * w, rng.next_f64() * h))
        .collect()
}

/// Ablation: spatial-grid vs naive pair scan, across node counts.
fn contact_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("contact_detection");
    for &n in &[45usize, 200, 1000] {
        let pts = random_points(n, 1300.0, 1000.0, 42);
        group.bench_with_input(BenchmarkId::new("grid", n), &pts, |b, pts| {
            let mut grid = SpatialGrid::new(30.0);
            let mut out = Vec::new();
            b.iter(|| {
                grid.rebuild(pts);
                out.clear();
                grid.pairs_within(30.0, &mut out);
                out.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &pts, |b, pts| {
            let mut grid = SpatialGrid::new(30.0);
            let mut out = Vec::new();
            b.iter(|| {
                grid.rebuild(pts);
                out.clear();
                grid.pairs_within_naive(30.0, &mut out);
                out.len()
            });
        });
    }
    group.finish();
}

fn filled_buffer(n: usize) -> Buffer {
    let mut b = Buffer::new(u64::MAX);
    for i in 0..n {
        let mut m = Message::new(
            MessageId(i as u64),
            NodeId(0),
            NodeId(1),
            1_000_000,
            SimTime::from_secs_f64(i as f64),
            SimDuration::from_mins(60 + (i % 120) as u64),
        );
        m.received = SimTime::from_secs_f64(i as f64);
        b.insert(m).unwrap();
    }
    b
}

/// Ablation: cost of the scheduling policies at realistic buffer sizes.
fn policy_ordering(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_ordering");
    let now = SimTime::from_secs_f64(1_000.0);
    for &n in &[50usize, 400] {
        let buffer = filled_buffer(n);
        for policy in [
            SchedulingPolicy::Fifo,
            SchedulingPolicy::Random,
            SchedulingPolicy::LifetimeDesc,
        ] {
            group.bench_with_input(
                BenchmarkId::new(policy.label().replace(' ', "_"), n),
                &buffer,
                |b, buffer| {
                    let mut rng = SimRng::seed_from_u64(3);
                    b.iter(|| policy.order(buffer, now, &mut rng).len());
                },
            );
        }
    }
    group.finish();
}

/// Buffer insert/remove churn at paper-scale sizes.
fn buffer_ops(c: &mut Criterion) {
    c.bench_function("buffer_ops/insert_remove_100", |b| {
        b.iter(|| {
            let mut buf = Buffer::new(u64::MAX);
            for i in 0..100u64 {
                buf.insert(Message::new(
                    MessageId(i),
                    NodeId(0),
                    NodeId(1),
                    1_000,
                    SimTime::ZERO,
                    SimDuration::from_mins(60),
                ))
                .unwrap();
            }
            for i in 0..100u64 {
                buf.remove(MessageId(i));
            }
            buf.len()
        });
    });
}

/// Ablation: Dijkstra vs A* on the calibrated city and the full-city map.
fn shortest_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_path");
    let mut rng = SimRng::seed_from_u64(11);
    let maps = [
        ("downtown", SyntheticCityGen::default().generate(&mut rng)),
        (
            "full_city",
            SyntheticCityGen::full_city().generate(&mut rng),
        ),
        (
            "grid20x20",
            GridMapGen {
                cols: 20,
                rows: 20,
                spacing: 100.0,
            }
            .generate(),
        ),
    ];
    for (label, map) in &maps {
        let from = map.nearest_vertex(Point::new(0.0, 0.0)).unwrap();
        let to = map
            .nearest_vertex(Point::new(map.bounds().max.x, map.bounds().max.y))
            .unwrap();
        group.bench_function(BenchmarkId::new("dijkstra", label), |b| {
            b.iter(|| dijkstra(map, from, to).map(|r| r.vertices.len()));
        });
        group.bench_function(BenchmarkId::new("astar", label), |b| {
            b.iter(|| astar(map, from, to).map(|r| r.vertices.len()));
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    contact_detection,
    policy_ordering,
    buffer_ops,
    shortest_path
);
criterion_main!(micro);

//! Routing-round microbenchmark: dense permanent contacts, isolated from
//! mobility.
//!
//! [`dense_routing_scenario`] pins every node to a tight stationary grid
//! (spacing below radio range), so movement, contact detection and TTL
//! housekeeping are negligible and wall time tracks phase 5 — the routing
//! round this PR makes incremental (schedule caches, per-contact offer
//! cursors, silent-round memo). Covers every scheduling policy (paper
//! combos plus extensions) under Epidemic, and the paper's Spray-and-Wait,
//! whose wait phase is the canonical idle-contact regime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdtn::engine::EngineMode;
use vdtn::{DropPolicy, PolicyCombo, RouterKind, RoutingBackend, SchedulingPolicy};
use vdtn_bench::engine_perf::{dense_routing_scenario, run_mode, run_with_backend};

fn routing_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_round");
    group.sample_size(10);

    // The paper's Table I combos, then every extension scheduling policy
    // paired with the paper's winning drop policy.
    let combos: Vec<(String, PolicyCombo)> = PolicyCombo::paper_table()
        .into_iter()
        .map(|p| (p.label(), p))
        .chain(
            [
                SchedulingPolicy::LifetimeAsc,
                SchedulingPolicy::SmallestFirst,
                SchedulingPolicy::YoungestFirst,
                SchedulingPolicy::FewestHops,
            ]
            .into_iter()
            .map(|s| {
                let p = PolicyCombo {
                    scheduling: s,
                    dropping: DropPolicy::LifetimeAsc,
                };
                (p.label(), p)
            }),
        )
        .collect();

    for (label, policy) in &combos {
        let scenario = dense_routing_scenario(400, 240.0, RouterKind::Epidemic, *policy, 42);
        group.bench_with_input(BenchmarkId::new("epidemic", label), &scenario, |b, sc| {
            b.iter(|| {
                run_mode(sc, EngineMode::EventDriven)
                    .messages
                    .transfers_started
            })
        });
    }

    // Spray and Wait: after the spray, contacts sit idle with full buffers
    // — the configuration where the incremental round pays off most.
    let scenario = dense_routing_scenario(
        400,
        240.0,
        RouterKind::paper_snw(),
        PolicyCombo::LIFETIME,
        42,
    );
    group.bench_with_input(
        BenchmarkId::new("snw", "Lifetime DESC-Lifetime ASC"),
        &scenario,
        |b, sc| {
            b.iter(|| {
                run_mode(sc, EngineMode::EventDriven)
                    .messages
                    .transfers_started
            })
        },
    );

    group.finish();

    // Backend ablation: the delta-maintained candidate index vs the PR 3
    // cursor-only rescan on the saturated Epidemic mesh — the combo where
    // every peer-buffer change used to trigger an O(buffer) rescan.
    let mut backends = c.benchmark_group("routing_backend");
    backends.sample_size(10);
    for (backend, label) in [
        (RoutingBackend::Index, "index"),
        (RoutingBackend::Rescan, "rescan"),
    ] {
        let scenario =
            dense_routing_scenario(400, 240.0, RouterKind::Epidemic, PolicyCombo::LIFETIME, 42);
        backends.bench_with_input(
            BenchmarkId::new("epidemic_lifetime", label),
            &scenario,
            |b, sc| {
                b.iter(|| {
                    run_with_backend(sc, EngineMode::EventDriven, backend)
                        .messages
                        .transfers_started
                })
            },
        );
    }
    backends.finish();
}

criterion_group!(benches, routing_round);
criterion_main!(benches);

//! Ticked vs event-driven engine stepping across fleet sizes.
//!
//! The headline ablation for the hybrid scheduler: identical scenarios
//! (paper mobility — 5–15 min waits, so most of the fleet is parked at any
//! instant) run to completion under both [`EngineMode`]s. The event-driven
//! engine skips work-free ticks and frontier-limits the executed ones, so
//! its advantage grows with fleet size; the two modes are asserted
//! bit-identical in `tests/engine_equivalence.rs` and in the
//! `engine_bench --json` harness that records `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdtn::engine::EngineMode;
use vdtn_bench::engine_perf::{engine_scenario, run_mode, transfer_bound_scenario};

fn engine_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_modes");
    group.sample_size(10);
    for &nodes in &[50usize, 200, 1000, 5000, 10000] {
        // Shorter horizons at larger fleets keep the ticked reference
        // affordable inside a bench run; speedups are per-tick properties
        // and do not depend on the horizon.
        let duration = match nodes {
            50 => 1_200.0,
            200 => 600.0,
            1000 => 240.0,
            _ => 120.0,
        };
        let scenario = engine_scenario(nodes, duration, 42);
        group.bench_with_input(BenchmarkId::new("ticked", nodes), &scenario, |b, sc| {
            b.iter(|| run_mode(sc, EngineMode::Ticked).messages.created)
        });
        group.bench_with_input(BenchmarkId::new("event", nodes), &scenario, |b, sc| {
            b.iter(|| run_mode(sc, EngineMode::EventDriven).messages.created)
        });
    }
    group.finish();
}

/// Transfer-bound regime: isolated stationary pairs draining few large
/// bundles over a slow radio. The ticked engine burns one tick per second
/// of drain; the event engine wakes once per bundle (`TransferComplete`),
/// so its wall time is independent of the drain duration.
fn transfer_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_bound");
    group.sample_size(10);
    for &pairs in &[4usize, 16] {
        let scenario = transfer_bound_scenario(pairs, 2_400.0, 42);
        group.bench_with_input(BenchmarkId::new("ticked", pairs * 2), &scenario, |b, sc| {
            b.iter(|| run_mode(sc, EngineMode::Ticked).messages.bytes_transferred)
        });
        group.bench_with_input(BenchmarkId::new("event", pairs * 2), &scenario, |b, sc| {
            b.iter(|| {
                run_mode(sc, EngineMode::EventDriven)
                    .messages
                    .bytes_transferred
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine_modes, transfer_bound);
criterion_main!(benches);

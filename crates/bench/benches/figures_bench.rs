//! Criterion benches mirroring the paper's figures, one scaled-down
//! benchmark per figure. Each bench runs the figure's most contended cell
//! (Epidemic/SnW at TTL 120) on a 20-minute horizon so `cargo bench`
//! completes in minutes; the full 12-hour regeneration lives in the
//! `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::{Scenario, World};

fn scaled(proto: PaperProtocol, ttl: u64, seed: u64) -> Scenario {
    let mut s = paper_scenario(proto, ttl, seed);
    s.duration_secs = 1_200.0; // 20 simulated minutes per iteration
    s
}

fn bench_fig(c: &mut Criterion, group_name: &str, protos: &[PaperProtocol]) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    for &proto in protos {
        group.bench_with_input(
            BenchmarkId::from_parameter(proto.label()),
            &proto,
            |b, &proto| {
                b.iter(|| {
                    let s = scaled(proto, 120, 7);
                    World::build(&s).run().messages.delivered_unique
                });
            },
        );
    }
    group.finish();
}

/// Figures 4-5: Epidemic under the three policy combinations.
fn fig4_5_epidemic_policies(c: &mut Criterion) {
    bench_fig(
        c,
        "fig4_5_epidemic_policies",
        &PaperProtocol::epidemic_policies(),
    );
}

/// Figures 6-7: Spray and Wait under the three policy combinations.
fn fig6_7_snw_policies(c: &mut Criterion) {
    bench_fig(c, "fig6_7_snw_policies", &PaperProtocol::snw_policies());
}

/// Figures 8-9: the four-protocol comparison.
fn fig8_9_protocols(c: &mut Criterion) {
    bench_fig(c, "fig8_9_protocols", &PaperProtocol::protocol_comparison());
}

criterion_group!(
    figures,
    fig4_5_epidemic_policies,
    fig6_7_snw_policies,
    fig8_9_protocols
);
criterion_main!(figures);

//! Terminal line charts: render figure series as ASCII plots.
//!
//! The paper's figures are line charts of metric vs TTL; the `figures`
//! binary prints an ASCII rendition of each next to the value table, so the
//! qualitative shape (who wins, where lines cross) is visible without
//! external plotting.

/// One line series: a label and y-values aligned with the shared x-axis.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Values, one per x position.
    pub values: Vec<f64>,
}

/// Render series as an ASCII chart of the given plot size.
///
/// Each series is drawn with its own marker (`A`, `B`, `C`, …); collisions
/// show the later series' marker. The legend maps markers to labels.
pub fn render(
    title: &str,
    x_labels: &[String],
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    assert!(!series.is_empty());
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series '{}' length mismatch",
            s.label
        );
    }

    let all: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    let (min, max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    // Pad a degenerate range so flat lines render mid-chart.
    let (min, max) = if (max - min).abs() < 1e-12 {
        (min - 1.0, max + 1.0)
    } else {
        (min, max)
    };

    let mut grid = vec![vec![' '; width]; height];
    let x_at = |i: usize| {
        if x_labels.len() <= 1 {
            0
        } else {
            i * (width - 1) / (x_labels.len() - 1)
        }
    };
    let y_at = |v: f64| {
        let norm = (v - min) / (max - min);
        // Row 0 is the top.
        height - 1 - ((norm * (height - 1) as f64).round() as usize).min(height - 1)
    };

    for (si, s) in series.iter().enumerate() {
        let marker = (b'A' + (si % 26) as u8) as char;
        let mut prev: Option<(usize, usize)> = None;
        for (i, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                prev = None;
                continue;
            }
            let (x, y) = (x_at(i), y_at(v));
            // Simple segment fill between consecutive points.
            if let Some((px, py)) = prev {
                let steps = x.saturating_sub(px).max(1);
                for step in 1..steps {
                    let ix = px + step;
                    let iy = (py as f64 + (y as f64 - py as f64) * step as f64 / steps as f64)
                        .round() as usize;
                    if grid[iy][ix] == ' ' {
                        grid[iy][ix] = '.';
                    }
                }
            }
            grid[y][x] = marker;
            prev = Some((x, y));
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (row_idx, row) in grid.iter().enumerate() {
        let y_val = max - (max - min) * row_idx as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:>9.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    // X labels, roughly positioned (buffer extends past the plot so the
    // last label is never truncated).
    let max_label = x_labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut xline = vec![' '; width + 11 + max_label];
    for (i, lab) in x_labels.iter().enumerate() {
        let pos = 11 + x_at(i);
        for (k, ch) in lab.chars().enumerate() {
            xline[pos + k] = ch;
        }
    }
    out.extend(xline.iter());
    out.push('\n');
    for (si, s) in series.iter().enumerate() {
        let marker = (b'A' + (si % 26) as u8) as char;
        out.push_str(&format!("  {marker} = {}\n", s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Vec<String> {
        ["60", "90", "120", "150", "180"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn renders_markers_and_legend() {
        let chart = render(
            "delay vs TTL",
            &xs(),
            &[
                Series {
                    label: "FIFO".into(),
                    values: vec![40.0, 55.0, 70.0, 80.0, 95.0],
                },
                Series {
                    label: "Lifetime".into(),
                    values: vec![30.0, 35.0, 40.0, 45.0, 50.0],
                },
            ],
            40,
            10,
        );
        assert!(chart.contains("delay vs TTL"));
        assert!(chart.contains('A'));
        assert!(chart.contains('B'));
        assert!(chart.contains("A = FIFO"));
        assert!(chart.contains("B = Lifetime"));
        assert!(chart.contains("60"));
        assert!(chart.contains("180"));
    }

    #[test]
    fn higher_values_render_higher() {
        let chart = render(
            "t",
            &xs(),
            &[Series {
                label: "up".into(),
                values: vec![0.0, 10.0, 20.0, 30.0, 40.0],
            }],
            40,
            8,
        );
        let lines: Vec<&str> = chart.lines().collect();
        // First data row (top) contains the marker for the max value
        // (rightmost), last data row for the min (leftmost).
        let top = lines.iter().position(|l| l.contains('A')).unwrap();
        let bottom = lines.iter().rposition(|l| l.contains('A')).unwrap();
        assert!(top < bottom);
        assert!(lines[top].rfind('A') > lines[bottom].rfind('A'));
    }

    #[test]
    fn flat_series_renders() {
        let chart = render(
            "flat",
            &xs(),
            &[Series {
                label: "c".into(),
                values: vec![5.0; 5],
            }],
            30,
            6,
        );
        assert!(chart.matches('A').count() >= 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_misaligned_series() {
        render(
            "bad",
            &xs(),
            &[Series {
                label: "x".into(),
                values: vec![1.0],
            }],
            30,
            6,
        );
    }
}

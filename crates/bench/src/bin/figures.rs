//! Regenerate every table and figure of the paper.
//!
//! ```text
//! figures [FLAGS]
//!   --all              regenerate Table I and Figures 4-9 (default)
//!   --table1           print the policy-combination table
//!   --fig4 … --fig9    regenerate a single figure
//!   --ablation-copies  Spray-and-Wait quota sweep L ∈ {4, 8, 12, 16}
//!   --ablation-tick    engine-tick sensitivity (0.5 s vs 1 s vs 2 s)
//!   --ablation-map     calibrated map vs full-city extent
//!   --seeds N          seeds per cell (default 3)
//!   --quick            2-hour horizon, 1 seed (smoke mode)
//!   --out DIR          output directory (default bench_results)
//!   --replot           re-render tables and ASCII charts from DIR/<fig>.csv
//!                      without re-running any simulation
//! ```
//!
//! Each figure prints the value table the paper plots, the measured deltas
//! against the FIFO–FIFO baseline side by side with the deltas the paper's
//! text states, and writes `DIR/<fig>.csv`.

use std::collections::HashMap;
use std::io::Write as _;
use vdtn::orchestrator::{run_manifest_with, ScenarioBase, SweepManifest, SweepOptions};
use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::scenario::{MapSpec, MobilitySpec};
use vdtn::sweep::{SweepError, SweepPoint};
use vdtn::{RoutingBackend, Scenario};
use vdtn_bench::harness::{
    assemble_figure, format_csv, format_table, paper_ttls, run_cells, FigureSpec, ScenarioTweak,
};
use vdtn_bench::reference::{paper_delta_reference, paper_ordering_claims};
use vdtn_geo::SyntheticCityGen;

struct Options {
    figures: Vec<FigureSpec>,
    table1: bool,
    ablation_copies: bool,
    ablation_tick: bool,
    ablation_map: bool,
    seeds: u64,
    quick: bool,
    out_dir: String,
    replot: bool,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        figures: Vec::new(),
        table1: false,
        ablation_copies: false,
        ablation_tick: false,
        ablation_map: false,
        seeds: 3,
        quick: false,
        out_dir: "bench_results".to_string(),
        replot: false,
    };
    let mut explicit = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => {
                opts.figures = FigureSpec::all();
                opts.table1 = true;
                explicit = true;
            }
            "--table1" => {
                opts.table1 = true;
                explicit = true;
            }
            "--fig4" => {
                opts.figures.push(FigureSpec::fig4());
                explicit = true;
            }
            "--fig5" => {
                opts.figures.push(FigureSpec::fig5());
                explicit = true;
            }
            "--fig6" => {
                opts.figures.push(FigureSpec::fig6());
                explicit = true;
            }
            "--fig7" => {
                opts.figures.push(FigureSpec::fig7());
                explicit = true;
            }
            "--fig8" => {
                opts.figures.push(FigureSpec::fig8());
                explicit = true;
            }
            "--fig9" => {
                opts.figures.push(FigureSpec::fig9());
                explicit = true;
            }
            "--ablation-copies" => {
                opts.ablation_copies = true;
                explicit = true;
            }
            "--ablation-tick" => {
                opts.ablation_tick = true;
                explicit = true;
            }
            "--ablation-map" => {
                opts.ablation_map = true;
                explicit = true;
            }
            "--seeds" => {
                opts.seeds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seeds needs a number");
            }
            "--quick" => opts.quick = true,
            "--replot" => {
                opts.replot = true;
                explicit = true;
            }
            "--out" => {
                opts.out_dir = it.next().expect("--out needs a directory").clone();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if !explicit {
        opts.figures = FigureSpec::all();
        opts.table1 = true;
    }
    opts
}

fn print_table1() {
    println!("## Table I — Combined scheduling-dropping policies\n");
    println!("{:<16} | Dropping", "Scheduling");
    println!("{}-+-{}", "-".repeat(16), "-".repeat(16));
    for combo in vdtn::PolicyCombo::paper_table() {
        println!(
            "{:<16} | {}",
            combo.scheduling.label(),
            combo.dropping.label()
        );
    }
    println!();
}

/// Print measured deltas vs FIFO-FIFO next to the paper's stated deltas.
fn print_delta_comparison(cache: &HashMap<(PaperProtocol, u64), SweepPoint>, ttls: &[u64]) {
    let rows = [
        (
            "Epidemic Random-FIFO",
            PaperProtocol::EpidemicFifo,
            PaperProtocol::EpidemicRandom,
        ),
        (
            "Epidemic Lifetime DESC-Lifetime ASC",
            PaperProtocol::EpidemicFifo,
            PaperProtocol::EpidemicLifetime,
        ),
        (
            "SnW Lifetime DESC-Lifetime ASC",
            PaperProtocol::SnwFifo,
            PaperProtocol::SnwLifetime,
        ),
    ];
    let refs = paper_delta_reference();
    println!("## Paper-vs-measured deltas against the FIFO-FIFO baseline\n");
    for (label, base, variant) in rows {
        let Some(reference) = refs.iter().find(|r| r.label == label) else {
            continue;
        };
        let cells: Option<Vec<(&SweepPoint, &SweepPoint)>> = ttls
            .iter()
            .map(|&t| Some((cache.get(&(base, t))?, cache.get(&(variant, t))?)))
            .collect();
        let Some(cells) = cells else {
            continue; // figure subset did not include these cells
        };
        println!("{label}:");
        println!(
            "  {:<28} {}",
            "TTL (min)",
            ttls.iter()
                .map(|t| format!("{t:>8}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let delay_meas: Vec<String> = cells
            .iter()
            .map(|(b, v)| format!("{:>8.1}", b.avg_delay_mins - v.avg_delay_mins))
            .collect();
        let delay_ref: Vec<String> = reference
            .delay_gain_mins
            .iter()
            .take(ttls.len())
            .map(|d| format!("{d:>8.1}"))
            .collect();
        println!(
            "  {:<28} {}",
            "delay gain, measured (min)",
            delay_meas.join(" ")
        );
        println!(
            "  {:<28} {}",
            "delay gain, paper (min)",
            delay_ref.join(" ")
        );
        let dp_meas: Vec<String> = cells
            .iter()
            .map(|(b, v)| format!("{:>+8.3}", v.delivery_probability - b.delivery_probability))
            .collect();
        let dp_ref: Vec<String> = reference
            .delivery_gain
            .iter()
            .take(ttls.len())
            .map(|d| format!("{d:>+8.3}"))
            .collect();
        println!("  {:<28} {}", "delivery gain, measured", dp_meas.join(" "));
        println!("  {:<28} {}", "delivery gain, paper", dp_ref.join(" "));
        println!();
    }
    println!("Paper ordering claims to check against the tables above:");
    for claim in paper_ordering_claims() {
        println!("  * {claim}");
    }
    println!();
}

/// Run one ablation variant — a customised scenario template over the seed
/// axis — through the orchestrator, returning its single averaged cell.
/// Expansion/averaging failures surface as typed [`SweepError`]s.
fn run_template_cell(
    label: &str,
    template: Scenario,
    ttl: u64,
    seeds: u64,
    tweak: &ScenarioTweak<'_>,
) -> Result<SweepPoint, SweepError> {
    let manifest = SweepManifest {
        name: template.name.clone(),
        base: ScenarioBase::Custom(Box::new(template)),
        protocols: Vec::new(),
        policies: Vec::new(),
        vehicles: Vec::new(),
        ttls_mins: vec![ttl],
        engines: Vec::new(),
        seeds: (0..seeds).map(|s| 1000 + s).collect(),
        backend: RoutingBackend::default(),
        duration_secs: 0.0,
    };
    let outcome = run_manifest_with(&manifest, &SweepOptions::default(), Some(tweak))?;
    let mut point = outcome
        .points
        .into_iter()
        .next()
        .ok_or(SweepError::EmptyCell {
            label: label.to_string(),
        })?;
    point.label = label.to_string();
    Ok(point)
}

fn ablation_copies(seeds: u64, tweak: &ScenarioTweak<'_>, out_dir: &str) -> Result<(), SweepError> {
    println!("## Ablation — Spray and Wait initial copies L (paper fixes L = 12)\n");
    let ttl = 120;
    let mut rows = Vec::new();
    for copies in [4u32, 8, 12, 16] {
        let mut template = paper_scenario(PaperProtocol::SnwLifetime, ttl, 0);
        template.router = vdtn::RouterKind::SprayAndWait {
            copies,
            binary: true,
        };
        template.name = format!("ablation/snw-L{copies}");
        let p = run_template_cell(&format!("SnW L={copies}"), template, ttl, seeds, tweak)?;
        println!("  {}", p.table_row());
        rows.push(p);
    }
    write_csv_points(out_dir, "ablation_copies", &rows);
    println!();
    Ok(())
}

fn ablation_tick(seeds: u64, tweak: &ScenarioTweak<'_>, out_dir: &str) -> Result<(), SweepError> {
    println!("## Ablation — engine tick length (metric drift vs 1 s baseline)\n");
    let ttl = 120;
    let mut rows = Vec::new();
    for tick in [0.5, 1.0, 2.0] {
        let mut template = paper_scenario(PaperProtocol::EpidemicLifetime, ttl, 0);
        template.tick_secs = tick;
        template.name = format!("ablation/tick{tick}");
        let p = run_template_cell(&format!("tick={tick}s"), template, ttl, seeds, tweak)?;
        println!("  {}", p.table_row());
        rows.push(p);
    }
    write_csv_points(out_dir, "ablation_tick", &rows);
    println!();
    Ok(())
}

fn ablation_map(seeds: u64, tweak: &ScenarioTweak<'_>, out_dir: &str) -> Result<(), SweepError> {
    println!("## Ablation — calibrated downtown map vs full-city extent\n");
    let ttl = 120;
    let mut rows = Vec::new();
    for (label, gen) in [
        ("downtown 1300x1000 (default)", SyntheticCityGen::default()),
        ("full city 4500x3400", SyntheticCityGen::full_city()),
    ] {
        let mut template = paper_scenario(PaperProtocol::EpidemicLifetime, ttl, 0);
        template.map = MapSpec::Synthetic(gen.clone());
        template.name = format!("ablation/map/{label}");
        let p = run_template_cell(label, template, ttl, seeds, tweak)?;
        println!("  {}", p.table_row());
        rows.push(p);
    }
    write_csv_points(out_dir, "ablation_map", &rows);
    println!();
    Ok(())
}

fn write_csv_points(out_dir: &str, name: &str, points: &[SweepPoint]) {
    let path = format!("{out_dir}/{name}.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    writeln!(
        f,
        "label,ttl_mins,delivery_probability,avg_delay_mins,seeds"
    )
    .unwrap();
    for p in points {
        writeln!(
            f,
            "{},{},{:.4},{:.2},{}",
            p.label, p.ttl_mins, p.delivery_probability, p.avg_delay_mins, p.seeds
        )
        .unwrap();
    }
    println!("  -> {path}");
}

/// Re-render saved figure CSVs (tables + ASCII charts) without simulating.
fn replot(out_dir: &str) {
    for fig in FigureSpec::all() {
        let path = format!("{out_dir}/{}.csv", fig.id);
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!("skipping {}: no {path} (run the sweep first)", fig.id);
            continue;
        };
        // CSV layout: label,ttl_mins,value,sd,seeds — rows grouped by label.
        let mut labels: Vec<String> = Vec::new();
        let mut ttls: Vec<String> = Vec::new();
        let mut values: HashMap<String, Vec<f64>> = HashMap::new();
        for line in text.lines().skip(1) {
            let cols: Vec<&str> = line.split(',').collect();
            if cols.len() < 3 {
                continue;
            }
            let label = cols[0].to_string();
            let ttl = format!("{}", cols[1].parse::<f64>().unwrap_or(0.0) as u64);
            if !labels.contains(&label) {
                labels.push(label.clone());
            }
            if !ttls.contains(&ttl) {
                ttls.push(ttl);
            }
            values
                .entry(label)
                .or_default()
                .push(cols[2].parse().unwrap_or(f64::NAN));
        }
        if labels.is_empty() {
            continue;
        }
        let series: Vec<vdtn_bench::Series> = labels
            .iter()
            .map(|l| vdtn_bench::Series {
                label: l.clone(),
                values: values[l].clone(),
            })
            .collect();
        println!("## {} — {} (replotted from {path})\n", fig.id, fig.title);
        println!("{}", vdtn_bench::render(fig.title, &ttls, &series, 60, 14));
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("figures: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), SweepError> {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");

    if opts.replot {
        replot(&opts.out_dir);
        return Ok(());
    }

    let seeds = if opts.quick { 1 } else { opts.seeds };
    let quick = opts.quick;
    let tweak = move |s: &mut Scenario| {
        if quick {
            s.duration_secs = 7_200.0;
            // Keep vehicles moving from the start in the short horizon.
            for g in &mut s.groups {
                if let MobilitySpec::ShortestPathMapBased(cfg) = &mut g.mobility {
                    cfg.wait_hi = cfg.wait_hi.min(300.0);
                }
            }
        }
    };

    if opts.table1 {
        print_table1();
    }

    if !opts.figures.is_empty() {
        let ttls = paper_ttls();
        // Union of all cells needed by the requested figures, deduplicated.
        let mut cells: Vec<(PaperProtocol, u64)> = Vec::new();
        for fig in &opts.figures {
            for &p in &fig.protocols {
                for &t in &ttls {
                    if !cells.contains(&(p, t)) {
                        cells.push((p, t));
                    }
                }
            }
        }
        eprintln!(
            "running {} cells x {} seeds ({} simulations of {} simulated hours)…",
            cells.len(),
            seeds,
            cells.len() * seeds as usize,
            if quick { 2 } else { 12 },
        );
        let t0 = std::time::Instant::now();
        let cache = run_cells(&cells, seeds, &tweak);
        eprintln!("sweep finished in {:.0} s wall", t0.elapsed().as_secs_f64());

        for fig in &opts.figures {
            let result = assemble_figure(fig, &ttls, &cache);
            println!("{}", format_table(&result));
            // ASCII rendition of the figure so the line shapes (who wins,
            // where curves cross) are visible in the terminal.
            let series: Vec<vdtn_bench::Series> = result
                .points
                .iter()
                .map(|row| vdtn_bench::Series {
                    label: row[0].label.clone(),
                    values: row.iter().map(|p| fig.metric.of(p)).collect(),
                })
                .collect();
            let x_labels: Vec<String> = ttls.iter().map(|t| t.to_string()).collect();
            println!(
                "{}",
                vdtn_bench::render(fig.title, &x_labels, &series, 60, 14)
            );
            let path = format!("{}/{}.csv", opts.out_dir, fig.id);
            std::fs::write(&path, format_csv(&result)).expect("write csv");
            println!("  -> {path}\n");
        }
        // Delta comparison needs the policy figures' cells; print whenever
        // the epidemic set is present.
        print_delta_comparison(&cache, &ttls);
    }

    if opts.ablation_copies {
        ablation_copies(seeds, &tweak, &opts.out_dir)?;
    }
    if opts.ablation_tick {
        ablation_tick(seeds, &tweak, &opts.out_dir)?;
    }
    if opts.ablation_map {
        ablation_map(seeds, &tweak, &opts.out_dir)?;
    }
    Ok(())
}

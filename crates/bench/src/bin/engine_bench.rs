//! One-shot engine-scheduler benchmark harness.
//!
//! Runs the ticked and event-driven engines on identical scenarios across
//! fleet sizes — the paper-mobility sweep plus the transfer-bound scenario
//! (few large bundles over a slow radio; the event engine rides scheduled
//! `TransferComplete` instants instead of per-tick byte draining) —
//! verifies the reports are bit-identical, and prints small tables. With
//! `--json [PATH]` it also records the measurements as JSON (default
//! `BENCH_engine.json`, with the transfer scenario under
//! `"transfer_bound"`), which is the repo's perf trajectory for the
//! scheduler. `--duration-secs` shortens both sections (CI smoke).
//!
//! With `--routing [PATH]` it additionally measures the routing-round-
//! dominated dense-contact scenario (stationary mesh, permanent contacts;
//! see [`vdtn_bench::engine_perf::dense_routing_scenario`]) after the
//! engine-modes table and records it as JSON (default
//! `BENCH_routing.json`) — the trajectory for the incremental-routing
//! work. The routing section's fleet sizes and durations are fixed (the
//! regime, not the scale, is the point); `--nodes`/`--duration-secs` apply
//! to the engine-modes section only.
//!
//! ```text
//! engine_bench [--json [PATH]] [--routing [PATH]] [--nodes 50,200,1000,5000,10000]
//!              [--duration-secs N] [--seed N]
//! ```

use vdtn::engine::EngineMode;
use vdtn::{PolicyCombo, RouterKind};
use vdtn_bench::engine_perf::{
    canon, dense_routing_scenario, engine_scenario, run_mode, transfer_bound_scenario,
};

struct Entry {
    nodes: usize,
    duration_secs: f64,
    ticked_wall_secs: f64,
    event_wall_secs: f64,
    speedup: f64,
    identical: bool,
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut routing_path: Option<String> = None;
    let mut nodes: Vec<usize> = vec![50, 200, 1000, 5000, 10000];
    let mut duration_override: Option<f64> = None;
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                // Optional path operand; default name otherwise.
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_engine.json".to_string(),
                };
                json_path = Some(path);
            }
            "--routing" => {
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_routing.json".to_string(),
                };
                routing_path = Some(path);
            }
            "--nodes" => {
                let list = args.next().expect("--nodes needs a comma-separated list");
                nodes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("node count"))
                    .collect();
            }
            "--duration-secs" => {
                duration_override = Some(
                    args.next()
                        .expect("--duration-secs needs a value")
                        .parse()
                        .expect("seconds"),
                );
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: engine_bench [--json [PATH]] [--routing [PATH]] [--nodes 50,200,1000,5000,10000] [--duration-secs N] [--seed N]");
                std::process::exit(2);
            }
        }
    }

    println!("engine scheduler: ticked vs event-driven (bit-identical reports)");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "sim secs", "ticked s", "event s", "speedup", "identical"
    );
    let mut entries = Vec::new();
    for &n in &nodes {
        let duration = duration_override.unwrap_or(match n {
            0..=99 => 1_200.0,
            100..=499 => 600.0,
            500..=2_499 => 240.0,
            _ => 120.0,
        });
        let scenario = engine_scenario(n, duration, seed);
        let ticked = run_mode(&scenario, EngineMode::Ticked);
        let event = run_mode(&scenario, EngineMode::EventDriven);
        let identical = canon(ticked.clone()) == canon(event.clone());
        let entry = Entry {
            nodes: n,
            duration_secs: duration,
            ticked_wall_secs: ticked.wall_secs,
            event_wall_secs: event.wall_secs,
            speedup: ticked.wall_secs / event.wall_secs.max(1e-9),
            identical,
        };
        println!(
            "{:>6} {:>10.0} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            entry.nodes,
            entry.duration_secs,
            entry.ticked_wall_secs,
            entry.event_wall_secs,
            entry.speedup,
            entry.identical,
        );
        entries.push(entry);
    }

    // Transfer-bound section: few large bundles over a slow radio under
    // permanent contacts — engine work should be O(bundles), independent of
    // how many seconds each bundle drains. Part of the default run (and of
    // BENCH_engine.json) so the smoke step always checks its identity too.
    println!("transfer-bound: isolated stationary pairs, 1-2 MB bundles at 4 kB/s");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "sim secs", "ticked s", "event s", "speedup", "identical"
    );
    let mut transfer_entries = Vec::new();
    for &pairs in &[4usize, 16] {
        let duration = duration_override.unwrap_or(2_400.0);
        let scenario = transfer_bound_scenario(pairs, duration, seed);
        let ticked = run_mode(&scenario, EngineMode::Ticked);
        let event = run_mode(&scenario, EngineMode::EventDriven);
        let identical = canon(ticked.clone()) == canon(event.clone());
        let entry = Entry {
            nodes: pairs * 2,
            duration_secs: duration,
            ticked_wall_secs: ticked.wall_secs,
            event_wall_secs: event.wall_secs,
            speedup: ticked.wall_secs / event.wall_secs.max(1e-9),
            identical,
        };
        println!(
            "{:>6} {:>10.0} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            entry.nodes,
            entry.duration_secs,
            entry.ticked_wall_secs,
            entry.event_wall_secs,
            entry.speedup,
            entry.identical,
        );
        transfer_entries.push(entry);
    }

    let any_mismatch = entries
        .iter()
        .chain(transfer_entries.iter())
        .any(|e| !e.identical);
    if let Some(path) = json_path {
        // Hand-rolled JSON keeps the schema explicit and the vendored
        // serde_json shim out of the float-formatting hot seat.
        let row = |e: &Entry| {
            format!(
                "    {{\"nodes\": {}, \"sim_duration_secs\": {}, \"ticked_wall_secs\": {:.6}, \"event_wall_secs\": {:.6}, \"speedup\": {:.3}, \"reports_identical\": {}}}",
                e.nodes, e.duration_secs, e.ticked_wall_secs, e.event_wall_secs, e.speedup, e.identical
            )
        };
        let rows: Vec<String> = entries.iter().map(row).collect();
        let transfer_rows: Vec<String> = transfer_entries.iter().map(row).collect();
        let doc = format!(
            "{{\n  \"benchmark\": \"engine_modes\",\n  \"description\": \"World::run wall time, ticked vs event-driven scheduler, identical scenarios (paper mobility, Epidemic + Lifetime policies)\",\n  \"seed\": {},\n  \"entries\": [\n{}\n  ],\n  \"transfer_bound\": [\n{}\n  ]\n}}\n",
            seed,
            rows.join(",\n"),
            transfer_rows.join(",\n")
        );
        std::fs::write(&path, doc).expect("write benchmark JSON");
        println!("wrote {path}");
    }
    if any_mismatch {
        eprintln!("ERROR: event-driven report diverged from ticked reference");
        std::process::exit(1);
    }
    if let Some(path) = routing_path {
        run_routing_section(&path, seed);
    }
}

/// Measure the dense-contact, routing-round-dominated scenario (event-driven
/// wall time, with a ticked identity check) across fleet sizes and the
/// paper's sorted-vs-FIFO policy extremes, writing `path` as JSON.
fn run_routing_section(path: &str, seed: u64) {
    println!("routing round: dense stationary mesh, permanent contacts");
    println!(
        "{:>6} {:>10} {:>24} {:>12} {:>12} {:>10}",
        "nodes", "sim secs", "policy", "ticked s", "event s", "identical"
    );
    let mut rows = Vec::new();
    let mut any_mismatch = false;
    for &(n, duration) in &[(1000usize, 600.0f64), (5000, 300.0), (10000, 300.0)] {
        for (router, policy, label) in [
            (
                RouterKind::Epidemic,
                PolicyCombo::FIFO_FIFO,
                "Epidemic FIFO-FIFO",
            ),
            (
                RouterKind::Epidemic,
                PolicyCombo::LIFETIME,
                "Epidemic Lifetime",
            ),
            (
                RouterKind::paper_snw(),
                PolicyCombo::LIFETIME,
                "SnW Lifetime",
            ),
        ] {
            let scenario = dense_routing_scenario(n, duration, router, policy, seed);
            let ticked = run_mode(&scenario, EngineMode::Ticked);
            let event = run_mode(&scenario, EngineMode::EventDriven);
            let identical = canon(ticked.clone()) == canon(event.clone());
            any_mismatch |= !identical;
            println!(
                "{:>6} {:>10.0} {:>24} {:>12.3} {:>12.3} {:>10}",
                n, duration, label, ticked.wall_secs, event.wall_secs, identical
            );
            rows.push(format!(
                "    {{\"nodes\": {}, \"sim_duration_secs\": {}, \"policy\": \"{}\", \"ticked_wall_secs\": {:.6}, \"event_wall_secs\": {:.6}, \"reports_identical\": {}}}",
                n, duration, label, ticked.wall_secs, event.wall_secs, identical
            ));
        }
    }
    let doc = format!(
        "{{\n  \"benchmark\": \"routing_round\",\n  \"description\": \"World::run wall time on the dense-contact stationary mesh (routing round dominates; Epidemic, permanent contacts)\",\n  \"seed\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        seed,
        rows.join(",\n")
    );
    std::fs::write(path, doc).expect("write routing benchmark JSON");
    println!("wrote {path}");
    if any_mismatch {
        eprintln!("ERROR: event-driven report diverged from ticked reference");
        std::process::exit(1);
    }
}

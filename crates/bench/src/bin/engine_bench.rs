//! One-shot engine-scheduler benchmark harness.
//!
//! Runs the ticked and event-driven engines on identical scenarios across
//! fleet sizes — the paper-mobility sweep plus the transfer-bound scenario
//! (few large bundles over a slow radio; the event engine rides scheduled
//! `TransferComplete` instants instead of per-tick byte draining) —
//! verifies the reports are bit-identical, and prints small tables. With
//! `--json [PATH]` it also records the measurements as JSON (default
//! `BENCH_engine.json`, with the transfer scenario under
//! `"transfer_bound"`), which is the repo's perf trajectory for the
//! scheduler. `--duration-secs` shortens both sections (CI smoke).
//!
//! With `--routing [PATH]` it additionally measures the routing-round-
//! dominated dense-contact scenario (stationary mesh, permanent contacts;
//! see [`vdtn_bench::engine_perf::dense_routing_scenario`]) after the
//! engine-modes table and records it as JSON (default
//! `BENCH_routing.json`) — the trajectory for the incremental-routing
//! work. Each routing row runs four configurations — ticked reference,
//! event-driven with the delta-maintained candidate **index**,
//! event-driven with the PR 3 cursor-only **rescan**, and the sharded
//! **parallel** engine — verifies all four reports are bit-identical, and
//! records the index-vs-cursor and parallel-vs-ticked speedups. The
//! fleet sizes and durations default to the fixed perf-trajectory set
//! (the regime, not the scale, is the point); `--routing-nodes` overrides
//! them for CI smoke runs, with `--duration-secs` then bounding the
//! routing durations too.
//!
//! `--threads N` pins the parallel engine's pool size (recorded as
//! `"threads"` in both JSON documents); the default follows
//! `VDTN_THREADS` / the machine's core count, exactly like the engine.
//! Every row in both files carries `parallel_wall_secs`.
//!
//! The `--json` run also writes a `"memory"` section: peak RSS and
//! bytes/node on the dense-mesh scenario at 1k/10k/100k nodes (override
//! with `--memory-nodes`). Because `VmHWM` is a process-lifetime high
//! water mark, each size is measured in a fresh child process — the
//! binary re-execs itself with the hidden `--memory-probe N` flag, the
//! child runs one world and prints its row. On platforms without
//! `/proc/self/status` the RSS fields are recorded as JSON `null`.
//!
//! Both JSON files carry `"schema_version"` (currently 6; v3 added the
//! parallel engine columns, v4 the `memory` section and the 100k-node
//! sweep row, v5 the `motion` skip-rate section and the
//! `parallel_overhead` warning field, v6 the `sweep` orchestrator
//! section); an unwritable output path is a clean, explained non-zero
//! exit, not a panic.
//!
//! With `--sweep-bench` the run also measures the sweep orchestrator
//! (`vdtn::orchestrator`) on a 1000-run manifest (mini base, the four
//! comparison protocols × the paper TTL axis × 50 seeds; scale with
//! `--sweep-seeds`): work-stealing throughput in runs/sec against the
//! plain per-cell `run_sweep` + `average_reports` path on the *same*
//! expansion, aggregate bit-identity at 1/2/4/8-thread pools, journal
//! write + truncate-at-half + `--resume` replay bit-identity, and peak
//! RSS at quarter vs full run count (fresh probe process per size via
//! the hidden `--sweep-probe` flag, like the memory section) — flat RSS
//! is the O(cells) streaming-accumulator claim, measured. Recorded under
//! `"sweep"` in the engine JSON; any identity failure fails the run.
//!
//! The `motion` section records the event engine's movement counters per
//! sweep size — ticks executed/skipped and movement-model advances versus
//! the `mobile_nodes × ticks` the ticked reference performs — so speedup
//! changes are directly attributable to motion work actually elided.
//!
//! The `mobility_bound` section (sizes from `--mobility-nodes`, default
//! 2000) re-runs the paper fleet with deliberately sparse traffic, making
//! the run movement-dominated wall to wall: the motion-segment protocol's
//! target regime, and the row the CI perf floor holds to "event no slower
//! than ticked". Its skip-rate counters join the `motion` section with
//! `"scenario": "mobility_bound"`.
//!
//! A sweep entry gains `"parallel_overhead": true` when the parallel
//! engine is slower than the serial event engine *on a one-thread pool* —
//! that combination means the sharding machinery itself is pure overhead
//! (no cores to win back), which a CI perf floor must distinguish from a
//! real scheduler regression.
//!
//! ```text
//! engine_bench [--json [PATH]] [--routing [PATH]] [--routing-nodes N,N]
//!              [--nodes 50,200,1000,5000,10000,100000] [--memory-nodes N,N]
//!              [--mobility-nodes N,N] [--duration-secs N] [--seed N]
//!              [--threads N] [--sweep-bench] [--sweep-seeds N]
//! ```

use vdtn::engine::EngineMode;
use vdtn::orchestrator::{run_manifest, RunSpec, ScenarioBase, SweepManifest, SweepOptions};
use vdtn::presets::{PaperProtocol, PAPER_TTLS_MIN};
use vdtn::sweep::{average_reports, run_sweep_with_options, SweepPoint};
use vdtn::{PolicyCombo, RouterKind, RoutingBackend};
use vdtn_bench::engine_perf::{
    canon, dense_routing_scenario, engine_scenario, mobility_bound_scenario, run_mode,
    run_mode_with_stats, run_parallel, run_with_backend, transfer_bound_scenario,
};

/// Version of the JSON layout this binary writes (bumped when fields
/// change; PR 5 added the routing section's index/rescan split, PR 6 the
/// sharded parallel engine's `parallel_wall_secs`/`threads` columns, PR 7
/// the `memory` section and the 100k-node sweep row, PR 8 the `motion`
/// skip-rate section and the `parallel_overhead` warning field, PR 9 the
/// `sweep` orchestrator section).
const SCHEMA_VERSION: u32 = 6;

/// Write a benchmark JSON document, exiting non-zero with a clear message
/// when the path cannot be written (read-only dir, missing parent, …).
fn write_json(path: &str, doc: &str) {
    if let Err(e) = std::fs::write(path, doc) {
        eprintln!("error: cannot write benchmark JSON to '{path}': {e}");
        eprintln!("hint: check the directory exists and is writable, or pass a different path");
        std::process::exit(1);
    }
    println!("wrote {path} (schema v{SCHEMA_VERSION})");
}

struct Entry {
    nodes: usize,
    duration_secs: f64,
    ticked_wall_secs: f64,
    event_wall_secs: f64,
    parallel_wall_secs: f64,
    speedup: f64,
    identical: bool,
    /// True when the parallel engine lost to the serial event engine on a
    /// one-thread pool: sharding overhead with no cores to win it back —
    /// expected on single-core boxes, and distinct from a real regression.
    parallel_overhead: bool,
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut routing_path: Option<String> = None;
    let mut nodes: Vec<usize> = vec![50, 200, 1000, 5000, 10000, 100000];
    let mut routing_nodes: Option<Vec<usize>> = None;
    let mut mobility_nodes: Vec<usize> = vec![2000];
    let mut memory_nodes: Vec<usize> = vec![1000, 10000, 100000];
    let mut memory_probe: Option<usize> = None;
    let mut sweep_bench = false;
    let mut sweep_seeds: usize = 50;
    let mut sweep_probe: Option<usize> = None;
    let mut duration_override: Option<f64> = None;
    let mut seed = 42u64;
    let mut threads: usize = rayon::current_num_threads();

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                // Optional path operand; default name otherwise.
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_engine.json".to_string(),
                };
                json_path = Some(path);
            }
            "--routing" => {
                let path = match args.peek() {
                    Some(p) if !p.starts_with("--") => args.next().expect("peeked"),
                    _ => "BENCH_routing.json".to_string(),
                };
                routing_path = Some(path);
            }
            "--nodes" => {
                let list = args.next().expect("--nodes needs a comma-separated list");
                nodes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("node count"))
                    .collect();
            }
            "--routing-nodes" => {
                let list = args
                    .next()
                    .expect("--routing-nodes needs a comma-separated list");
                routing_nodes = Some(
                    list.split(',')
                        .map(|s| s.trim().parse().expect("node count"))
                        .collect(),
                );
            }
            "--mobility-nodes" => {
                let list = args
                    .next()
                    .expect("--mobility-nodes needs a comma-separated list");
                mobility_nodes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("node count"))
                    .collect();
            }
            "--memory-nodes" => {
                let list = args
                    .next()
                    .expect("--memory-nodes needs a comma-separated list");
                memory_nodes = list
                    .split(',')
                    .map(|s| s.trim().parse().expect("node count"))
                    .collect();
            }
            "--memory-probe" => {
                memory_probe = Some(
                    args.next()
                        .expect("--memory-probe needs a node count")
                        .parse()
                        .expect("node count"),
                );
            }
            "--sweep-bench" => {
                sweep_bench = true;
            }
            "--sweep-seeds" => {
                sweep_seeds = args
                    .next()
                    .expect("--sweep-seeds needs a value")
                    .parse()
                    .expect("seed count");
                assert!(sweep_seeds >= 2, "--sweep-seeds needs at least 2");
            }
            "--sweep-probe" => {
                sweep_probe = Some(
                    args.next()
                        .expect("--sweep-probe needs a seed count")
                        .parse()
                        .expect("seed count"),
                );
            }
            "--duration-secs" => {
                duration_override = Some(
                    args.next()
                        .expect("--duration-secs needs a value")
                        .parse()
                        .expect("seconds"),
                );
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("thread count");
                assert!(threads >= 1, "--threads needs a positive count");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: engine_bench [--json [PATH]] [--routing [PATH]] [--routing-nodes N,N] [--nodes 50,200,1000,5000,10000] [--mobility-nodes N,N] [--memory-nodes N,N] [--duration-secs N] [--seed N] [--threads N] [--sweep-bench] [--sweep-seeds N]");
                std::process::exit(2);
            }
        }
    }

    if let Some(n) = memory_probe {
        run_memory_probe(n, duration_override.unwrap_or(60.0), seed, threads);
    }
    if let Some(n) = sweep_probe {
        run_sweep_probe(n, threads);
    }

    println!(
        "engine scheduler: ticked vs event-driven vs parallel[{threads}t] (bit-identical reports)"
    );
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "sim secs", "ticked s", "event s", "parallel s", "speedup", "identical"
    );
    let mut entries = Vec::new();
    let mut motion_rows = Vec::new();
    for &n in &nodes {
        let duration = duration_override.unwrap_or(match n {
            0..=99 => 1_200.0,
            100..=499 => 600.0,
            500..=2_499 => 240.0,
            2_500..=20_000 => 120.0,
            _ => 60.0,
        });
        let scenario = engine_scenario(n, duration, seed);
        let ticked = run_mode(&scenario, EngineMode::Ticked);
        let (event, stats) = run_mode_with_stats(&scenario, EngineMode::EventDriven);
        let parallel = run_parallel(&scenario, RoutingBackend::default(), threads);
        let identical = canon(ticked.clone()) == canon(event.clone())
            && canon(event.clone()) == canon(parallel.clone());
        let entry = Entry {
            nodes: n,
            duration_secs: duration,
            ticked_wall_secs: ticked.wall_secs,
            event_wall_secs: event.wall_secs,
            parallel_wall_secs: parallel.wall_secs,
            speedup: ticked.wall_secs / event.wall_secs.max(1e-9),
            identical,
            parallel_overhead: threads == 1 && parallel.wall_secs > event.wall_secs,
        };
        println!(
            "{:>6} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            entry.nodes,
            entry.duration_secs,
            entry.ticked_wall_secs,
            entry.event_wall_secs,
            entry.parallel_wall_secs,
            entry.speedup,
            entry.identical,
        );
        if entry.parallel_overhead {
            println!(
                "        warning: parallel ({:.3}s) slower than event ({:.3}s) on a 1-thread pool — sharding overhead, not a scheduler regression",
                entry.parallel_wall_secs, entry.event_wall_secs
            );
        }
        motion_rows.push(format!(
            "    {{\"scenario\": \"sweep\", \"nodes\": {}, \"sim_duration_secs\": {}, \"ticks_executed\": {}, \"ticks_skipped\": {}, \"movement_advances\": {}, \"movement_node_ticks\": {}, \"movement_skip_rate\": {:.6}}}",
            n,
            duration,
            stats.ticks_executed,
            stats.ticks_skipped,
            stats.movement_advances,
            stats.movement_node_ticks,
            stats.movement_skip_rate(),
        ));
        entries.push(entry);
    }

    // Transfer-bound section: few large bundles over a slow radio under
    // permanent contacts — engine work should be O(bundles), independent of
    // how many seconds each bundle drains. Part of the default run (and of
    // BENCH_engine.json) so the smoke step always checks its identity too.
    println!("transfer-bound: isolated stationary pairs, 1-2 MB bundles at 4 kB/s");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "sim secs", "ticked s", "event s", "parallel s", "speedup", "identical"
    );
    let mut transfer_entries = Vec::new();
    for &pairs in &[4usize, 16] {
        let duration = duration_override.unwrap_or(2_400.0);
        let scenario = transfer_bound_scenario(pairs, duration, seed);
        let ticked = run_mode(&scenario, EngineMode::Ticked);
        let event = run_mode(&scenario, EngineMode::EventDriven);
        let parallel = run_parallel(&scenario, RoutingBackend::default(), threads);
        let identical = canon(ticked.clone()) == canon(event.clone())
            && canon(event.clone()) == canon(parallel.clone());
        let entry = Entry {
            nodes: pairs * 2,
            duration_secs: duration,
            ticked_wall_secs: ticked.wall_secs,
            event_wall_secs: event.wall_secs,
            parallel_wall_secs: parallel.wall_secs,
            speedup: ticked.wall_secs / event.wall_secs.max(1e-9),
            identical,
            parallel_overhead: threads == 1 && parallel.wall_secs > event.wall_secs,
        };
        println!(
            "{:>6} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            entry.nodes,
            entry.duration_secs,
            entry.ticked_wall_secs,
            entry.event_wall_secs,
            entry.parallel_wall_secs,
            entry.speedup,
            entry.identical,
        );
        transfer_entries.push(entry);
    }

    // Mobility-bound section: the paper fleet with sparse traffic, so the
    // run is movement and contact detection wall to wall — the motion-
    // segment protocol's target regime, and the row the CI perf floor
    // holds to "event no slower than ticked".
    println!("mobility-bound: paper fleet, sparse traffic (movement dominates)");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "nodes", "sim secs", "ticked s", "event s", "parallel s", "speedup", "identical"
    );
    let mut mobility_entries = Vec::new();
    let mut mobility_motion_rows = Vec::new();
    for &n in &mobility_nodes {
        let duration = duration_override.unwrap_or(240.0);
        let scenario = mobility_bound_scenario(n, duration, seed);
        let ticked = run_mode(&scenario, EngineMode::Ticked);
        let (event, stats) = run_mode_with_stats(&scenario, EngineMode::EventDriven);
        let parallel = run_parallel(&scenario, RoutingBackend::default(), threads);
        let identical = canon(ticked.clone()) == canon(event.clone())
            && canon(event.clone()) == canon(parallel.clone());
        let entry = Entry {
            nodes: n,
            duration_secs: duration,
            ticked_wall_secs: ticked.wall_secs,
            event_wall_secs: event.wall_secs,
            parallel_wall_secs: parallel.wall_secs,
            speedup: ticked.wall_secs / event.wall_secs.max(1e-9),
            identical,
            parallel_overhead: threads == 1 && parallel.wall_secs > event.wall_secs,
        };
        println!(
            "{:>6} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
            entry.nodes,
            entry.duration_secs,
            entry.ticked_wall_secs,
            entry.event_wall_secs,
            entry.parallel_wall_secs,
            entry.speedup,
            entry.identical,
        );
        mobility_motion_rows.push(format!(
            "    {{\"scenario\": \"mobility_bound\", \"nodes\": {}, \"sim_duration_secs\": {}, \"ticks_executed\": {}, \"ticks_skipped\": {}, \"movement_advances\": {}, \"movement_node_ticks\": {}, \"movement_skip_rate\": {:.6}}}",
            n,
            duration,
            stats.ticks_executed,
            stats.ticks_skipped,
            stats.movement_advances,
            stats.movement_node_ticks,
            stats.movement_skip_rate(),
        ));
        mobility_entries.push(entry);
    }

    // Memory section: one child process per size, since VmHWM is a
    // process-lifetime high water mark (see `run_memory_section`). Only
    // measured when the run records JSON — the console-only mode stays a
    // quick identity check.
    let (memory_rows, memory_identical) = if json_path.is_some() {
        run_memory_section(&memory_nodes, duration_override, seed, threads)
    } else {
        (Vec::new(), true)
    };

    // Sweep-orchestrator section: opt-in (it runs the 1000-run manifest
    // about nine times over for the reference/thread/resume/RSS checks).
    let (sweep_json, sweep_ok) = if sweep_bench {
        let (json, ok) = run_sweep_section(sweep_seeds, threads);
        (Some(json), ok)
    } else {
        (None, true)
    };

    let any_mismatch = entries
        .iter()
        .chain(transfer_entries.iter())
        .chain(mobility_entries.iter())
        .any(|e| !e.identical)
        || !memory_identical
        || !sweep_ok;
    if let Some(path) = json_path {
        // Hand-rolled JSON keeps the schema explicit and the vendored
        // serde_json shim out of the float-formatting hot seat.
        let row = |e: &Entry| {
            let overhead = if e.parallel_overhead {
                ", \"parallel_overhead\": true"
            } else {
                ""
            };
            format!(
                "    {{\"nodes\": {}, \"sim_duration_secs\": {}, \"ticked_wall_secs\": {:.6}, \"event_wall_secs\": {:.6}, \"parallel_wall_secs\": {:.6}, \"speedup\": {:.3}, \"reports_identical\": {}{}}}",
                e.nodes, e.duration_secs, e.ticked_wall_secs, e.event_wall_secs, e.parallel_wall_secs, e.speedup, e.identical, overhead
            )
        };
        let rows: Vec<String> = entries.iter().map(row).collect();
        let transfer_rows: Vec<String> = transfer_entries.iter().map(row).collect();
        let mobility_rows: Vec<String> = mobility_entries.iter().map(row).collect();
        let all_motion_rows: Vec<String> = motion_rows
            .iter()
            .chain(mobility_motion_rows.iter())
            .cloned()
            .collect();
        let sweep_field = match &sweep_json {
            Some(obj) => format!(",\n  \"sweep\": {obj}"),
            None => String::new(),
        };
        let doc = format!(
            "{{\n  \"benchmark\": \"engine_modes\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \"description\": \"World::run wall time, ticked vs event-driven vs sharded-parallel scheduler, identical scenarios (paper mobility, Epidemic + Lifetime policies)\",\n  \"seed\": {},\n  \"threads\": {},\n  \"entries\": [\n{}\n  ],\n  \"motion\": [\n{}\n  ],\n  \"transfer_bound\": [\n{}\n  ],\n  \"mobility_bound\": [\n{}\n  ],\n  \"memory\": [\n{}\n  ]{}\n}}\n",
            seed,
            threads,
            rows.join(",\n"),
            all_motion_rows.join(",\n"),
            transfer_rows.join(",\n"),
            mobility_rows.join(",\n"),
            memory_rows.join(",\n"),
            sweep_field
        );
        write_json(&path, &doc);
    }
    if any_mismatch {
        eprintln!("ERROR: a bit-identity check failed (see the tables above)");
        std::process::exit(1);
    }
    if let Some(path) = routing_path {
        run_routing_section(&path, seed, routing_nodes, duration_override, threads);
    }
}

/// Read a `kB` field (`VmRSS`, `VmHWM`, …) from `/proc/self/status`.
/// `None` on platforms without procfs or with an unexpected layout —
/// callers record JSON `null` instead of panicking.
fn proc_status_kb(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

/// Child mode behind the hidden `--memory-probe N` flag: build and run the
/// dense-mesh scenario (Epidemic + Lifetime, event-driven, candidate
/// index) once in a fresh process so `VmHWM` — a process-lifetime high
/// water mark — measures exactly this world, then print one JSON row on
/// stdout for the parent to embed verbatim. `bytes_per_node` is
/// `(VmHWM after the run − VmRSS before the build) / nodes`; the peak is
/// read *before* the parallel identity-check run so the second world
/// cannot inflate it. Missing `/proc/self/status` degrades both RSS
/// fields to JSON `null`, never a panic.
fn run_memory_probe(nodes: usize, duration: f64, seed: u64, threads: usize) -> ! {
    let pre_kb = proc_status_kb("VmRSS");
    let scenario = dense_routing_scenario(
        nodes,
        duration,
        RouterKind::Epidemic,
        PolicyCombo::LIFETIME,
        seed,
    );
    let event = run_with_backend(&scenario, EngineMode::EventDriven, RoutingBackend::Index);
    let peak_kb = proc_status_kb("VmHWM");
    let parallel = run_parallel(&scenario, RoutingBackend::Index, threads);
    let identical = canon(event) == canon(parallel);
    let (peak_bytes, bytes_per_node) = match (pre_kb, peak_kb) {
        (Some(pre), Some(peak)) => (
            (peak * 1024).to_string(),
            (peak.saturating_sub(pre) * 1024 / nodes.max(1) as u64).to_string(),
        ),
        _ => ("null".to_string(), "null".to_string()),
    };
    println!(
        "{{\"nodes\": {nodes}, \"sim_duration_secs\": {duration}, \"peak_rss_bytes\": {peak_bytes}, \"bytes_per_node\": {bytes_per_node}, \"reports_identical\": {identical}}}"
    );
    std::process::exit(if identical { 0 } else { 1 });
}

/// Measure peak RSS and bytes/node per fleet size by re-exec'ing this
/// binary once per size with `--memory-probe` (per-size peaks need
/// per-size processes; see [`run_memory_probe`]). Returns the JSON rows
/// plus whether every probe's event-vs-parallel identity check passed. A
/// probe that cannot be spawned is reported on stderr and skipped rather
/// than failing the whole run.
fn run_memory_section(
    sizes: &[usize],
    duration_override: Option<f64>,
    seed: u64,
    threads: usize,
) -> (Vec<String>, bool) {
    println!("memory: dense mesh (Epidemic + Lifetime, event-driven), one probe process per size");
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warning: cannot locate own binary for memory probes: {e}; section empty");
            return (Vec::new(), true);
        }
    };
    let mut rows = Vec::new();
    let mut all_identical = true;
    for &n in sizes {
        let duration = duration_override.unwrap_or(60.0);
        let out = std::process::Command::new(&exe)
            .args(["--memory-probe", &n.to_string()])
            .args(["--duration-secs", &duration.to_string()])
            .args(["--seed", &seed.to_string()])
            .args(["--threads", &threads.to_string()])
            .output();
        match out {
            Ok(out) => {
                let stdout = String::from_utf8_lossy(&out.stdout);
                let Some(row) = stdout
                    .lines()
                    .rev()
                    .find(|l| l.trim_start().starts_with('{'))
                else {
                    eprintln!("warning: memory probe for {n} nodes produced no row; skipped");
                    all_identical &= out.status.success();
                    continue;
                };
                all_identical &= row.contains("\"reports_identical\": true");
                println!("  {}", row.trim());
                rows.push(format!("    {}", row.trim()));
            }
            Err(e) => {
                eprintln!("warning: memory probe for {n} nodes failed to spawn: {e}; skipped");
            }
        }
    }
    (rows, all_identical)
}

/// The sweep-orchestrator benchmark manifest: mini base, the four
/// comparison protocols × the paper TTL axis × `seeds` seeds — 50 seeds
/// give 1000 runs over 20 cells. A 900-second horizon keeps each run a
/// few milliseconds while leaving enough traffic for the aggregates to
/// differ per cell (so identity checks compare real numbers, not zeros).
fn sweep_bench_manifest(seeds: usize) -> SweepManifest {
    let seed_list: Vec<u64> = (0..seeds as u64).map(|s| 1_000 + s).collect();
    let mut m = SweepManifest::paper(
        "bench-sweep",
        &PaperProtocol::protocol_comparison(),
        &PAPER_TTLS_MIN,
        &seed_list,
    );
    m.base = ScenarioBase::Mini;
    m.duration_secs = 900.0;
    m
}

/// Child mode behind the hidden `--sweep-probe SEEDS` flag: execute the
/// sweep-bench manifest at `SEEDS` seeds once in a fresh process (the
/// `VmHWM` rationale of [`run_memory_probe`]) and print one JSON row. The
/// parent runs this at quarter and full seed counts: with the streaming
/// accumulator the peak is set by worlds-in-flight and the O(cells)
/// aggregation state, so it must be flat in the run count.
fn run_sweep_probe(seeds: usize, threads: usize) -> ! {
    let manifest = sweep_bench_manifest(seeds);
    let opts = SweepOptions {
        threads,
        ..SweepOptions::default()
    };
    let outcome = match run_manifest(&manifest, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: sweep probe at {seeds} seeds failed: {e}");
            std::process::exit(1);
        }
    };
    let peak = match proc_status_kb("VmHWM") {
        Some(kb) => (kb * 1024).to_string(),
        None => "null".to_string(),
    };
    println!(
        "{{\"runs\": {}, \"cells\": {}, \"peak_rss_bytes\": {peak}}}",
        outcome.runs_total,
        outcome.points.len(),
    );
    std::process::exit(0);
}

/// Canonical JSON of a point list — the bit-identity comparand for the
/// thread-count and kill/resume checks (wall time is not part of a point).
fn points_json(points: &[SweepPoint]) -> String {
    serde_json::to_string(&points.to_vec()).expect("points serialise")
}

/// Measure the sweep orchestrator on the 1000-run bench manifest and
/// return the `"sweep"` JSON object plus whether every identity check
/// passed: reference-path equality, 1/2/4/8-thread invariance, and
/// journal truncate-and-resume equality.
fn run_sweep_section(seeds: usize, threads: usize) -> (String, bool) {
    let manifest = sweep_bench_manifest(seeds);
    let plan = manifest.expand().expect("bench manifest is well-formed");
    let (cells, runs) = (plan.cells.len(), plan.len());
    println!(
        "sweep orchestrator: {runs} runs over {cells} cells (mini base, 4 protocols x {} TTLs x {seeds} seeds)",
        PAPER_TTLS_MIN.len()
    );

    // Reference: the plain pre-orchestrator path — `run_sweep` per cell,
    // then `average_reports` — over the very same expansion.
    let t0 = std::time::Instant::now();
    let mut cell_runs: Vec<Vec<&RunSpec>> = vec![Vec::new(); cells];
    for spec in &plan.runs {
        cell_runs[spec.cell].push(spec);
    }
    let mut ref_points = Vec::with_capacity(cells);
    for (idx, specs) in cell_runs.iter().enumerate() {
        let scenarios: Vec<_> = specs.iter().map(|s| s.scenario(&manifest)).collect();
        let reports = run_sweep_with_options(&scenarios, specs[0].engine, manifest.backend);
        ref_points.push(
            average_reports(&plan.cells[idx].label(), &reports).expect("bench cell has runs"),
        );
    }
    let ref_wall = t0.elapsed().as_secs_f64();
    let ref_json = points_json(&ref_points);

    // Work-stealing orchestrator at the requested thread count (no
    // journal: this is the throughput row the reference is compared to).
    let opts = |t: usize| SweepOptions {
        threads: t,
        ..SweepOptions::default()
    };
    let outcome = run_manifest(&manifest, &opts(threads)).expect("bench manifest runs");
    let base_json = points_json(&outcome.points);
    let matches_run_sweep = base_json == ref_json;
    let runs_per_sec = runs as f64 / outcome.wall_secs.max(1e-9);
    let speedup = ref_wall / outcome.wall_secs.max(1e-9);
    println!(
        "  orchestrator {:.3}s ({runs_per_sec:.0} runs/s, {} chunks) vs run_sweep {ref_wall:.3}s = {speedup:.2}x, aggregates identical: {matches_run_sweep}",
        outcome.wall_secs, outcome.chunks
    );

    // Aggregate bit-identity across pool sizes.
    let thread_set = [1usize, 2, 4, 8];
    let mut thread_invariant = true;
    for &t in &thread_set {
        if t == threads {
            continue; // already have this one (`outcome`)
        }
        let o = run_manifest(&manifest, &opts(t)).expect("bench manifest runs");
        thread_invariant &= points_json(&o.points) == base_json;
    }
    println!("  aggregate bit-identical across {thread_set:?}-thread pools: {thread_invariant}");

    // Kill-and-resume: journal a cold run, truncate the journal to the
    // header plus half the records (any line boundary is a record
    // boundary), resume, and demand the identical aggregate.
    let journal =
        std::env::temp_dir().join(format!("vdtn_sweep_bench_{}.jsonl", std::process::id()));
    let journal_opts = |resume: bool| SweepOptions {
        threads,
        journal: Some(journal.clone()),
        resume,
        ..SweepOptions::default()
    };
    let cold = run_manifest(&manifest, &journal_opts(false)).expect("journaled run succeeds");
    let mut ok = matches_run_sweep && thread_invariant && points_json(&cold.points) == base_json;
    let text = std::fs::read_to_string(&journal).expect("journal readable");
    let kept_runs = runs / 2;
    let mut kept: String = text
        .lines()
        .take(1 + kept_runs)
        .map(|l| format!("{l}\n"))
        .collect();
    // Simulate a kill mid-write: leave a torn half-record at the tail,
    // which replay must discard.
    kept.push_str("{\"id\": \"bench-sweep/torn");
    std::fs::write(&journal, kept).expect("journal writable");
    let resumed = run_manifest(&manifest, &journal_opts(true)).expect("resume succeeds");
    let resume_identical = points_json(&resumed.points) == base_json;
    ok &= resume_identical && resumed.runs_replayed == kept_runs;
    println!(
        "  resume after truncation to {kept_runs} runs: {} replayed + {} executed in {:.3}s, aggregate identical: {resume_identical}",
        resumed.runs_replayed, resumed.runs_executed, resumed.wall_secs
    );
    std::fs::remove_file(&journal).ok();

    // Peak-RSS flatness: quarter vs full run count, fresh process each.
    let (rss_rows, rss_ratio) = run_sweep_rss_probes(&[seeds.div_ceil(4), seeds], threads);
    let ratio_field = match rss_ratio {
        Some(r) => format!("{r:.3}"),
        None => "null".to_string(),
    };

    let json = format!(
        "{{\n    \"manifest\": {{\"name\": \"{}\", \"cells\": {cells}, \"runs\": {runs}, \"seeds\": {seeds}, \"sim_duration_secs\": {}}},\n    \"threads\": {threads},\n    \"orchestrator_wall_secs\": {:.6},\n    \"runs_per_sec\": {runs_per_sec:.1},\n    \"chunks\": {},\n    \"run_sweep_wall_secs\": {ref_wall:.6},\n    \"speedup_vs_run_sweep\": {speedup:.3},\n    \"matches_run_sweep\": {matches_run_sweep},\n    \"threads_checked\": [1, 2, 4, 8],\n    \"thread_invariant\": {thread_invariant},\n    \"resume\": {{\"journal_runs_kept\": {kept_runs}, \"runs_replayed\": {}, \"runs_executed\": {}, \"wall_secs\": {:.6}, \"identical\": {resume_identical}}},\n    \"memory\": [\n{}\n    ],\n    \"peak_rss_ratio\": {ratio_field}\n  }}",
        manifest.name,
        manifest.duration_secs,
        outcome.wall_secs,
        outcome.chunks,
        resumed.runs_replayed,
        resumed.runs_executed,
        resumed.wall_secs,
        rss_rows.join(",\n")
    );
    (json, ok)
}

/// Re-exec this binary with `--sweep-probe` once per seed count and
/// collect the peak-RSS rows, plus the full/quarter peak ratio (JSON
/// `null` when procfs is unavailable or a probe fails to spawn).
fn run_sweep_rss_probes(seed_counts: &[usize], threads: usize) -> (Vec<String>, Option<f64>) {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("warning: cannot locate own binary for sweep probes: {e}; section empty");
            return (Vec::new(), None);
        }
    };
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &s in seed_counts {
        let out = std::process::Command::new(&exe)
            .args(["--sweep-probe", &s.to_string()])
            .args(["--threads", &threads.to_string()])
            .output();
        match out {
            Ok(out) => {
                let stdout = String::from_utf8_lossy(&out.stdout);
                let Some(row) = stdout
                    .lines()
                    .rev()
                    .find(|l| l.trim_start().starts_with('{'))
                else {
                    eprintln!("warning: sweep probe at {s} seeds produced no row; skipped");
                    continue;
                };
                let peak = row
                    .split("\"peak_rss_bytes\": ")
                    .nth(1)
                    .and_then(|r| r.split(&[',', '}'][..]).next())
                    .and_then(|v| v.trim().parse::<f64>().ok());
                peaks.push(peak);
                println!("  {}", row.trim());
                rows.push(format!("      {}", row.trim()));
            }
            Err(e) => {
                eprintln!("warning: sweep probe at {s} seeds failed to spawn: {e}; skipped");
            }
        }
    }
    let ratio = match peaks.as_slice() {
        [Some(quarter), Some(full)] if *quarter > 0.0 => Some(full / quarter),
        _ => None,
    };
    if let Some(r) = ratio {
        println!("  peak RSS full/quarter run count: {r:.3}x (flat = O(cells) accumulator memory)");
    }
    (rows, ratio)
}

/// Measure the dense-contact, routing-round-dominated scenario across fleet
/// sizes and the paper's sorted-vs-FIFO policy extremes, writing `path` as
/// JSON. Each row runs the ticked reference, the event engine with the
/// delta-maintained candidate index, the event engine with the PR 3
/// cursor-only rescan, and the sharded parallel engine; all four reports
/// must be bit-identical. The recorded `speedup_index_vs_rescan` is the
/// number the incremental-candidate-index work is accountable for, and
/// `speedup_parallel_vs_ticked` is the sharded round's — the row the
/// ticked engine used to win at 10k nodes.
fn run_routing_section(
    path: &str,
    seed: u64,
    routing_nodes: Option<Vec<usize>>,
    duration_override: Option<f64>,
    threads: usize,
) {
    println!("routing round: dense stationary mesh, permanent contacts (parallel at {threads}t)");
    println!(
        "{:>6} {:>10} {:>24} {:>12} {:>12} {:>12} {:>12} {:>9} {:>10}",
        "nodes",
        "sim secs",
        "policy",
        "ticked s",
        "rescan s",
        "index s",
        "parallel s",
        "speedup",
        "identical"
    );
    let sizes: Vec<(usize, f64)> = match routing_nodes {
        Some(list) => list
            .into_iter()
            .map(|n| (n, duration_override.unwrap_or(300.0)))
            .collect(),
        None => vec![(1000usize, 600.0f64), (5000, 300.0), (10000, 300.0)],
    };
    let mut rows = Vec::new();
    let mut any_mismatch = false;
    for &(n, duration) in &sizes {
        for (router, policy, label) in [
            (
                RouterKind::Epidemic,
                PolicyCombo::FIFO_FIFO,
                "Epidemic FIFO-FIFO",
            ),
            (
                RouterKind::Epidemic,
                PolicyCombo::LIFETIME,
                "Epidemic Lifetime",
            ),
            (
                RouterKind::paper_snw(),
                PolicyCombo::LIFETIME,
                "SnW Lifetime",
            ),
        ] {
            let scenario = dense_routing_scenario(n, duration, router, policy, seed);
            let ticked = run_with_backend(&scenario, EngineMode::Ticked, RoutingBackend::Index);
            let rescan =
                run_with_backend(&scenario, EngineMode::EventDriven, RoutingBackend::Rescan);
            let index = run_with_backend(&scenario, EngineMode::EventDriven, RoutingBackend::Index);
            let parallel = run_parallel(&scenario, RoutingBackend::Index, threads);
            let identical = canon(ticked.clone()) == canon(index.clone())
                && canon(rescan.clone()) == canon(index.clone())
                && canon(parallel.clone()) == canon(index.clone());
            any_mismatch |= !identical;
            let speedup = rescan.wall_secs / index.wall_secs.max(1e-9);
            let par_speedup = ticked.wall_secs / parallel.wall_secs.max(1e-9);
            println!(
                "{:>6} {:>10.0} {:>24} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>8.2}x {:>10}",
                n,
                duration,
                label,
                ticked.wall_secs,
                rescan.wall_secs,
                index.wall_secs,
                parallel.wall_secs,
                par_speedup,
                identical
            );
            rows.push(format!(
                "    {{\"nodes\": {}, \"sim_duration_secs\": {}, \"policy\": \"{}\", \"ticked_wall_secs\": {:.6}, \"rescan_wall_secs\": {:.6}, \"index_wall_secs\": {:.6}, \"parallel_wall_secs\": {:.6}, \"speedup_index_vs_rescan\": {:.3}, \"speedup_parallel_vs_ticked\": {:.3}, \"reports_identical\": {}}}",
                n, duration, label, ticked.wall_secs, rescan.wall_secs, index.wall_secs, parallel.wall_secs, speedup, par_speedup, identical
            ));
        }
    }
    let doc = format!(
        "{{\n  \"benchmark\": \"routing_round\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \"description\": \"World::run wall time on the dense-contact stationary mesh (routing round dominates; permanent contacts): ticked reference vs event-driven with the PR 3 cursor-only rescan vs event-driven with the delta-maintained candidate index vs the sharded parallel engine\",\n  \"seed\": {},\n  \"threads\": {},\n  \"entries\": [\n{}\n  ]\n}}\n",
        seed,
        threads,
        rows.join(",\n")
    );
    write_json(path, &doc);
    if any_mismatch {
        eprintln!("ERROR: reports diverged across engine modes / routing backends");
        std::process::exit(1);
    }
}

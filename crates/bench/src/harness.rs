//! Figure execution harness.
//!
//! Figures are declared as [`FigureSpec`]s and executed through the sweep
//! orchestrator: the requested (protocol, TTL) cells become one
//! [`SweepManifest`] whose canonical expansion drives work-stealing
//! execution and streaming per-cell aggregation
//! (`vdtn::orchestrator`), replacing the hand-rolled scenario loops each
//! figure used to build.

use vdtn::orchestrator::{run_manifest_with, SweepManifest, SweepOptions};
use vdtn::presets::{PaperProtocol, PAPER_TTLS_MIN};
use vdtn::sweep::SweepPoint;
use vdtn::Scenario;

/// Which paper metric a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Message average delay, minutes (Figures 4, 6, 9).
    AvgDelayMins,
    /// Message delivery probability (Figures 5, 7, 8).
    DeliveryProbability,
}

impl Metric {
    /// Extract the metric from an averaged sweep point.
    pub fn of(&self, p: &SweepPoint) -> f64 {
        match self {
            Metric::AvgDelayMins => p.avg_delay_mins,
            Metric::DeliveryProbability => p.delivery_probability,
        }
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::AvgDelayMins => "avg delay (min)",
            Metric::DeliveryProbability => "delivery probability",
        }
    }
}

/// A figure to regenerate: a set of configurations swept over the TTL axis.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Figure id, e.g. `"fig4"`.
    pub id: &'static str,
    /// Human title matching the paper caption.
    pub title: &'static str,
    /// Configurations (legend rows).
    pub protocols: Vec<PaperProtocol>,
    /// Metric plotted.
    pub metric: Metric,
}

impl FigureSpec {
    /// Figure 4: Epidemic, average delay, 3 policies.
    pub fn fig4() -> Self {
        FigureSpec {
            id: "fig4",
            title: "Message average delay using the Epidemic routing protocol",
            protocols: PaperProtocol::epidemic_policies().to_vec(),
            metric: Metric::AvgDelayMins,
        }
    }

    /// Figure 5: Epidemic, delivery probability, 3 policies.
    pub fn fig5() -> Self {
        FigureSpec {
            id: "fig5",
            title: "Message delivery probability using the Epidemic routing protocol",
            protocols: PaperProtocol::epidemic_policies().to_vec(),
            metric: Metric::DeliveryProbability,
        }
    }

    /// Figure 6: Spray and Wait, average delay, 3 policies.
    pub fn fig6() -> Self {
        FigureSpec {
            id: "fig6",
            title: "Message average delay using the Spray and Wait routing protocol",
            protocols: PaperProtocol::snw_policies().to_vec(),
            metric: Metric::AvgDelayMins,
        }
    }

    /// Figure 7: Spray and Wait, delivery probability, 3 policies.
    pub fn fig7() -> Self {
        FigureSpec {
            id: "fig7",
            title: "Message delivery probability using the Spray and Wait routing protocol",
            protocols: PaperProtocol::snw_policies().to_vec(),
            metric: Metric::DeliveryProbability,
        }
    }

    /// Figure 8: four-protocol delivery probability.
    pub fn fig8() -> Self {
        FigureSpec {
            id: "fig8",
            title: "Comparison of the message delivery probability (4 protocols)",
            protocols: PaperProtocol::protocol_comparison().to_vec(),
            metric: Metric::DeliveryProbability,
        }
    }

    /// Figure 9: four-protocol average delay.
    pub fn fig9() -> Self {
        FigureSpec {
            id: "fig9",
            title: "Comparison of the message average delay (4 protocols)",
            protocols: PaperProtocol::protocol_comparison().to_vec(),
            metric: Metric::AvgDelayMins,
        }
    }

    /// Every figure, in paper order.
    pub fn all() -> Vec<FigureSpec> {
        vec![
            Self::fig4(),
            Self::fig5(),
            Self::fig6(),
            Self::fig7(),
            Self::fig8(),
            Self::fig9(),
        ]
    }
}

/// Result of regenerating one figure: one sweep point per (row, TTL).
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// The spec that was run.
    pub spec: FigureSpec,
    /// `points[row][ttl_index]` aligned with `spec.protocols` × `ttls`.
    pub points: Vec<Vec<SweepPoint>>,
    /// TTL axis, minutes.
    pub ttls: Vec<u64>,
}

/// Scenario builder hook: lets callers shrink duration for quick runs.
pub type ScenarioTweak<'a> = dyn Fn(&mut Scenario) + Sync + 'a;

/// Run one figure: `seeds` runs per (configuration, TTL) cell, averaged.
///
/// `tweak` is applied to every generated scenario (e.g. shorter duration for
/// CI). The figure's rows × TTLs product is one manifest, executed by the
/// orchestrator with work-stealing dispatch and streaming per-cell
/// aggregation.
pub fn run_figure(
    spec: &FigureSpec,
    ttls: &[u64],
    seeds: u64,
    tweak: &ScenarioTweak<'_>,
) -> FigureResult {
    let cells: Vec<(PaperProtocol, u64)> = spec
        .protocols
        .iter()
        .flat_map(|&p| ttls.iter().map(move |&t| (p, t)))
        .collect();
    let cache = run_cells(&cells, seeds, tweak);
    assemble_figure(spec, ttls, &cache)
}

/// Render a figure as the table of values the paper plots.
pub fn format_table(result: &FigureResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## {} — {}\n\n",
        result.spec.id, result.spec.title
    ));
    out.push_str(&format!(
        "{:<40} | {}\n",
        format!("{} \\ TTL (min)", result.spec.metric.label()),
        result
            .ttls
            .iter()
            .map(|t| format!("{t:>8}"))
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out.push_str(&format!(
        "{}-+-{}\n",
        "-".repeat(40),
        "-".repeat(9 * result.ttls.len())
    ));
    for row in &result.points {
        let label = &row[0].label;
        let vals = row
            .iter()
            .map(|p| match result.spec.metric {
                Metric::AvgDelayMins => format!("{:>8.1}", p.avg_delay_mins),
                Metric::DeliveryProbability => format!("{:>8.3}", p.delivery_probability),
            })
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!("{label:<40} | {vals}\n"));
    }
    out
}

/// Render a figure as CSV (`label,ttl,value,sd,seeds`).
pub fn format_csv(result: &FigureResult) -> String {
    let mut out = String::from("label,ttl_mins,value,sd,seeds\n");
    for row in &result.points {
        for p in row {
            let (v, sd) = match result.spec.metric {
                Metric::AvgDelayMins => (p.avg_delay_mins, p.avg_delay_sd),
                Metric::DeliveryProbability => (p.delivery_probability, p.delivery_probability_sd),
            };
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{}\n",
                p.label, p.ttl_mins, v, sd, p.seeds
            ));
        }
    }
    out
}

/// The default TTL axis (paper sweep).
pub fn paper_ttls() -> Vec<u64> {
    PAPER_TTLS_MIN.to_vec()
}

/// Run a set of (configuration, TTL) cells and return the averaged points
/// keyed by cell. Figures sharing cells (e.g. Epidemic Lifetime appears in
/// Figures 4, 5, 8 and 9) are then assembled from the cache without
/// re-running.
///
/// The cells become one paper-base [`SweepManifest`] over the union of
/// their protocol and TTL axes, so the sweep is executed (and checkpoint-
/// able, thread-invariant, O(cells)-memory) exactly like any other
/// manifest. The expansion covers the *product* of the unions; only the
/// requested cells are returned. Every current caller passes a full
/// product, so nothing extra runs.
pub fn run_cells(
    cells: &[(PaperProtocol, u64)],
    seeds: u64,
    tweak: &ScenarioTweak<'_>,
) -> std::collections::HashMap<(PaperProtocol, u64), SweepPoint> {
    assert!(seeds >= 1);
    let mut protocols: Vec<PaperProtocol> = Vec::new();
    let mut ttls: Vec<u64> = Vec::new();
    for &(proto, ttl) in cells {
        if !protocols.contains(&proto) {
            protocols.push(proto);
        }
        if !ttls.contains(&ttl) {
            ttls.push(ttl);
        }
    }
    let seed_list: Vec<u64> = (0..seeds).map(|s| 1000 + s).collect();
    let manifest = SweepManifest::paper("figures", &protocols, &ttls, &seed_list);
    let outcome = run_manifest_with(&manifest, &SweepOptions::default(), Some(tweak))
        .expect("figure manifest is well-formed");
    let mut out = std::collections::HashMap::new();
    for (cell, point) in outcome.cells.iter().zip(&outcome.points) {
        let proto = cell.protocol.expect("paper-base cells carry a protocol");
        if cells.contains(&(proto, cell.ttl_mins)) {
            out.insert((proto, cell.ttl_mins), point.clone());
        }
    }
    out
}

/// Assemble a [`FigureResult`] from pre-computed cells.
///
/// Panics if any required cell is missing from the cache.
pub fn assemble_figure(
    spec: &FigureSpec,
    ttls: &[u64],
    cache: &std::collections::HashMap<(PaperProtocol, u64), SweepPoint>,
) -> FigureResult {
    let points = spec
        .protocols
        .iter()
        .map(|&p| {
            ttls.iter()
                .map(|&t| {
                    cache
                        .get(&(p, t))
                        .unwrap_or_else(|| panic!("missing cell {p:?}/ttl{t}"))
                        .clone()
                })
                .collect()
        })
        .collect();
    FigureResult {
        spec: spec.clone(),
        points,
        ttls: ttls.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_figures() {
        let all = FigureSpec::all();
        assert_eq!(all.len(), 6);
        let ids: Vec<&str> = all.iter().map(|s| s.id).collect();
        assert_eq!(ids, ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]);
        assert_eq!(all[4].protocols.len(), 4);
        assert_eq!(all[0].protocols.len(), 3);
    }

    #[test]
    fn quick_figure_runs_and_formats() {
        // Tiny run: one TTL, one seed, 10-minute horizon.
        let spec = FigureSpec {
            id: "test",
            title: "smoke",
            protocols: vec![PaperProtocol::EpidemicFifo],
            metric: Metric::DeliveryProbability,
        };
        let result = run_figure(&spec, &[30], 1, &|s: &mut vdtn::Scenario| {
            s.duration_secs = 600.0;
        });
        assert_eq!(result.points.len(), 1);
        assert_eq!(result.points[0].len(), 1);
        let table = format_table(&result);
        assert!(table.contains("test"));
        assert!(table.contains("Epidemic FIFO-FIFO"));
        let csv = format_csv(&result);
        assert!(csv.lines().count() >= 2);
        assert!(csv.starts_with("label,"));
    }

    #[test]
    fn metric_extraction() {
        assert_eq!(Metric::AvgDelayMins.label(), "avg delay (min)");
        assert_eq!(Metric::DeliveryProbability.label(), "delivery probability");
    }
}

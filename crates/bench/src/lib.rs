//! Shared harness for regenerating the paper's tables and figures.
//!
//! The `figures` binary (and the criterion benches) are thin wrappers over
//! this library: [`FigureSpec`] describes a figure as (configurations ×
//! TTLs × metric), [`run_figure`] executes the sweep (averaging seeds), and
//! [`format_table`] renders the same rows the paper plots. Paper-reported
//! values, where the text states them, live in [`paper_reference`] so every
//! regenerated figure prints measured-vs-paper side by side.

pub mod chart;
pub mod harness;
pub mod reference;

pub use chart::{render, Series};
pub use harness::{format_table, run_figure, FigureResult, FigureSpec, Metric};
pub use reference::{paper_delta_reference, DeltaReference};

//! Shared harness for regenerating the paper's tables and figures.
//!
//! The `figures` binary (and the criterion benches) are thin wrappers over
//! this library: [`FigureSpec`] describes a figure as (configurations ×
//! TTLs × metric), [`run_figure`] executes the sweep (averaging seeds), and
//! [`format_table`] renders the same rows the paper plots. Paper-reported
//! values, where the text states them, live in [`mod@reference`] so every
//! regenerated figure prints measured-vs-paper side by side.
//!
//! # Example
//!
//! ```
//! use vdtn_bench::{render, Series};
//!
//! let series = [Series {
//!     label: "Epidemic".into(),
//!     values: vec![31.0, 29.0, 27.0],
//! }];
//! let ttls: Vec<String> = ["60", "120", "180"].iter().map(|s| s.to_string()).collect();
//! let chart = render("average delay (min)", &ttls, &series, 40, 8);
//! assert!(chart.contains("Epidemic"));
//! ```

pub mod chart;
pub mod engine_perf;
pub mod harness;
pub mod reference;

pub use chart::{render, Series};
pub use engine_perf::engine_scenario;
pub use harness::{format_table, run_figure, FigureResult, FigureSpec, Metric};
pub use reference::{paper_delta_reference, DeltaReference};

//! Paper-reported reference values.
//!
//! The paper's figures are plots without data tables, but its text states
//! the *deltas* of each policy against the FIFO–FIFO baseline, per TTL.
//! Those numbers are the quantitative ground truth we compare against
//! (EXPERIMENTS.md records the comparison for every figure).

/// Paper-stated improvements of a policy over FIFO–FIFO, per TTL step
/// {60, 90, 120, 150, 180} minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaReference {
    /// Configuration the deltas describe.
    pub label: &'static str,
    /// Minutes sooner than FIFO–FIFO (positive = faster), per TTL.
    pub delay_gain_mins: [f64; 5],
    /// Delivery-probability gain over FIFO–FIFO (fraction), per TTL.
    pub delivery_gain: [f64; 5],
}

/// The deltas stated in Section III of the paper.
pub fn paper_delta_reference() -> Vec<DeltaReference> {
    vec![
        DeltaReference {
            label: "Epidemic Random-FIFO",
            // "messages arrive ... approximately 2, 4, 6, 8, and 8 minutes
            //  sooner" / "delivery probability increased in 2%, 4%, 4%, 3%, 3%"
            delay_gain_mins: [2.0, 4.0, 6.0, 8.0, 8.0],
            delivery_gain: [0.02, 0.04, 0.04, 0.03, 0.03],
        },
        DeltaReference {
            label: "Epidemic Lifetime DESC-Lifetime ASC",
            // "approximately 6, 12, 19, 25, and 29 minutes sooner" /
            // "gains of 9%, 11%, 9%, 7% and 5%"
            delay_gain_mins: [6.0, 12.0, 19.0, 25.0, 29.0],
            delivery_gain: [0.09, 0.11, 0.09, 0.07, 0.05],
        },
        DeltaReference {
            label: "SnW Lifetime DESC-Lifetime ASC",
            // "approximately 4, 9, 14, 18, and 21 minutes sooner" /
            // "increase about 8%, 6%, 5%, 3% and 3%"
            delay_gain_mins: [4.0, 9.0, 14.0, 18.0, 21.0],
            delivery_gain: [0.08, 0.06, 0.05, 0.03, 0.03],
        },
    ]
}

/// Qualitative orderings the paper asserts for Figures 8–9 (who wins).
pub fn paper_ordering_claims() -> Vec<&'static str> {
    vec![
        "Lifetime DESC-Lifetime ASC is the best policy for Epidemic on both metrics (Figs 4-5)",
        "Random-FIFO sits between FIFO-FIFO and Lifetime for Epidemic (Figs 4-5)",
        "Lifetime DESC-Lifetime ASC is the best policy for Spray and Wait on both metrics (Figs 6-7)",
        "MaxProp outperforms SnW delivery only for TTL >= 150 min, and only slightly (Fig 8)",
        "MaxProp requires more time to deliver than SnW (Fig 9)",
        "PRoPHET has the lowest delivery probability of the four protocols (Fig 8)",
        "PRoPHET has the longest average delays of the four protocols (Fig 9)",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_complete() {
        let refs = paper_delta_reference();
        assert_eq!(refs.len(), 3);
        for r in &refs {
            // Monotone non-decreasing delay gains with TTL, as the paper reports.
            for w in r.delay_gain_mins.windows(2) {
                assert!(
                    w[1] >= w[0],
                    "{}: delay gains should grow with TTL",
                    r.label
                );
            }
            assert!(r.delivery_gain.iter().all(|&g| (0.0..0.2).contains(&g)));
        }
        assert_eq!(paper_ordering_claims().len(), 7);
    }
}

//! Scenario builder and measurement helpers for the engine-scheduler
//! benchmarks (ticked vs event-driven stepping).
//!
//! Used by two entry points: the criterion bench
//! (`benches/engine_bench.rs`) and the `engine_bench` binary, whose
//! `--json` mode records the perf trajectory in `BENCH_engine.json`.

use vdtn::engine::{EngineMode, EngineStats, World};
use vdtn::scenario::{MapSpec, MobilitySpec, NodeGroup, RelayPlacement, Scenario, TrafficSpec};
use vdtn::{DetectorBackend, PolicyCombo, RouterKind, RoutingBackend, SimDuration, SimReport};
use vdtn_geo::{GridMapGen, Point};
use vdtn_mobility::SpmbConfig;
use vdtn_net::RadioInterface;

/// A paper-flavoured scenario scaled to `vehicles` nodes.
///
/// The road grid grows with the fleet so vehicle density (and therefore
/// contact load) stays in the paper's regime instead of collapsing into one
/// giant clique; waits are the paper's 5–15 minutes, which is exactly the
/// parked-heavy dynamic the event-driven scheduler exploits.
pub fn engine_scenario(vehicles: usize, duration_secs: f64, seed: u64) -> Scenario {
    let side = ((vehicles as f64).sqrt().ceil() as usize).max(3);
    Scenario {
        name: format!("engine-bench-{vehicles}"),
        seed,
        duration_secs,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: side,
            rows: side,
            spacing: 150.0,
        }),
        groups: vec![NodeGroup {
            name: "vehicles".into(),
            count: vehicles,
            buffer_bytes: 20_000_000,
            mobility: MobilitySpec::ShortestPathMapBased(SpmbConfig::default()),
            is_relay: false,
        }],
        radio: RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec::paper(SimDuration::from_mins(30)),
        router: RouterKind::Epidemic,
        policy: PolicyCombo::LIFETIME,
        sample_period_secs: 0.0,
    }
}

/// A mobility-bound scenario: the paper's vehicle fleet with traffic made
/// deliberately sparse (tens of minutes between creations, small bundles),
/// so the run is dominated by movement and contact detection — the regime
/// the motion-segment protocol targets. The event engine should win purely
/// on elided movement work: nearly every node-tick is a mid-segment
/// evaluation the analytic columns answer without stepping the model.
pub fn mobility_bound_scenario(vehicles: usize, duration_secs: f64, seed: u64) -> Scenario {
    let mut scenario = engine_scenario(vehicles, duration_secs, seed);
    scenario.name = format!("mobility-bound-{vehicles}");
    scenario.traffic = TrafficSpec {
        interval_lo: 600.0,
        interval_hi: 1_200.0,
        size_lo: 10_000,
        size_hi: 50_000,
        ttl: SimDuration::from_mins(30),
    };
    scenario
}

/// A routing-round-dominated scenario: `nodes` stationary nodes pinned to a
/// tight grid whose spacing (25 m) sits below the paper radio range (30 m),
/// so every node is permanently connected to its four lattice neighbours.
///
/// Movement, contact detection and TTL housekeeping are all negligible
/// here; what remains is phase 5 — every idle connection asking its routers
/// for the next message each tick. Traffic is paced so each new message
/// floods the mesh within a few ticks and the contacts then sit *idle with
/// full buffers*: the regime the issue targets, where the baseline
/// re-allocates, re-sorts and rescans every buffer per connection per tick
/// for nothing, and where the schedule cache, offer cursors and silent-round
/// memo reduce the whole round to generation checks.
pub fn dense_routing_scenario(
    nodes: usize,
    duration_secs: f64,
    router: RouterKind,
    policy: PolicyCombo,
    seed: u64,
) -> Scenario {
    let side = (nodes as f64).sqrt().ceil() as usize;
    let spacing = 25.0;
    let points: Vec<Point> = (0..nodes)
        .map(|k| Point::new((k % side) as f64 * spacing, (k / side) as f64 * spacing))
        .collect();
    Scenario {
        name: format!("routing-round-{nodes}"),
        seed,
        duration_secs,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: side,
            rows: side,
            spacing,
        }),
        groups: vec![NodeGroup {
            name: "mesh".into(),
            count: nodes,
            buffer_bytes: 50_000_000,
            mobility: MobilitySpec::Stationary(RelayPlacement::Explicit(points)),
            is_relay: false,
        }],
        radio: RadioInterface::paper_80211b(),
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec {
            // Creation intervals scale inversely with the fleet so the
            // per-node message pressure (and therefore buffer depth, the
            // quantity the routing round scales with) is size-invariant.
            interval_lo: 200.0 / nodes as f64,
            interval_hi: 500.0 / nodes as f64,
            size_lo: 10_000,
            size_hi: 50_000,
            ttl: SimDuration::from_mins(30),
        },
        router,
        policy,
        sample_period_secs: 0.0,
    }
}

/// A transfer-bound scenario: `pairs` isolated stationary node pairs (both
/// partners pinned to the same road vertex, pairs a full grid cell apart)
/// exchanging **few, large bundles over a very slow radio** — 2 MB at
/// 4 kB/s is 500 s of drain per bundle, under permanent contacts.
///
/// Movement, contact churn and the routing round are all negligible; the
/// run is wall-to-wall byte draining. The per-tick engine burns one tick
/// per simulated second of drain; the event engine schedules one
/// `TransferComplete` instant per bundle and sleeps through the drain, so
/// its work is O(bundles), independent of how long each bundle drains.
pub fn transfer_bound_scenario(pairs: usize, duration_secs: f64, seed: u64) -> Scenario {
    let side = ((pairs as f64).sqrt().ceil() as usize).max(2);
    let spacing = 200.0; // ≫ radio range: pairs never see each other
    let points: Vec<Point> = (0..pairs * 2)
        .map(|k| {
            let cell = k / 2; // both partners of a pair share a vertex
            Point::new(
                (cell % side) as f64 * spacing,
                (cell / side) as f64 * spacing,
            )
        })
        .collect();
    Scenario {
        name: format!("transfer-bound-{pairs}x2"),
        seed,
        duration_secs,
        tick_secs: 1.0,
        map: MapSpec::Grid(GridMapGen {
            cols: side,
            rows: side,
            spacing,
        }),
        groups: vec![NodeGroup {
            name: "pairs".into(),
            count: pairs * 2,
            buffer_bytes: 200_000_000,
            mobility: MobilitySpec::Stationary(RelayPlacement::Explicit(points)),
            is_relay: false,
        }],
        // The paper's range with a deliberately slow radio: each bundle
        // occupies its link for minutes of simulated time.
        radio: RadioInterface {
            range: 30.0,
            rate: 4_000.0,
        },
        detector: DetectorBackend::Grid,
        traffic: TrafficSpec {
            interval_lo: 120.0,
            interval_hi: 240.0,
            size_lo: 1_000_000,
            size_hi: 2_000_000,
            ttl: SimDuration::from_mins(120),
        },
        router: RouterKind::Epidemic,
        policy: PolicyCombo::LIFETIME,
        sample_period_secs: 0.0,
    }
}

/// Run the scenario in the given mode, returning the report (whose
/// `wall_secs` is the engine-loop wall time).
pub fn run_mode(scenario: &Scenario, mode: EngineMode) -> SimReport {
    World::build_with_mode(scenario, mode).run()
}

/// [`run_mode`] plus the engine's motion counters — the per-size
/// skip-rate rows of `BENCH_engine.json`'s `motion` section.
pub fn run_mode_with_stats(scenario: &Scenario, mode: EngineMode) -> (SimReport, EngineStats) {
    World::build_with_mode(scenario, mode).run_with_stats()
}

/// Run with an explicit routing scan backend too — the index-vs-cursor
/// comparison the routing bench section records.
pub fn run_with_backend(
    scenario: &Scenario,
    mode: EngineMode,
    backend: RoutingBackend,
) -> SimReport {
    World::build_with_options(scenario, mode, backend).run()
}

/// Run on the sharded parallel engine with a pinned pool size — the
/// thread-count column the bench harness records. Bit-identical to the
/// serial runs at every `threads` value.
pub fn run_parallel(scenario: &Scenario, backend: RoutingBackend, threads: usize) -> SimReport {
    World::build_parallel_with_threads(scenario, backend, threads).run()
}

/// Canonical report serialisation with the wall clock zeroed, for
/// bit-identity checks between modes.
pub fn canon(mut report: SimReport) -> String {
    report.wall_secs = 0.0;
    serde_json::to_string(&report).expect("reports serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_modes_agree() {
        let sc = engine_scenario(20, 300.0, 1);
        let ticked = run_mode(&sc, EngineMode::Ticked);
        let event = run_mode(&sc, EngineMode::EventDriven);
        assert!(ticked.messages.created > 0);
        assert_eq!(canon(ticked), canon(event));
    }

    #[test]
    fn transfer_bound_scenario_modes_agree_and_transfer() {
        let sc = transfer_bound_scenario(4, 900.0, 1);
        let ticked = run_mode(&sc, EngineMode::Ticked);
        let event = run_mode(&sc, EngineMode::EventDriven);
        // The regime is real: messages were created and bytes drained over
        // long-lived transfers.
        assert!(ticked.messages.created > 0);
        assert!(ticked.messages.transfers_started > 0);
        assert!(ticked.messages.bytes_transferred > 0);
        assert_eq!(canon(ticked), canon(event));
    }
}

//! Opportunistic link layer.
//!
//! Reproduces the network model of the paper's ONE-simulator setup:
//!
//! * **Radio** ([`RadioInterface`]): IEEE 802.11b abstracted as a disc model
//!   — two nodes are connected whenever their distance is at most the range
//!   (30 m in the paper), with a fixed link rate (6 Mbit/s = 750 000 B/s).
//! * **Contact detection** ([`ContactDetector`]): per-tick diffing of the
//!   in-range pair set into link-up / link-down events, with naive O(n²) and
//!   spatial-grid back-ends (ablation-benchmarked).
//! * **Connections and transfers** ([`LinkTable`], [`Transfer`]): one
//!   message in flight per connection, one transfer per node at a time
//!   (half-duplex radio, as ONE models it); a transfer is an immutable
//!   `{msg, from, to, rate, started}` record that completes at exactly
//!   `started + size/rate` ([`Transfer::completion_time`]) and settles
//!   partial bytes analytically if the contact breaks first.
//! * **Contact tracing** ([`ContactTrace`]): per-pair contact counts,
//!   durations and inter-contact times for the statistics reports.
//!
//! # Example
//!
//! ```
//! use vdtn_geo::Point;
//! use vdtn_net::{ContactDetector, DetectorBackend, LinkEvent, RadioInterface};
//! use vdtn_sim_core::NodeId;
//!
//! let mut detector =
//!     ContactDetector::new(DetectorBackend::Grid, RadioInterface::paper_80211b());
//! // Two nodes 20 m apart: inside the paper's 30 m radio range.
//! let events = detector.update(&[Point::new(0.0, 0.0), Point::new(20.0, 0.0)]);
//! assert_eq!(events, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
//! // One drives away: the same pair reports a link-down.
//! let events = detector.update(&[Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
//! assert_eq!(events, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
//! ```

pub mod contact;
pub mod interface;
pub mod link;
pub mod trace;

pub use contact::{pair_key, ContactDetector, DetectorBackend, LinkEvent, MotionCols, MovedNode};
pub use interface::RadioInterface;
pub use link::{LinkError, LinkTable, Transfer, TransferOutcome};
pub use trace::ContactTrace;

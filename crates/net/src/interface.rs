//! Radio interface parameters.

use serde::{Deserialize, Serialize};

/// A disc-model radio: fixed circular range, fixed transmit rate.
///
/// This is exactly the abstraction the ONE simulator uses for 802.11b in the
/// paper's scenario; fading, capture and MAC contention are not modelled
/// (their first-order effect — limited bytes per contact — is captured by
/// the rate × contact-duration product).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioInterface {
    /// Transmission range in metres.
    pub range: f64,
    /// Transmit rate in bytes per second.
    pub rate: f64,
}

impl RadioInterface {
    /// The paper's interface: 30 m range, 6 Mbit/s (750 000 B/s).
    pub fn paper_80211b() -> Self {
        RadioInterface {
            range: 30.0,
            rate: 750_000.0,
        }
    }

    /// Validate parameters. Rates must be finite as well as positive —
    /// `LinkTable::link_up` rejects non-finite rates (they would poison
    /// every completion time), and validating here keeps that a
    /// configuration-time error instead of a mid-run one.
    pub fn validate(&self) {
        assert!(
            self.range.is_finite() && self.range > 0.0,
            "radio range must be finite and positive"
        );
        assert!(
            self.rate.is_finite() && self.rate > 0.0,
            "radio rate must be finite and positive"
        );
    }

    /// Effective rate between two interfaces: the slower side limits, as in
    /// ONE's `Connection.getSpeed()`.
    pub fn link_rate(&self, other: &RadioInterface) -> f64 {
        self.rate.min(other.rate)
    }

    /// Seconds needed to transfer `bytes` over a link with `other`.
    pub fn transfer_time(&self, other: &RadioInterface, bytes: u64) -> f64 {
        bytes as f64 / self.link_rate(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let r = RadioInterface::paper_80211b();
        r.validate();
        assert_eq!(r.range, 30.0);
        assert_eq!(r.rate, 750_000.0);
    }

    #[test]
    fn link_rate_is_min() {
        let fast = RadioInterface {
            range: 30.0,
            rate: 1_000_000.0,
        };
        let slow = RadioInterface {
            range: 30.0,
            rate: 250_000.0,
        };
        assert_eq!(fast.link_rate(&slow), 250_000.0);
        assert_eq!(slow.link_rate(&fast), 250_000.0);
    }

    #[test]
    fn transfer_time_examples() {
        let r = RadioInterface::paper_80211b();
        // A 2 MB message (paper maximum) needs ≈2.67 s of contact.
        let t = r.transfer_time(&r, 2_000_000);
        assert!((t - 2.666_666).abs() < 1e-3);
        // A 500 kB message (paper minimum) needs ≈0.67 s.
        let t = r.transfer_time(&r, 500_000);
        assert!((t - 0.666_666).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "range must be finite and positive")]
    fn rejects_zero_range() {
        RadioInterface {
            range: 0.0,
            rate: 1.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn rejects_infinite_rate() {
        RadioInterface {
            range: 30.0,
            rate: f64::INFINITY,
        }
        .validate();
    }
}

//! Contact tracing: aggregate statistics about contact opportunities.
//!
//! Not a paper metric by itself, but essential for validating the mobility
//! substitution (DESIGN.md): the synthetic map must yield contact counts,
//! durations and inter-contact times in the same regime as a real downtown
//! extract, because bytes-per-contact is what makes scheduling policies
//! matter.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vdtn_sim_core::stats::Welford;
use vdtn_sim_core::{NodeId, SimTime};

/// One dynamic-map entry reified for snapshotting: canonical pair → time.
pub type PairTime = ((u32, u32), SimTime);

/// Aggregate contact statistics, fed from link events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContactTrace {
    /// Total link-up events observed.
    pub contact_count: u64,
    durations: Welford,
    intercontact: Welford,
    /// Open contacts: pair → start time.
    #[serde(skip)]
    open: HashMap<(u32, u32), SimTime>,
    /// Last contact end per pair, for inter-contact times.
    #[serde(skip)]
    last_end: HashMap<(u32, u32), SimTime>,
}

fn key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl ContactTrace {
    /// Fresh trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a link-up event.
    pub fn on_up(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        let k = key(a, b);
        self.contact_count += 1;
        if let Some(&end) = self.last_end.get(&k) {
            self.intercontact.push(now.since(end).as_secs_f64());
        }
        self.open.insert(k, now);
    }

    /// Record a link-down event.
    pub fn on_down(&mut self, a: NodeId, b: NodeId, now: SimTime) {
        let k = key(a, b);
        if let Some(start) = self.open.remove(&k) {
            self.durations.push(now.since(start).as_secs_f64());
            self.last_end.insert(k, now);
        }
    }

    /// Close any still-open contacts at end of run so their durations count.
    pub fn finish(&mut self, now: SimTime) {
        // Sorted order matters: Welford accumulation is order-sensitive at
        // the ULP level, and HashMap iteration order is randomised per
        // instance — without the sort, two runs of the same seed could
        // disagree in the last bit of the mean.
        let mut open: Vec<(u32, u32)> = self.open.keys().copied().collect();
        open.sort_unstable();
        for k in open {
            let start = self.open.remove(&k).expect("listed key");
            self.durations.push(now.since(start).as_secs_f64());
        }
    }

    /// Mean contact duration, seconds.
    pub fn mean_duration(&self) -> f64 {
        self.durations.mean()
    }

    /// Mean inter-contact time (per pair), seconds.
    pub fn mean_intercontact(&self) -> f64 {
        self.intercontact.mean()
    }

    /// Number of closed contacts measured.
    pub fn measured_contacts(&self) -> u64 {
        self.durations.count()
    }

    /// Estimated bytes transferable per average contact at `rate` B/s.
    pub fn mean_bytes_per_contact(&self, rate: f64) -> f64 {
        self.mean_duration() * rate
    }

    /// The serde-skipped dynamic maps, reified in sorted-key order:
    /// `(open contacts, last contact end per pair)`. Snapshotting needs them
    /// explicitly because the serde derive persists only the accumulators.
    pub fn snapshot_maps(&self) -> (Vec<PairTime>, Vec<PairTime>) {
        let mut open: Vec<_> = self.open.iter().map(|(&k, &v)| (k, v)).collect();
        open.sort_unstable_by_key(|&(k, _)| k);
        let mut last_end: Vec<_> = self.last_end.iter().map(|(&k, &v)| (k, v)).collect();
        last_end.sort_unstable_by_key(|&(k, _)| k);
        (open, last_end)
    }

    /// Re-install dynamic maps captured by [`ContactTrace::snapshot_maps`].
    pub fn restore_maps(&mut self, open: Vec<PairTime>, last_end: Vec<PairTime>) {
        self.open = open.into_iter().collect();
        self.last_end = last_end.into_iter().collect();
    }

    /// Fold the full trace state (accumulators + dynamic maps in sorted-key
    /// order) into a canonical state hash.
    pub fn hash_into(&self, h: &mut vdtn_sim_core::StateHash) {
        h.write_u64(self.contact_count);
        self.durations.hash_into(h);
        self.intercontact.hash_into(h);
        let (open, last_end) = self.snapshot_maps();
        for (label, map) in [("open", &open), ("last_end", &last_end)] {
            h.write_tag(label);
            h.write_len(map.len());
            for &((a, b), t) in map {
                h.write_u32(a);
                h.write_u32(b);
                h.write_u64(t.as_millis());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn durations_and_intercontact() {
        let mut tr = ContactTrace::new();
        let (a, b) = (NodeId(0), NodeId(1));
        tr.on_up(a, b, t(10.0));
        tr.on_down(a, b, t(25.0)); // 15 s contact
        tr.on_up(a, b, t(125.0)); // 100 s gap
        tr.on_down(a, b, t(130.0)); // 5 s contact
        assert_eq!(tr.contact_count, 2);
        assert_eq!(tr.measured_contacts(), 2);
        assert!((tr.mean_duration() - 10.0).abs() < 1e-9);
        assert!((tr.mean_intercontact() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pair_symmetry() {
        let mut tr = ContactTrace::new();
        tr.on_up(NodeId(5), NodeId(2), t(0.0));
        tr.on_down(NodeId(2), NodeId(5), t(8.0));
        assert_eq!(tr.measured_contacts(), 1);
        assert!((tr.mean_duration() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn finish_closes_open_contacts() {
        let mut tr = ContactTrace::new();
        tr.on_up(NodeId(0), NodeId(1), t(100.0));
        tr.finish(t(160.0));
        assert_eq!(tr.measured_contacts(), 1);
        assert!((tr.mean_duration() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_contact() {
        let mut tr = ContactTrace::new();
        tr.on_up(NodeId(0), NodeId(1), t(0.0));
        tr.on_down(NodeId(0), NodeId(1), t(4.0));
        // 4 s at 750 kB/s = 3 MB ≈ two paper-sized messages.
        assert!((tr.mean_bytes_per_contact(750_000.0) - 3_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn down_without_up_is_ignored() {
        let mut tr = ContactTrace::new();
        tr.on_down(NodeId(0), NodeId(1), t(5.0));
        assert_eq!(tr.measured_contacts(), 0);
    }
}

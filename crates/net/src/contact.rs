//! Contact detection: turning node positions into link-up/down events.
//!
//! Two update disciplines produce identical event streams:
//!
//! * [`ContactDetector::update`] — the ticked reference: recompute the full
//!   in-range pair set from scratch and diff it against the previous set.
//! * [`ContactDetector::update_incremental`] — the event-driven path: the
//!   caller names which nodes moved this tick (with their displacement), the
//!   grid is patched in `O(moved)`, and only moved nodes re-query their
//!   neighbourhood. A pair of unmoved nodes cannot change its in-range
//!   status, so the diff restricted to moved nodes is exact, not heuristic.
//!   On top of that, each node caches a *slack* — its smallest distance
//!   margin to any in/out-of-range flip, learned from an extended-radius
//!   query — and skips even its own re-query while the worst-case
//!   accumulated motion of any two nodes cannot have consumed that margin.
//!
//! Pairs entering the set produce [`LinkEvent::Up`], pairs leaving produce
//! [`LinkEvent::Down`]. Events are emitted in deterministic order (downs
//! first, then ups, each lexicographically sorted), identically in both
//! disciplines.

use crate::interface::RadioInterface;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vdtn_geo::{Point, ShardMap, SpatialGrid};
use vdtn_sim_core::NodeId;

/// Which pair-finding algorithm the detector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorBackend {
    /// O(n²) scan over all pairs — simple reference implementation.
    Naive,
    /// Uniform spatial hash grid — O(n + pairs) per tick.
    Grid,
}

/// Canonical (low, high) key for an unordered node pair — the one key form
/// used for pair-indexed state everywhere (detector sets, link table,
/// engine contact bookkeeping).
pub fn pair_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Assemble the canonical event stream from canonical-key diffs: downs
/// first (freeing nodes for new contacts), then ups, each lexicographically
/// sorted. Single-sourcing this keeps the ticked and incremental detector
/// paths emitting byte-identical streams.
fn assemble_events(mut downs: Vec<(u32, u32)>, mut ups: Vec<(u32, u32)>) -> Vec<LinkEvent> {
    downs.sort_unstable();
    ups.sort_unstable();
    let mut events = Vec::with_capacity(downs.len() + ups.len());
    events.extend(
        downs
            .into_iter()
            .map(|(a, b)| LinkEvent::Down(NodeId(a), NodeId(b))),
    );
    events.extend(
        ups.into_iter()
            .map(|(a, b)| LinkEvent::Up(NodeId(a), NodeId(b))),
    );
    events
}

/// Insert `v` into a sorted vector, keeping it sorted (no-op when present).
fn insert_sorted(peers: &mut Vec<u32>, v: u32) {
    if let Err(pos) = peers.binary_search(&v) {
        peers.insert(pos, v);
    }
}

/// Remove `v` from a sorted vector (no-op when absent).
fn remove_sorted(peers: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = peers.binary_search(&v) {
        peers.remove(pos);
    }
}

/// A connectivity change between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// The pair came into radio range.
    Up(NodeId, NodeId),
    /// The pair left radio range.
    Down(NodeId, NodeId),
}

/// A node that moved during the current tick, for
/// [`ContactDetector::update_incremental`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovedNode {
    /// Index of the node in the positions slice.
    pub index: u32,
    /// Straight-line displacement since the previous tick, metres.
    pub displacement: f64,
}

/// Stateful contact detector.
pub struct ContactDetector {
    backend: DetectorBackend,
    range: f64,
    grid: SpatialGrid,
    current: HashSet<(u32, u32)>,
    // Scratch buffers reused across ticks.
    pairs_scratch: Vec<(u32, u32)>,
    query_scratch: Vec<u32>,

    // --- Incremental state (valid while `primed`) ---
    /// True once `update_incremental` has built its per-node state from a
    /// full scan. A call to the ticked `update` invalidates it.
    primed: bool,
    /// Per-node adjacency mirror of `current`: sorted peer-id vectors
    /// (dense, cache-friendly — a 100k-node world pays 24 bytes + 4·degree
    /// per node instead of a hash table per node).
    neighbors: Vec<Vec<u32>>,
    /// Per-node distance margin to the nearest possible in/out-of-range
    /// flip, measured at the node's last re-query (capped at `range`, the
    /// extended-query guarantee).
    slack: Vec<f64>,
    /// Value of `cum_drift` at the node's last re-query.
    drift_at_check: Vec<f64>,
    /// Running sum over ticks of the largest single-node displacement; any
    /// one node's total motion since drift `d0` is bounded by
    /// `cum_drift - d0`.
    cum_drift: f64,
}

impl ContactDetector {
    /// Create a detector for interfaces with the given uniform range.
    pub fn new(backend: DetectorBackend, interface: RadioInterface) -> Self {
        interface.validate();
        ContactDetector {
            backend,
            range: interface.range,
            grid: SpatialGrid::new(interface.range),
            current: HashSet::new(),
            pairs_scratch: Vec::new(),
            query_scratch: Vec::new(),
            primed: false,
            neighbors: Vec::new(),
            slack: Vec::new(),
            drift_at_check: Vec::new(),
            cum_drift: 0.0,
        }
    }

    /// Radio range in use.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Currently connected pairs (lexicographic order not guaranteed).
    pub fn active_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.current.iter().map(|&(a, b)| (NodeId(a), NodeId(b)))
    }

    /// Number of active links.
    pub fn active_count(&self) -> usize {
        self.current.len()
    }

    /// Update with this tick's positions; returns link events in
    /// deterministic order (all downs first — freeing nodes for new
    /// contacts — then ups, each lexicographically sorted).
    pub fn update(&mut self, positions: &[Point]) -> Vec<LinkEvent> {
        self.pairs_scratch.clear();
        match self.backend {
            DetectorBackend::Naive => {
                self.grid.rebuild(positions);
                self.grid
                    .pairs_within_naive(self.range, &mut self.pairs_scratch);
            }
            DetectorBackend::Grid => {
                self.grid.rebuild(positions);
                self.grid.pairs_within(self.range, &mut self.pairs_scratch);
            }
        }
        let fresh: HashSet<(u32, u32)> = self.pairs_scratch.iter().copied().collect();

        let downs: Vec<(u32, u32)> = self.current.difference(&fresh).copied().collect();
        let ups: Vec<(u32, u32)> = fresh.difference(&self.current).copied().collect();
        self.current = fresh;
        // The per-node incremental caches no longer match `current`.
        self.primed = false;
        assemble_events(downs, ups)
    }

    /// Event-driven update: only `moved` nodes changed position since the
    /// last call.
    ///
    /// Produces exactly the event stream [`ContactDetector::update`] would
    /// for the same positions (the first call performs the full scan to
    /// prime per-node state; `moved` entries are ignored for that call).
    /// The caller is responsible for `moved` being complete — listing a
    /// node that did not move is harmless, omitting one that did is not.
    ///
    /// Cost is `O(moved × neighbourhood)` instead of `O(n)`: each moved
    /// node patches its grid cell, and re-queries its surroundings only if
    /// the accumulated worst-case motion since its last re-query could have
    /// consumed its cached flip margin (see module docs). Both detector
    /// backends share this path — the backend choice only affects the
    /// ticked `update`, and the two backends are property-tested equal.
    pub fn update_incremental(
        &mut self,
        positions: &[Point],
        moved: &[MovedNode],
    ) -> Vec<LinkEvent> {
        if !self.primed {
            return self.prime(positions);
        }
        if moved.is_empty() {
            return Vec::new();
        }

        // Worst-case per-node motion this tick, for the slack bound.
        let max_disp = moved.iter().fold(0.0f64, |m, n| m.max(n.displacement));
        self.cum_drift += max_disp;

        // Patch every moved node's grid position before any query, so pairs
        // of moved nodes see each other's new position.
        for m in moved {
            self.grid.move_point(m.index, positions[m.index as usize]);
        }

        let r2 = self.range * self.range;
        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        let mut still: Vec<u32> = Vec::new();
        for m in moved {
            let i = m.index;
            // Slack skip: pair (i, j) can only flip once the two endpoints'
            // combined motion reaches the margin measured at i's last
            // re-query; each endpoint's motion is bounded by the drift
            // accumulated since then.
            let drift = self.cum_drift - self.drift_at_check[i as usize];
            if 2.0 * drift < self.slack[i as usize] {
                continue;
            }

            // One extended-radius query yields both the exact new neighbour
            // set (d ≤ range) and a fresh slack: nodes beyond 2·range are at
            // margin > range, so the cap is safe.
            let center = positions[i as usize];
            self.query_scratch.clear();
            self.grid
                .query_within(center, 2.0 * self.range, Some(i), &mut self.query_scratch);
            let mut new_slack = self.range;
            still.clear();
            for k in 0..self.query_scratch.len() {
                let j = self.query_scratch[k];
                let d2 = positions[j as usize].distance_sq(center);
                new_slack = new_slack.min((d2.sqrt() - self.range).abs());
                if d2 <= r2 {
                    still.push(j);
                    if self.neighbors[i as usize].binary_search(&j).is_err() {
                        ups.push(pair_key(NodeId(i), NodeId(j)));
                    }
                }
            }
            still.sort_unstable();
            for &j in &self.neighbors[i as usize] {
                if still.binary_search(&j).is_err() {
                    downs.push(pair_key(NodeId(i), NodeId(j)));
                }
            }
            self.slack[i as usize] = new_slack;
            self.drift_at_check[i as usize] = self.cum_drift;
        }

        // Pairs where both endpoints moved are discovered twice; canonical
        // keys + dedup collapse them.
        downs.sort_unstable();
        downs.dedup();
        ups.sort_unstable();
        ups.dedup();
        for &(a, b) in &downs {
            self.current.remove(&(a, b));
            remove_sorted(&mut self.neighbors[a as usize], b);
            remove_sorted(&mut self.neighbors[b as usize], a);
        }
        for &(a, b) in &ups {
            self.current.insert((a, b));
            insert_sorted(&mut self.neighbors[a as usize], b);
            insert_sorted(&mut self.neighbors[b as usize], a);
        }
        assemble_events(downs, ups)
    }

    /// Sharded variant of [`ContactDetector::update_incremental`]: same
    /// event stream, re-queries run concurrently on `pool`, grouped by
    /// spatial shard.
    ///
    /// Bit-identity argument, phase by phase:
    ///
    /// 1. Drift accounting and grid patching are serial and identical.
    /// 2. The slack filter selecting which nodes re-query runs serially
    ///    *before* any per-node state is written; since a node appears at
    ///    most once in `moved`, the serial path's interleaved writes cannot
    ///    influence another node's filter decision, so the due set is
    ///    exactly the serial one.
    /// 3. Each due node's re-query reads only round-start shared state
    ///    (grid, positions, neighbour sets) and produces a private result
    ///    record; shard grouping and chunk geometry affect scheduling only.
    /// 4. The merge applies per-node slack/drift writes (node-indexed,
    ///    order-free) and funnels the pair diffs through the same
    ///    sort + dedup + `assemble_events` the serial path uses, which
    ///    already collapses the duplicate discovery of both-endpoints-moved
    ///    pairs regardless of discovery order.
    pub fn update_incremental_sharded(
        &mut self,
        positions: &[Point],
        moved: &[MovedNode],
        pool: &rayon::ThreadPool,
        shards: &ShardMap,
    ) -> Vec<LinkEvent> {
        if !self.primed {
            return self.prime(positions);
        }
        if moved.is_empty() {
            return Vec::new();
        }

        let max_disp = moved.iter().fold(0.0f64, |m, n| m.max(n.displacement));
        self.cum_drift += max_disp;
        for m in moved {
            self.grid.move_point(m.index, positions[m.index as usize]);
        }

        // Serial slack filter (see bit-identity argument, step 2).
        let due: Vec<u32> = moved
            .iter()
            .map(|m| m.index)
            .filter(|&i| {
                let drift = self.cum_drift - self.drift_at_check[i as usize];
                2.0 * drift >= self.slack[i as usize]
            })
            .collect();
        if due.is_empty() {
            return Vec::new();
        }

        // Group due nodes by owning shard (stable, so deterministic — though
        // by step 4 even the grouping is merely a locality hint).
        let shard_of: Vec<u32> = due
            .iter()
            .map(|&i| shards.of_point(positions[i as usize]))
            .collect();
        let order = vdtn_sim_core::par::order_of(&shard_of);
        let grouped: Vec<u32> = order.iter().map(|&k| due[k]).collect();

        /// Private per-node re-query result, merged serially afterwards.
        struct Requery {
            node: u32,
            new_slack: f64,
            downs: Vec<(u32, u32)>,
            ups: Vec<(u32, u32)>,
        }

        let mut results: Vec<Option<Requery>> = Vec::new();
        results.resize_with(grouped.len(), || None);
        let chunk = vdtn_sim_core::par::chunk_len(grouped.len(), pool.num_threads());
        let grid = &self.grid;
        let neighbors = &self.neighbors;
        let range = self.range;
        let r2 = range * range;
        pool.scope(|s| {
            for (nodes, out) in grouped.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    let mut query: Vec<u32> = Vec::new();
                    let mut still: Vec<u32> = Vec::new();
                    for (slot, &i) in out.iter_mut().zip(nodes) {
                        let center = positions[i as usize];
                        query.clear();
                        grid.query_within(center, 2.0 * range, Some(i), &mut query);
                        let mut rq = Requery {
                            node: i,
                            new_slack: range,
                            downs: Vec::new(),
                            ups: Vec::new(),
                        };
                        still.clear();
                        for &j in &query {
                            let d2 = positions[j as usize].distance_sq(center);
                            rq.new_slack = rq.new_slack.min((d2.sqrt() - range).abs());
                            if d2 <= r2 {
                                still.push(j);
                                if neighbors[i as usize].binary_search(&j).is_err() {
                                    rq.ups.push(pair_key(NodeId(i), NodeId(j)));
                                }
                            }
                        }
                        still.sort_unstable();
                        for &j in &neighbors[i as usize] {
                            if still.binary_search(&j).is_err() {
                                rq.downs.push(pair_key(NodeId(i), NodeId(j)));
                            }
                        }
                        *slot = Some(rq);
                    }
                });
            }
        });

        // Serial merge (step 4).
        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        for rq in results.into_iter().map(|r| r.expect("all chunks ran")) {
            self.slack[rq.node as usize] = rq.new_slack;
            self.drift_at_check[rq.node as usize] = self.cum_drift;
            downs.extend(rq.downs);
            ups.extend(rq.ups);
        }
        downs.sort_unstable();
        downs.dedup();
        ups.sort_unstable();
        ups.dedup();
        for &(a, b) in &downs {
            self.current.remove(&(a, b));
            remove_sorted(&mut self.neighbors[a as usize], b);
            remove_sorted(&mut self.neighbors[b as usize], a);
        }
        for &(a, b) in &ups {
            self.current.insert((a, b));
            insert_sorted(&mut self.neighbors[a as usize], b);
            insert_sorted(&mut self.neighbors[b as usize], a);
        }
        assemble_events(downs, ups)
    }

    /// Full scan that initialises the incremental per-node state. Emits the
    /// same events a ticked `update` would from an empty previous set.
    fn prime(&mut self, positions: &[Point]) -> Vec<LinkEvent> {
        self.grid.rebuild(positions);
        self.pairs_scratch.clear();
        self.grid.pairs_within(self.range, &mut self.pairs_scratch);
        let fresh: HashSet<(u32, u32)> = self.pairs_scratch.iter().copied().collect();

        let downs: Vec<(u32, u32)> = self.current.difference(&fresh).copied().collect();
        let ups: Vec<(u32, u32)> = fresh.difference(&self.current).copied().collect();

        self.neighbors = vec![Vec::new(); positions.len()];
        for &(a, b) in &fresh {
            self.neighbors[a as usize].push(b);
            self.neighbors[b as usize].push(a);
        }
        for peers in &mut self.neighbors {
            peers.sort_unstable();
        }
        // Zero slack forces a real re-query on each node's first move.
        self.slack = vec![0.0; positions.len()];
        self.drift_at_check = vec![0.0; positions.len()];
        self.cum_drift = 0.0;
        self.current = fresh;
        self.primed = true;

        assemble_events(downs, ups)
    }

    /// Forget all link state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.current.clear();
        self.primed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(backend: DetectorBackend) -> ContactDetector {
        ContactDetector::new(backend, RadioInterface::paper_80211b())
    }

    #[test]
    fn detects_up_and_down() {
        let mut d = detector(DetectorBackend::Grid);
        // Two nodes approach, meet, separate.
        let apart = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let close = vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)];

        assert!(d.update(&apart).is_empty());
        let ev = d.update(&close);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 1);
        assert!(d.update(&close).is_empty(), "no repeat events while stable");
        let ev = d.update(&apart);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 0);
    }

    #[test]
    fn exact_range_is_connected() {
        let mut d = detector(DetectorBackend::Naive);
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.0, 0.0)]);
        assert_eq!(ev.len(), 1, "distance == range counts as in range");
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.001, 0.0)]);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn backends_agree_on_random_walk() {
        let mut naive = detector(DetectorBackend::Naive);
        let mut grid = detector(DetectorBackend::Grid);
        // Deterministic pseudo-random positions for 30 nodes over 50 ticks.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos: Vec<Point> = (0..30)
            .map(|_| Point::new(next() * 300.0, next() * 300.0))
            .collect();
        for _ in 0..50 {
            for p in &mut pos {
                p.x += (next() - 0.5) * 20.0;
                p.y += (next() - 0.5) * 20.0;
            }
            let en = naive.update(&pos);
            let eg = grid.update(&pos);
            assert_eq!(en, eg);
        }
    }

    #[test]
    fn downs_emitted_before_ups() {
        let mut d = detector(DetectorBackend::Grid);
        // Node 1 near node 0, node 2 far.
        d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(500.0, 0.0),
        ]);
        // Node 1 leaves, node 2 arrives, same tick.
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(200.0, 0.0),
            Point::new(15.0, 0.0),
        ]);
        assert_eq!(
            ev,
            vec![
                LinkEvent::Down(NodeId(0), NodeId(1)),
                LinkEvent::Up(NodeId(0), NodeId(2)),
            ]
        );
    }

    /// Deterministic LCG in [0, 1).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as f64 / (1u64 << 31) as f64
    }

    /// Random-walk equivalence harness: an incrementally updated detector
    /// must emit exactly the reference (full-rescan) event stream, tick by
    /// tick, for any mix of moving and parked nodes.
    fn random_walk_equivalence(seed: u64, n: usize, ticks: usize, move_prob: f64) {
        let mut reference = detector(DetectorBackend::Grid);
        let mut incremental = detector(DetectorBackend::Grid);
        let mut state = seed;
        let mut pos: Vec<Point> = (0..n)
            .map(|_| Point::new(lcg(&mut state) * 400.0, lcg(&mut state) * 400.0))
            .collect();
        // Prime both on the initial layout.
        let er = reference.update(&pos);
        let ei = incremental.update_incremental(&pos, &[]);
        assert_eq!(er, ei, "priming events differ");
        for tick in 0..ticks {
            let mut moved = Vec::new();
            for (i, p) in pos.iter_mut().enumerate() {
                if lcg(&mut state) < move_prob {
                    let old = *p;
                    p.x += (lcg(&mut state) - 0.5) * 25.0;
                    p.y += (lcg(&mut state) - 0.5) * 25.0;
                    moved.push(MovedNode {
                        index: i as u32,
                        displacement: old.distance(*p),
                    });
                }
            }
            let er = reference.update(&pos);
            let ei = incremental.update_incremental(&pos, &moved);
            assert_eq!(er, ei, "tick {tick}: event streams diverged");
            assert_eq!(
                reference.active_count(),
                incremental.active_count(),
                "tick {tick}: active sets diverged"
            );
        }
    }

    #[test]
    fn incremental_matches_reference_all_moving() {
        random_walk_equivalence(1, 40, 60, 1.0);
    }

    /// Sharded re-query must emit exactly the serial incremental stream —
    /// and the full-rescan reference stream — at every pool size, on the
    /// same random walks as the serial harness.
    #[test]
    fn sharded_matches_serial_incremental_at_every_pool_size() {
        for &threads in &[1usize, 2, 4] {
            let pool = rayon::ThreadPool::new(threads);
            let mut reference = detector(DetectorBackend::Grid);
            let mut serial = detector(DetectorBackend::Grid);
            let mut sharded = detector(DetectorBackend::Grid);
            let mut state = 7u64;
            let mut pos: Vec<Point> = (0..40)
                .map(|_| Point::new(lcg(&mut state) * 400.0, lcg(&mut state) * 400.0))
                .collect();
            let shards = ShardMap::build(&pos, reference.range(), 8);
            let er = reference.update(&pos);
            let es = serial.update_incremental(&pos, &[]);
            let eh = sharded.update_incremental_sharded(&pos, &[], &pool, &shards);
            assert_eq!(er, es);
            assert_eq!(er, eh);
            for tick in 0..60 {
                let mut moved = Vec::new();
                for (i, p) in pos.iter_mut().enumerate() {
                    if lcg(&mut state) < 0.6 {
                        let old = *p;
                        p.x += (lcg(&mut state) - 0.5) * 25.0;
                        p.y += (lcg(&mut state) - 0.5) * 25.0;
                        moved.push(MovedNode {
                            index: i as u32,
                            displacement: old.distance(*p),
                        });
                    }
                }
                let er = reference.update(&pos);
                let es = serial.update_incremental(&pos, &moved);
                let eh = sharded.update_incremental_sharded(&pos, &moved, &pool, &shards);
                assert_eq!(er, es, "threads {threads} tick {tick}: serial diverged");
                assert_eq!(er, eh, "threads {threads} tick {tick}: sharded diverged");
                assert_eq!(serial.active_count(), sharded.active_count());
            }
        }
    }

    #[test]
    fn incremental_matches_reference_sparse_movement() {
        // Most nodes parked, as in the paper scenario; exercises the slack
        // skip over many consecutive small displacements.
        random_walk_equivalence(2, 40, 120, 0.15);
    }

    #[test]
    fn incremental_matches_reference_dense_cluster() {
        random_walk_equivalence(3, 25, 60, 0.5);
    }

    #[test]
    fn incremental_with_no_movement_is_silent() {
        let mut d = detector(DetectorBackend::Grid);
        let pos = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let ev = d.update_incremental(&pos, &[]);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        for _ in 0..5 {
            assert!(d.update_incremental(&pos, &[]).is_empty());
        }
        assert_eq!(d.active_count(), 1);
    }

    #[test]
    fn ticked_update_invalidates_incremental_state() {
        let mut d = detector(DetectorBackend::Grid);
        let close = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let apart = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        assert_eq!(d.update_incremental(&close, &[]).len(), 1);
        // A ticked update in between must not confuse a later incremental
        // call: it re-primes from the full scan.
        assert_eq!(d.update(&apart).len(), 1); // down
        let ev = d.update_incremental(&close, &[]);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn reset_forgets_links() {
        let mut d = detector(DetectorBackend::Grid);
        d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(d.active_count(), 1);
        d.reset();
        assert_eq!(d.active_count(), 0);
        // After reset the same positions re-emit Up.
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn three_node_clique() {
        let mut d = detector(DetectorBackend::Grid);
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ]);
        assert_eq!(ev.len(), 3);
        assert_eq!(d.active_count(), 3);
    }
}

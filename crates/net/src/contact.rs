//! Contact detection: turning node positions into link-up/down events.
//!
//! Two update disciplines produce identical event streams:
//!
//! * [`ContactDetector::update`] — the ticked reference: recompute the full
//!   in-range pair set from scratch and diff it against the previous set.
//! * [`ContactDetector::update_incremental`] — the event-driven path: the
//!   caller names which nodes moved this tick (with their displacement), the
//!   grid is patched in `O(moved)`, and only moved nodes re-query their
//!   neighbourhood. A pair of unmoved nodes cannot change its in-range
//!   status, so the diff restricted to moved nodes is exact, not heuristic.
//!   On top of that, each node caches a *slack* — its smallest distance
//!   margin to any in/out-of-range flip, learned from an extended-radius
//!   query — and skips even its own re-query while the worst-case
//!   accumulated motion of any two nodes cannot have consumed that margin.
//!
//! Pairs entering the set produce [`LinkEvent::Up`], pairs leaving produce
//! [`LinkEvent::Down`]. Events are emitted in deterministic order (downs
//! first, then ups, each lexicographically sorted), identically in both
//! disciplines.

use crate::interface::RadioInterface;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use vdtn_geo::{Point, Segment, ShardMap, SpatialGrid};
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// Which pair-finding algorithm the detector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorBackend {
    /// O(n²) scan over all pairs — simple reference implementation.
    Naive,
    /// Uniform spatial hash grid — O(n + pairs) per tick.
    Grid,
}

/// Canonical (low, high) key for an unordered node pair — the one key form
/// used for pair-indexed state everywhere (detector sets, link table,
/// engine contact bookkeeping).
pub fn pair_key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

/// Assemble the canonical event stream from canonical-key diffs: downs
/// first (freeing nodes for new contacts), then ups, each lexicographically
/// sorted. Single-sourcing this keeps the ticked and incremental detector
/// paths emitting byte-identical streams.
fn assemble_events(mut downs: Vec<(u32, u32)>, mut ups: Vec<(u32, u32)>) -> Vec<LinkEvent> {
    downs.sort_unstable();
    ups.sort_unstable();
    let mut events = Vec::with_capacity(downs.len() + ups.len());
    events.extend(
        downs
            .into_iter()
            .map(|(a, b)| LinkEvent::Down(NodeId(a), NodeId(b))),
    );
    events.extend(
        ups.into_iter()
            .map(|(a, b)| LinkEvent::Up(NodeId(a), NodeId(b))),
    );
    events
}

/// Insert `v` into a sorted vector, keeping it sorted (no-op when present).
fn insert_sorted(peers: &mut Vec<u32>, v: u32) {
    if let Err(pos) = peers.binary_search(&v) {
        peers.insert(pos, v);
    }
}

/// Remove `v` from a sorted vector (no-op when absent).
fn remove_sorted(peers: &mut Vec<u32>, v: u32) {
    if let Ok(pos) = peers.binary_search(&v) {
        peers.remove(pos);
    }
}

/// Borrowed view over the world's structure-of-arrays kinematics columns:
/// one motion segment per node, stored column-wise.
///
/// Positions are *always* evaluated through [`Segment::position_at`] — the
/// same closed form the movement models and the engine use — so a distance
/// the detector computes here is bit-identical to one computed from
/// materialised per-tick positions.
#[derive(Clone, Copy)]
pub struct MotionCols<'a> {
    /// Segment origin (position at `start`) per node.
    pub origin: &'a [Point],
    /// Segment velocity per node, m/s per axis.
    pub velocity: &'a [Point],
    /// Segment start time per node.
    pub start: &'a [SimTime],
    /// Segment expiry (next decision boundary) per node.
    pub until: &'a [SimTime],
}

impl MotionCols<'_> {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// True when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.origin.is_empty()
    }

    /// Reassemble node `i`'s current motion segment.
    #[inline]
    pub fn segment(&self, i: usize) -> Segment {
        Segment {
            origin: self.origin[i],
            velocity: self.velocity[i],
            start: self.start[i],
            until: self.until[i],
        }
    }

    /// Closed-form position of node `i` at absolute time `t`.
    #[inline]
    pub fn position_at(&self, i: usize, t: SimTime) -> Point {
        self.segment(i).position_at(t)
    }
}

/// Guard band, metres, around the range boundary for the analytic
/// no-crossing proofs: a pair is only declared safe-for-the-window when its
/// extremal distance clears the boundary by at least this much, absorbing
/// float error in the quadratic.
const GUARD: f64 = 1e-6;

/// Safety margin, seconds, subtracted from an analytically solved crossing
/// time before it becomes a deadline, so float error in the root can never
/// push a wake *past* the true flip.
const ROOT_SAFETY: f64 = 1e-3;

/// Convert non-negative fractional seconds to a duration, rounding *down*
/// to the millisecond grid — deadline arithmetic must always err early.
fn floor_ms(secs: f64) -> SimDuration {
    debug_assert!(secs >= 0.0, "negative deadline distance {secs}");
    if secs >= u64::MAX as f64 / 1000.0 {
        return SimDuration::MAX;
    }
    SimDuration::from_millis((secs * 1000.0).floor() as u64)
}

/// A connectivity change between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// The pair came into radio range.
    Up(NodeId, NodeId),
    /// The pair left radio range.
    Down(NodeId, NodeId),
}

/// A node that moved during the current tick, for
/// [`ContactDetector::update_incremental`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovedNode {
    /// Index of the node in the positions slice.
    pub index: u32,
    /// Straight-line displacement since the previous tick, metres.
    pub displacement: f64,
}

/// Stateful contact detector.
pub struct ContactDetector {
    backend: DetectorBackend,
    range: f64,
    grid: SpatialGrid,
    current: HashSet<(u32, u32)>,
    // Scratch buffers reused across ticks.
    pairs_scratch: Vec<(u32, u32)>,
    query_scratch: Vec<u32>,

    // --- Incremental state (valid while `primed`) ---
    /// True once `update_incremental` has built its per-node state from a
    /// full scan. A call to the ticked `update` invalidates it.
    primed: bool,
    /// Per-node adjacency mirror of `current`: sorted peer-id vectors
    /// (dense, cache-friendly — a 100k-node world pays 24 bytes + 4·degree
    /// per node instead of a hash table per node).
    neighbors: Vec<Vec<u32>>,
    /// Per-node distance margin to the nearest possible in/out-of-range
    /// flip, measured at the node's last re-query (capped at `range`, the
    /// extended-query guarantee).
    slack: Vec<f64>,
    /// Value of `cum_drift` at the node's last re-query.
    drift_at_check: Vec<f64>,
    /// Running sum over ticks of the largest single-node displacement; any
    /// one node's total motion since drift `d0` is bounded by
    /// `cum_drift - d0`.
    cum_drift: f64,

    // --- Kinematic state (valid while `kin_valid`) ---
    /// True once `prime_kinematic` has built the deadline state. Any ticked
    /// or slack-incremental update invalidates it.
    kin_valid: bool,
    /// Per-node slack deadline: the earliest instant at which a pair
    /// involving this node could flip its in-range status, as bounded at the
    /// node's last re-query. Parked nodes carry [`SimTime::MAX`] — any flip
    /// of their pairs has a moving endpoint whose own deadline covers it.
    deadline: Vec<SimTime>,
    /// Min-heap of `(deadline, node)` wake entries. Entries are lazily
    /// invalidated: one whose time no longer equals `deadline[node]` is
    /// stale and discarded on pop. `(time, node)` keys totally order the
    /// pops, so push order never matters — the sharded merge needs no
    /// sequence counter.
    due_heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    /// Scratch for the due set popped per update.
    due_scratch: Vec<u32>,
}

impl ContactDetector {
    /// Create a detector for interfaces with the given uniform range.
    pub fn new(backend: DetectorBackend, interface: RadioInterface) -> Self {
        interface.validate();
        ContactDetector {
            backend,
            range: interface.range,
            grid: SpatialGrid::new(interface.range),
            current: HashSet::new(),
            pairs_scratch: Vec::new(),
            query_scratch: Vec::new(),
            primed: false,
            neighbors: Vec::new(),
            slack: Vec::new(),
            drift_at_check: Vec::new(),
            cum_drift: 0.0,
            kin_valid: false,
            deadline: Vec::new(),
            due_heap: BinaryHeap::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Radio range in use.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Currently connected pairs (lexicographic order not guaranteed).
    pub fn active_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.current.iter().map(|&(a, b)| (NodeId(a), NodeId(b)))
    }

    /// Number of active links.
    pub fn active_count(&self) -> usize {
        self.current.len()
    }

    /// Update with this tick's positions; returns link events in
    /// deterministic order (all downs first — freeing nodes for new
    /// contacts — then ups, each lexicographically sorted).
    pub fn update(&mut self, positions: &[Point]) -> Vec<LinkEvent> {
        self.pairs_scratch.clear();
        match self.backend {
            DetectorBackend::Naive => {
                self.grid.rebuild(positions);
                self.grid
                    .pairs_within_naive(self.range, &mut self.pairs_scratch);
            }
            DetectorBackend::Grid => {
                self.grid.rebuild(positions);
                self.grid.pairs_within(self.range, &mut self.pairs_scratch);
            }
        }
        let fresh: HashSet<(u32, u32)> = self.pairs_scratch.iter().copied().collect();

        let downs: Vec<(u32, u32)> = self.current.difference(&fresh).copied().collect();
        let ups: Vec<(u32, u32)> = fresh.difference(&self.current).copied().collect();
        self.current = fresh;
        // The per-node incremental caches no longer match `current`.
        self.primed = false;
        self.kin_valid = false;
        assemble_events(downs, ups)
    }

    /// Event-driven update: only `moved` nodes changed position since the
    /// last call.
    ///
    /// Produces exactly the event stream [`ContactDetector::update`] would
    /// for the same positions (the first call performs the full scan to
    /// prime per-node state; `moved` entries are ignored for that call).
    /// The caller is responsible for `moved` being complete — listing a
    /// node that did not move is harmless, omitting one that did is not.
    ///
    /// Cost is `O(moved × neighbourhood)` instead of `O(n)`: each moved
    /// node patches its grid cell, and re-queries its surroundings only if
    /// the accumulated worst-case motion since its last re-query could have
    /// consumed its cached flip margin (see module docs). Both detector
    /// backends share this path — the backend choice only affects the
    /// ticked `update`, and the two backends are property-tested equal.
    pub fn update_incremental(
        &mut self,
        positions: &[Point],
        moved: &[MovedNode],
    ) -> Vec<LinkEvent> {
        if !self.primed {
            return self.prime(positions);
        }
        // The slack path does not maintain deadlines.
        self.kin_valid = false;
        if moved.is_empty() {
            return Vec::new();
        }

        // Worst-case per-node motion this tick, for the slack bound.
        let max_disp = moved.iter().fold(0.0f64, |m, n| m.max(n.displacement));
        self.cum_drift += max_disp;

        // Patch every moved node's grid position before any query, so pairs
        // of moved nodes see each other's new position.
        for m in moved {
            self.grid.move_point(m.index, positions[m.index as usize]);
        }

        let r2 = self.range * self.range;
        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        let mut still: Vec<u32> = Vec::new();
        for m in moved {
            let i = m.index;
            // Slack skip: pair (i, j) can only flip once the two endpoints'
            // combined motion reaches the margin measured at i's last
            // re-query; each endpoint's motion is bounded by the drift
            // accumulated since then.
            let drift = self.cum_drift - self.drift_at_check[i as usize];
            if 2.0 * drift < self.slack[i as usize] {
                continue;
            }

            // One extended-radius query yields both the exact new neighbour
            // set (d ≤ range) and a fresh slack: nodes beyond 2·range are at
            // margin > range, so the cap is safe.
            let center = positions[i as usize];
            self.query_scratch.clear();
            self.grid
                .query_within(center, 2.0 * self.range, Some(i), &mut self.query_scratch);
            // Track the extremal squared distances on each side of the range
            // boundary instead of square-rooting every candidate: sqrt is
            // monotone, so the nearest boundary margin comes from the largest
            // in-range d² and the smallest out-of-range d². At most two
            // sqrts per re-query, and — because the selected d² feeds the
            // exact expression the per-candidate loop used — the slack value
            // is bit-identical.
            let mut best_in = -1.0f64; // max d² among d² ≤ range²
            let mut best_out = f64::INFINITY; // min d² among d² > range²
            still.clear();
            for k in 0..self.query_scratch.len() {
                let j = self.query_scratch[k];
                let d2 = positions[j as usize].distance_sq(center);
                if d2 <= r2 {
                    best_in = best_in.max(d2);
                    still.push(j);
                    if self.neighbors[i as usize].binary_search(&j).is_err() {
                        ups.push(pair_key(NodeId(i), NodeId(j)));
                    }
                } else {
                    best_out = best_out.min(d2);
                }
            }
            let mut new_slack = self.range;
            if best_in >= 0.0 {
                new_slack = new_slack.min((best_in.sqrt() - self.range).abs());
            }
            if best_out.is_finite() {
                new_slack = new_slack.min((best_out.sqrt() - self.range).abs());
            }
            still.sort_unstable();
            for &j in &self.neighbors[i as usize] {
                if still.binary_search(&j).is_err() {
                    downs.push(pair_key(NodeId(i), NodeId(j)));
                }
            }
            self.slack[i as usize] = new_slack;
            self.drift_at_check[i as usize] = self.cum_drift;
        }

        self.apply_diff(downs, ups)
    }

    /// Sort, dedup, and apply a pair diff to `current` and the adjacency
    /// mirror, then assemble the canonical event stream. Pairs whose both
    /// endpoints re-queried are discovered twice; canonical keys + dedup
    /// collapse them, regardless of discovery order.
    fn apply_diff(
        &mut self,
        mut downs: Vec<(u32, u32)>,
        mut ups: Vec<(u32, u32)>,
    ) -> Vec<LinkEvent> {
        downs.sort_unstable();
        downs.dedup();
        ups.sort_unstable();
        ups.dedup();
        for &(a, b) in &downs {
            self.current.remove(&(a, b));
            remove_sorted(&mut self.neighbors[a as usize], b);
            remove_sorted(&mut self.neighbors[b as usize], a);
        }
        for &(a, b) in &ups {
            self.current.insert((a, b));
            insert_sorted(&mut self.neighbors[a as usize], b);
            insert_sorted(&mut self.neighbors[b as usize], a);
        }
        assemble_events(downs, ups)
    }

    /// Sharded variant of [`ContactDetector::update_incremental`]: same
    /// event stream, re-queries run concurrently on `pool`, grouped by
    /// spatial shard.
    ///
    /// Bit-identity argument, phase by phase:
    ///
    /// 1. Drift accounting and grid patching are serial and identical.
    /// 2. The slack filter selecting which nodes re-query runs serially
    ///    *before* any per-node state is written; since a node appears at
    ///    most once in `moved`, the serial path's interleaved writes cannot
    ///    influence another node's filter decision, so the due set is
    ///    exactly the serial one.
    /// 3. Each due node's re-query reads only round-start shared state
    ///    (grid, positions, neighbour sets) and produces a private result
    ///    record; shard grouping and chunk geometry affect scheduling only.
    /// 4. The merge applies per-node slack/drift writes (node-indexed,
    ///    order-free) and funnels the pair diffs through the same
    ///    sort + dedup + `assemble_events` the serial path uses, which
    ///    already collapses the duplicate discovery of both-endpoints-moved
    ///    pairs regardless of discovery order.
    pub fn update_incremental_sharded(
        &mut self,
        positions: &[Point],
        moved: &[MovedNode],
        pool: &rayon::ThreadPool,
        shards: &ShardMap,
    ) -> Vec<LinkEvent> {
        if !self.primed {
            return self.prime(positions);
        }
        self.kin_valid = false;
        if moved.is_empty() {
            return Vec::new();
        }

        let max_disp = moved.iter().fold(0.0f64, |m, n| m.max(n.displacement));
        self.cum_drift += max_disp;
        for m in moved {
            self.grid.move_point(m.index, positions[m.index as usize]);
        }

        // Serial slack filter (see bit-identity argument, step 2).
        let due: Vec<u32> = moved
            .iter()
            .map(|m| m.index)
            .filter(|&i| {
                let drift = self.cum_drift - self.drift_at_check[i as usize];
                2.0 * drift >= self.slack[i as usize]
            })
            .collect();
        if due.is_empty() {
            return Vec::new();
        }

        // Group due nodes by owning shard (stable, so deterministic — though
        // by step 4 even the grouping is merely a locality hint).
        let shard_of: Vec<u32> = due
            .iter()
            .map(|&i| shards.of_point(positions[i as usize]))
            .collect();
        let order = vdtn_sim_core::par::order_of(&shard_of);
        let grouped: Vec<u32> = order.iter().map(|&k| due[k]).collect();

        /// Private per-node re-query result, merged serially afterwards.
        struct Requery {
            node: u32,
            new_slack: f64,
            downs: Vec<(u32, u32)>,
            ups: Vec<(u32, u32)>,
        }

        let mut results: Vec<Option<Requery>> = Vec::new();
        results.resize_with(grouped.len(), || None);
        let chunk = vdtn_sim_core::par::chunk_len(grouped.len(), pool.num_threads());
        let grid = &self.grid;
        let neighbors = &self.neighbors;
        let range = self.range;
        let r2 = range * range;
        pool.scope(|s| {
            for (nodes, out) in grouped.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    let mut query: Vec<u32> = Vec::new();
                    let mut still: Vec<u32> = Vec::new();
                    for (slot, &i) in out.iter_mut().zip(nodes) {
                        let center = positions[i as usize];
                        query.clear();
                        grid.query_within(center, 2.0 * range, Some(i), &mut query);
                        let mut rq = Requery {
                            node: i,
                            new_slack: range,
                            downs: Vec::new(),
                            ups: Vec::new(),
                        };
                        // Same two-sided extremal-d² slack as the serial
                        // path: ≤ 2 sqrts per re-query, bit-identical value.
                        let mut best_in = -1.0f64;
                        let mut best_out = f64::INFINITY;
                        still.clear();
                        for &j in &query {
                            let d2 = positions[j as usize].distance_sq(center);
                            if d2 <= r2 {
                                best_in = best_in.max(d2);
                                still.push(j);
                                if neighbors[i as usize].binary_search(&j).is_err() {
                                    rq.ups.push(pair_key(NodeId(i), NodeId(j)));
                                }
                            } else {
                                best_out = best_out.min(d2);
                            }
                        }
                        if best_in >= 0.0 {
                            rq.new_slack = rq.new_slack.min((best_in.sqrt() - range).abs());
                        }
                        if best_out.is_finite() {
                            rq.new_slack = rq.new_slack.min((best_out.sqrt() - range).abs());
                        }
                        still.sort_unstable();
                        for &j in &neighbors[i as usize] {
                            if still.binary_search(&j).is_err() {
                                rq.downs.push(pair_key(NodeId(i), NodeId(j)));
                            }
                        }
                        *slot = Some(rq);
                    }
                });
            }
        });

        // Serial merge (step 4).
        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        for rq in results.into_iter().map(|r| r.expect("all chunks ran")) {
            self.slack[rq.node as usize] = rq.new_slack;
            self.drift_at_check[rq.node as usize] = self.cum_drift;
            downs.extend(rq.downs);
            ups.extend(rq.ups);
        }
        self.apply_diff(downs, ups)
    }

    /// Prime the kinematic (slack-deadline) state from the motion columns
    /// at `now`: a full rescan at analytically evaluated positions, then a
    /// deadline of `now` for every moving node (forcing a first real
    /// re-query at the next update) and [`SimTime::MAX`] for parked ones.
    pub fn prime_kinematic(&mut self, now: SimTime, cols: &MotionCols) -> Vec<LinkEvent> {
        let positions: Vec<Point> = (0..cols.len()).map(|i| cols.position_at(i, now)).collect();
        let events = self.prime(&positions);
        let n = cols.len();
        self.deadline.clear();
        self.deadline.resize(n, SimTime::MAX);
        self.due_heap.clear();
        for i in 0..n {
            if !cols.segment(i).is_parked() {
                self.deadline[i] = now;
                self.due_heap.push(Reverse((now, i as u32)));
            }
        }
        self.kin_valid = true;
        events
    }

    /// Earliest pending slack deadline — when the engine should wake the
    /// detector next ([`SimTime::MAX`] when nothing is pending, i.e. all
    /// nodes parked). May be conservatively early when the top heap entry
    /// is stale; a wake that finds no due node is a cheap no-op.
    pub fn next_deadline(&self) -> SimTime {
        if !self.kin_valid {
            return SimTime::ZERO;
        }
        self.due_heap
            .peek()
            .map_or(SimTime::MAX, |&Reverse((t, _))| t)
    }

    /// Note that node `i`'s motion segment was just replaced (trip planned,
    /// leg crossed, waypoint reached, wait drawn): every bound derived from
    /// its old velocity dies with the segment, so its deadline collapses to
    /// `now` and the next kinematic update re-queries it against the new
    /// segment. No-op before priming.
    pub fn on_motion_change(&mut self, i: u32, now: SimTime) {
        if !self.kin_valid {
            return;
        }
        self.deadline[i as usize] = now;
        self.due_heap.push(Reverse((now, i)));
    }

    /// Pop the due set for `now` into `due_scratch`: every still-valid heap
    /// entry at or before `now`, deduplicated, ascending by node index.
    /// Entries whose time no longer matches the node's recorded deadline
    /// are stale (the deadline was superseded) and are discarded.
    fn pop_due(&mut self, now: SimTime) {
        self.due_scratch.clear();
        while let Some(&Reverse((t, i))) = self.due_heap.peek() {
            if t > now {
                break;
            }
            self.due_heap.pop();
            if self.deadline[i as usize] == t {
                self.due_scratch.push(i);
            }
        }
        self.due_scratch.sort_unstable();
        self.due_scratch.dedup();
    }

    /// Kinematic update at `now`: pop the due slack deadlines, re-query
    /// only those nodes at analytically evaluated positions, emit the pair
    /// diff, and schedule fresh deadlines from the quadratic contact-window
    /// bounds.
    ///
    /// Produces exactly the event stream a full rescan at `now` would emit,
    /// provided the caller invoked it at (the first evaluation instant at
    /// or after) every `next_deadline()` it reported and routed every
    /// segment replacement through
    /// [`on_motion_change`](ContactDetector::on_motion_change) — which the
    /// engine guarantees with `ContactWindow` and `MovementWake` events.
    /// Auto-primes on first use.
    pub fn update_kinematic(
        &mut self,
        now: SimTime,
        cols: &MotionCols,
        v_glob: f64,
    ) -> Vec<LinkEvent> {
        if !self.kin_valid {
            return self.prime_kinematic(now, cols);
        }
        self.pop_due(now);
        if self.due_scratch.is_empty() {
            return Vec::new();
        }
        // Patch the grid for every due node before any re-query, so
        // due-due pairs see each other's fresh position.
        let due = std::mem::take(&mut self.due_scratch);
        for &i in &due {
            self.grid.move_point(i, cols.position_at(i as usize, now));
        }
        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        let mut query = std::mem::take(&mut self.query_scratch);
        let mut still: Vec<u32> = Vec::new();
        for &i in &due {
            let rq = kin_requery(
                i,
                now,
                cols,
                v_glob,
                self.range,
                &self.grid,
                &self.neighbors,
                &mut query,
                &mut still,
            );
            self.deadline[i as usize] = rq.deadline;
            if rq.deadline < SimTime::MAX {
                self.due_heap.push(Reverse((rq.deadline, i)));
            }
            downs.extend(rq.downs);
            ups.extend(rq.ups);
        }
        self.query_scratch = query;
        self.due_scratch = due;
        self.apply_diff(downs, ups)
    }

    /// Sharded variant of [`ContactDetector::update_kinematic`]: identical
    /// event stream and deadline state at every pool size. The due set is
    /// popped serially; re-queries read only round-start shared state
    /// (grid, columns, adjacency) into private records; the merge is serial
    /// — the same argument as `update_incremental_sharded`, with one
    /// addition: heap pushes commute because `(time, node)` keys totally
    /// order the pops, so merge order cannot leak into the due schedule.
    pub fn update_kinematic_sharded(
        &mut self,
        now: SimTime,
        cols: &MotionCols,
        v_glob: f64,
        pool: &rayon::ThreadPool,
        shards: &ShardMap,
    ) -> Vec<LinkEvent> {
        if !self.kin_valid {
            return self.prime_kinematic(now, cols);
        }
        self.pop_due(now);
        if self.due_scratch.is_empty() {
            return Vec::new();
        }
        let due = std::mem::take(&mut self.due_scratch);
        let centers: Vec<Point> = due
            .iter()
            .map(|&i| cols.position_at(i as usize, now))
            .collect();
        for (&i, &c) in due.iter().zip(&centers) {
            self.grid.move_point(i, c);
        }
        // Group due nodes by owning shard — a locality hint only;
        // determinism does not depend on the grouping.
        let shard_of: Vec<u32> = centers.iter().map(|&c| shards.of_point(c)).collect();
        let order = vdtn_sim_core::par::order_of(&shard_of);
        let grouped: Vec<u32> = order.iter().map(|&k| due[k]).collect();

        let mut results: Vec<Option<KinRequery>> = Vec::new();
        results.resize_with(grouped.len(), || None);
        let chunk = vdtn_sim_core::par::chunk_len(grouped.len(), pool.num_threads());
        let grid = &self.grid;
        let neighbors = &self.neighbors;
        let range = self.range;
        pool.scope(|s| {
            for (nodes, out) in grouped.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    let mut query: Vec<u32> = Vec::new();
                    let mut still: Vec<u32> = Vec::new();
                    for (slot, &i) in out.iter_mut().zip(nodes) {
                        *slot = Some(kin_requery(
                            i, now, cols, v_glob, range, grid, neighbors, &mut query, &mut still,
                        ));
                    }
                });
            }
        });

        let mut downs: Vec<(u32, u32)> = Vec::new();
        let mut ups: Vec<(u32, u32)> = Vec::new();
        for rq in results.into_iter().map(|r| r.expect("all chunks ran")) {
            self.deadline[rq.node as usize] = rq.deadline;
            if rq.deadline < SimTime::MAX {
                self.due_heap.push(Reverse((rq.deadline, rq.node)));
            }
            downs.extend(rq.downs);
            ups.extend(rq.ups);
        }
        self.due_scratch = due;
        self.apply_diff(downs, ups)
    }

    /// Full scan that initialises the incremental per-node state. Emits the
    /// same events a ticked `update` would from an empty previous set.
    fn prime(&mut self, positions: &[Point]) -> Vec<LinkEvent> {
        self.grid.rebuild(positions);
        self.pairs_scratch.clear();
        self.grid.pairs_within(self.range, &mut self.pairs_scratch);
        let fresh: HashSet<(u32, u32)> = self.pairs_scratch.iter().copied().collect();

        let downs: Vec<(u32, u32)> = self.current.difference(&fresh).copied().collect();
        let ups: Vec<(u32, u32)> = fresh.difference(&self.current).copied().collect();

        self.neighbors = vec![Vec::new(); positions.len()];
        for &(a, b) in &fresh {
            self.neighbors[a as usize].push(b);
            self.neighbors[b as usize].push(a);
        }
        for peers in &mut self.neighbors {
            peers.sort_unstable();
        }
        // Zero slack forces a real re-query on each node's first move.
        self.slack = vec![0.0; positions.len()];
        self.drift_at_check = vec![0.0; positions.len()];
        self.cum_drift = 0.0;
        self.current = fresh;
        self.primed = true;
        // A slack prime does not build deadlines; the kinematic entry points
        // re-prime through `prime_kinematic`.
        self.kin_valid = false;

        assemble_events(downs, ups)
    }

    /// Forget all link state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.current.clear();
        self.primed = false;
        self.kin_valid = false;
    }
}

/// Private result of one kinematic re-query, applied serially afterwards.
/// Shared by the serial and sharded paths so they are one algorithm.
struct KinRequery {
    node: u32,
    deadline: SimTime,
    downs: Vec<(u32, u32)>,
    ups: Vec<(u32, u32)>,
}

/// Re-query node `i` against the grid at time `now`: exact pair diff from
/// true (analytic) distances, plus a fresh conservative slack deadline.
///
/// Pure with respect to shared state — grid, columns, and adjacency are
/// only read — so the sharded path runs many of these concurrently and
/// merges the records serially.
///
/// The grid query uses radius `3·range`: candidate discovery must find any
/// node within a *true* `2·range`, and a non-due node's indexed position is
/// stale by strictly less than `range` (its deadline caps its drift at
/// `speed · range / (speed + v_glob)`, and due nodes were just patched).
/// Candidates are then filtered by true distance, so the inflated radius
/// affects cost only, never results.
#[allow(clippy::too_many_arguments)]
fn kin_requery(
    i: u32,
    now: SimTime,
    cols: &MotionCols,
    v_glob: f64,
    range: f64,
    grid: &SpatialGrid,
    neighbors: &[Vec<u32>],
    query: &mut Vec<u32>,
    still: &mut Vec<u32>,
) -> KinRequery {
    let idx = i as usize;
    let seg_i = cols.segment(idx);
    let center = seg_i.position_at(now);
    let r2 = range * range;
    let shell2 = (2.0 * range) * (2.0 * range);

    query.clear();
    grid.query_within(center, 3.0 * range, Some(i), query);

    let mut rq = KinRequery {
        node: i,
        deadline: SimTime::MAX,
        downs: Vec::new(),
        ups: Vec::new(),
    };
    still.clear();

    if seg_i.is_parked() {
        // Parked node: no deadline of its own — any flip of its pairs has a
        // moving endpoint whose own deadline covers it, and a later segment
        // change routes through `on_motion_change`. Its in-range set still
        // needs refreshing: it typically just *became* parked.
        for &j in query.iter() {
            let pj = cols.position_at(j as usize, now);
            if pj.distance_sq(center) <= r2 {
                still.push(j);
                if neighbors[idx].binary_search(&j).is_err() {
                    rq.ups.push(pair_key(NodeId(i), NodeId(j)));
                }
            }
        }
    } else {
        // Entrant cap: anything beyond the 2·range shell is at margin
        // > range, and no pair at `i` closes faster than `speed + v_glob`
        // (this segment's own speed is valid until `until`, where
        // `on_motion_change` resets the deadline anyway; everyone else is
        // bounded by the global maximum).
        let closing = seg_i.speed() + v_glob;
        rq.deadline = now.saturating_add(floor_ms(range / closing));
        for &j in query.iter() {
            let seg_j = cols.segment(j as usize);
            let pj = seg_j.position_at(now);
            let d2 = pj.distance_sq(center);
            if d2 > shell2 {
                continue; // covered by the entrant cap
            }
            if d2 <= r2 {
                still.push(j);
                if neighbors[idx].binary_search(&j).is_err() {
                    rq.ups.push(pair_key(NodeId(i), NodeId(j)));
                }
            }
            let bound = pair_flip_bound(now, range, closing, &seg_i, &seg_j, center, pj, d2);
            rq.deadline = rq.deadline.min(bound);
        }
        // Livelock guard: the fresh deadline is strictly in the future.
        rq.deadline = rq
            .deadline
            .max(now.saturating_add(SimDuration::from_millis(1)));
    }
    still.sort_unstable();
    for &j in &neighbors[idx] {
        if still.binary_search(&j).is_err() {
            rq.downs.push(pair_key(NodeId(i), NodeId(j)));
        }
    }
    rq
}

/// Earliest time the pair `(i, j)` can flip its in-range status, bounded
/// two ways, each individually conservative (so their max is too):
///
/// * **rate bound** — the distance margin `|d − range|` is consumed at most
///   at `closing` m/s, so no flip before `now + margin / closing`. Valid
///   across segment changes: speeds are statically bounded, and a change to
///   `i`'s *own* segment resets its deadline through `on_motion_change`.
/// * **analytic window bound** — while both current segments are live
///   (until `w = min(until_i, until_j)`) relative motion is exactly linear,
///   so `|Δp + Δv·τ| = range` is a quadratic in τ. If it provably has no
///   root in the window (guard-banded by [`GUARD`]), nothing flips before
///   `w`; if its earliest root is `τ₁`, nothing flips before `now + τ₁`
///   (minus [`ROOT_SAFETY`], floored to the millisecond grid).
#[allow(clippy::too_many_arguments)]
fn pair_flip_bound(
    now: SimTime,
    range: f64,
    closing: f64,
    seg_i: &Segment,
    seg_j: &Segment,
    pi: Point,
    pj: Point,
    d2: f64,
) -> SimTime {
    let r2 = range * range;
    let margin = (d2.sqrt() - range).abs();
    let rate = now.saturating_add(floor_ms(margin / closing));

    let w = seg_i.until.min(seg_j.until);
    if w <= now {
        return rate;
    }
    // Relative state at `now`: d²(τ) = a·τ² + b·τ + d², τ seconds from now.
    let dpx = pj.x - pi.x;
    let dpy = pj.y - pi.y;
    let dvx = seg_j.velocity.x - seg_i.velocity.x;
    let dvy = seg_j.velocity.y - seg_i.velocity.y;
    let a = dvx * dvx + dvy * dvy;
    let b = 2.0 * (dpx * dvx + dpy * dvy);
    let tw = w.since(now).as_secs_f64();

    let analytic = if d2 > r2 {
        // Currently out of range: safe for the whole window when the
        // distance minimum over it clears the boundary.
        let tstar = if a > 0.0 {
            (-b / (2.0 * a)).clamp(0.0, tw)
        } else {
            0.0
        };
        let dmin2 = d2 + (b + a * tstar) * tstar;
        let safe = range + GUARD;
        if dmin2 > safe * safe {
            w
        } else {
            let disc = b * b - 4.0 * a * (d2 - r2);
            if a > 0.0 && disc >= 0.0 {
                let root = (-b - disc.sqrt()) / (2.0 * a);
                if root > tw + ROOT_SAFETY {
                    w
                } else {
                    now.saturating_add(floor_ms((root - ROOT_SAFETY).max(0.0)))
                }
            } else {
                // Inside the guard band with degenerate geometry: keep only
                // the rate bound.
                return rate;
            }
        }
    } else {
        // Currently in range: d² is convex in τ, so its window maximum sits
        // at an endpoint.
        let dend2 = d2 + (b + a * tw) * tw;
        let safe = range - GUARD;
        if safe > 0.0 && d2.max(dend2) < safe * safe {
            w
        } else if a > 0.0 {
            // Exit root exists (disc ≥ b² since d² ≤ range²).
            let disc = b * b - 4.0 * a * (d2 - r2);
            let root = (-b + disc.max(0.0).sqrt()) / (2.0 * a);
            if root > tw + ROOT_SAFETY {
                w
            } else {
                now.saturating_add(floor_ms((root - ROOT_SAFETY).max(0.0)))
            }
        } else if b > 0.0 {
            // Linear recession: exits where b·τ = range² − d².
            let root = (r2 - d2) / b;
            if root > tw + ROOT_SAFETY {
                w
            } else {
                now.saturating_add(floor_ms((root - ROOT_SAFETY).max(0.0)))
            }
        } else {
            // Distance non-increasing over the window: cannot exit.
            w
        }
    };
    rate.max(analytic)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(backend: DetectorBackend) -> ContactDetector {
        ContactDetector::new(backend, RadioInterface::paper_80211b())
    }

    #[test]
    fn detects_up_and_down() {
        let mut d = detector(DetectorBackend::Grid);
        // Two nodes approach, meet, separate.
        let apart = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let close = vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)];

        assert!(d.update(&apart).is_empty());
        let ev = d.update(&close);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 1);
        assert!(d.update(&close).is_empty(), "no repeat events while stable");
        let ev = d.update(&apart);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 0);
    }

    #[test]
    fn exact_range_is_connected() {
        let mut d = detector(DetectorBackend::Naive);
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.0, 0.0)]);
        assert_eq!(ev.len(), 1, "distance == range counts as in range");
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.001, 0.0)]);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn backends_agree_on_random_walk() {
        let mut naive = detector(DetectorBackend::Naive);
        let mut grid = detector(DetectorBackend::Grid);
        // Deterministic pseudo-random positions for 30 nodes over 50 ticks.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos: Vec<Point> = (0..30)
            .map(|_| Point::new(next() * 300.0, next() * 300.0))
            .collect();
        for _ in 0..50 {
            for p in &mut pos {
                p.x += (next() - 0.5) * 20.0;
                p.y += (next() - 0.5) * 20.0;
            }
            let en = naive.update(&pos);
            let eg = grid.update(&pos);
            assert_eq!(en, eg);
        }
    }

    #[test]
    fn downs_emitted_before_ups() {
        let mut d = detector(DetectorBackend::Grid);
        // Node 1 near node 0, node 2 far.
        d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(500.0, 0.0),
        ]);
        // Node 1 leaves, node 2 arrives, same tick.
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(200.0, 0.0),
            Point::new(15.0, 0.0),
        ]);
        assert_eq!(
            ev,
            vec![
                LinkEvent::Down(NodeId(0), NodeId(1)),
                LinkEvent::Up(NodeId(0), NodeId(2)),
            ]
        );
    }

    /// Deterministic LCG in [0, 1).
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 33) as f64 / (1u64 << 31) as f64
    }

    /// Random-walk equivalence harness: an incrementally updated detector
    /// must emit exactly the reference (full-rescan) event stream, tick by
    /// tick, for any mix of moving and parked nodes.
    fn random_walk_equivalence(seed: u64, n: usize, ticks: usize, move_prob: f64) {
        let mut reference = detector(DetectorBackend::Grid);
        let mut incremental = detector(DetectorBackend::Grid);
        let mut state = seed;
        let mut pos: Vec<Point> = (0..n)
            .map(|_| Point::new(lcg(&mut state) * 400.0, lcg(&mut state) * 400.0))
            .collect();
        // Prime both on the initial layout.
        let er = reference.update(&pos);
        let ei = incremental.update_incremental(&pos, &[]);
        assert_eq!(er, ei, "priming events differ");
        for tick in 0..ticks {
            let mut moved = Vec::new();
            for (i, p) in pos.iter_mut().enumerate() {
                if lcg(&mut state) < move_prob {
                    let old = *p;
                    p.x += (lcg(&mut state) - 0.5) * 25.0;
                    p.y += (lcg(&mut state) - 0.5) * 25.0;
                    moved.push(MovedNode {
                        index: i as u32,
                        displacement: old.distance(*p),
                    });
                }
            }
            let er = reference.update(&pos);
            let ei = incremental.update_incremental(&pos, &moved);
            assert_eq!(er, ei, "tick {tick}: event streams diverged");
            assert_eq!(
                reference.active_count(),
                incremental.active_count(),
                "tick {tick}: active sets diverged"
            );
        }
    }

    #[test]
    fn incremental_matches_reference_all_moving() {
        random_walk_equivalence(1, 40, 60, 1.0);
    }

    /// Sharded re-query must emit exactly the serial incremental stream —
    /// and the full-rescan reference stream — at every pool size, on the
    /// same random walks as the serial harness.
    #[test]
    fn sharded_matches_serial_incremental_at_every_pool_size() {
        for &threads in &[1usize, 2, 4] {
            let pool = rayon::ThreadPool::new(threads);
            let mut reference = detector(DetectorBackend::Grid);
            let mut serial = detector(DetectorBackend::Grid);
            let mut sharded = detector(DetectorBackend::Grid);
            let mut state = 7u64;
            let mut pos: Vec<Point> = (0..40)
                .map(|_| Point::new(lcg(&mut state) * 400.0, lcg(&mut state) * 400.0))
                .collect();
            let shards = ShardMap::build(&pos, reference.range(), 8);
            let er = reference.update(&pos);
            let es = serial.update_incremental(&pos, &[]);
            let eh = sharded.update_incremental_sharded(&pos, &[], &pool, &shards);
            assert_eq!(er, es);
            assert_eq!(er, eh);
            for tick in 0..60 {
                let mut moved = Vec::new();
                for (i, p) in pos.iter_mut().enumerate() {
                    if lcg(&mut state) < 0.6 {
                        let old = *p;
                        p.x += (lcg(&mut state) - 0.5) * 25.0;
                        p.y += (lcg(&mut state) - 0.5) * 25.0;
                        moved.push(MovedNode {
                            index: i as u32,
                            displacement: old.distance(*p),
                        });
                    }
                }
                let er = reference.update(&pos);
                let es = serial.update_incremental(&pos, &moved);
                let eh = sharded.update_incremental_sharded(&pos, &moved, &pool, &shards);
                assert_eq!(er, es, "threads {threads} tick {tick}: serial diverged");
                assert_eq!(er, eh, "threads {threads} tick {tick}: sharded diverged");
                assert_eq!(serial.active_count(), sharded.active_count());
            }
        }
    }

    #[test]
    fn incremental_matches_reference_sparse_movement() {
        // Most nodes parked, as in the paper scenario; exercises the slack
        // skip over many consecutive small displacements.
        random_walk_equivalence(2, 40, 120, 0.15);
    }

    #[test]
    fn incremental_matches_reference_dense_cluster() {
        random_walk_equivalence(3, 25, 60, 0.5);
    }

    #[test]
    fn incremental_with_no_movement_is_silent() {
        let mut d = detector(DetectorBackend::Grid);
        let pos = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let ev = d.update_incremental(&pos, &[]);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        for _ in 0..5 {
            assert!(d.update_incremental(&pos, &[]).is_empty());
        }
        assert_eq!(d.active_count(), 1);
    }

    #[test]
    fn ticked_update_invalidates_incremental_state() {
        let mut d = detector(DetectorBackend::Grid);
        let close = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let apart = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)];
        assert_eq!(d.update_incremental(&close, &[]).len(), 1);
        // A ticked update in between must not confuse a later incremental
        // call: it re-primes from the full scan.
        assert_eq!(d.update(&apart).len(), 1); // down
        let ev = d.update_incremental(&close, &[]);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn reset_forgets_links() {
        let mut d = detector(DetectorBackend::Grid);
        d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(d.active_count(), 1);
        d.reset();
        assert_eq!(d.active_count(), 0);
        // After reset the same positions re-emit Up.
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn three_node_clique() {
        let mut d = detector(DetectorBackend::Grid);
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ]);
        assert_eq!(ev.len(), 3);
        assert_eq!(d.active_count(), 3);
    }

    // --- Kinematic (slack-deadline heap) layer ---

    /// Test world of per-node linear segments, randomly re-planned at tick
    /// boundaries — the same column layout the engine keeps.
    struct KinWorld {
        origin: Vec<Point>,
        velocity: Vec<Point>,
        start: Vec<SimTime>,
        until: Vec<SimTime>,
    }

    const KIN_SPAN: f64 = 300.0;
    const KIN_VMAX: f64 = 12.0;

    impl KinWorld {
        fn new(seed: &mut u64, n: usize) -> KinWorld {
            KinWorld {
                origin: (0..n)
                    .map(|_| Point::new(lcg(seed) * KIN_SPAN, lcg(seed) * KIN_SPAN))
                    .collect(),
                velocity: vec![Point::new(0.0, 0.0); n],
                start: vec![SimTime::ZERO; n],
                until: vec![SimTime::ZERO; n],
            }
        }

        fn cols(&self) -> MotionCols<'_> {
            MotionCols {
                origin: &self.origin,
                velocity: &self.velocity,
                start: &self.start,
                until: &self.until,
            }
        }

        fn position(&self, i: usize, now: SimTime) -> Point {
            Segment {
                origin: self.origin[i],
                velocity: self.velocity[i],
                start: self.start[i],
                until: self.until[i],
            }
            .position_at(now)
        }

        fn materialize(&self, now: SimTime) -> Vec<Point> {
            (0..self.origin.len())
                .map(|i| self.position(i, now))
                .collect()
        }

        /// Replace every expired segment with a fresh random one anchored at
        /// the node's current (clamped) position; returns the changed nodes.
        fn replan(&mut self, seed: &mut u64, now: SimTime) -> Vec<u32> {
            let mut changed = Vec::new();
            for i in 0..self.origin.len() {
                if self.until[i] > now {
                    continue;
                }
                let p = self.position(i, now);
                let dur = SimDuration::from_millis(1_000 + (lcg(seed) * 7_000.0) as u64);
                let vel = if lcg(seed) < 0.3 {
                    Point::new(0.0, 0.0) // pause
                } else {
                    let q = Point::new(lcg(seed) * KIN_SPAN, lcg(seed) * KIN_SPAN);
                    let len = p.distance(q);
                    if len <= 0.0 {
                        Point::new(0.0, 0.0)
                    } else {
                        let speed = (0.2 + 0.8 * lcg(seed)) * KIN_VMAX;
                        Point::new((q.x - p.x) * speed / len, (q.y - p.y) * speed / len)
                    }
                };
                self.origin[i] = p;
                self.velocity[i] = vel;
                self.start[i] = now;
                self.until[i] = now + dur;
                changed.push(i as u32);
            }
            changed
        }
    }

    /// The kinematic path must reproduce the full-rescan reference stream
    /// exactly — including emitting *nothing* at every tick where no slack
    /// deadline is due, which is the skip the event engine relies on.
    #[test]
    fn kinematic_matches_reference_on_segment_walks() {
        let mut seed = 11u64;
        let mut w = KinWorld::new(&mut seed, 40);
        let mut reference = detector(DetectorBackend::Grid);
        let mut kin = detector(DetectorBackend::Grid);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        w.replan(&mut seed, now);
        let er = reference.update(&w.materialize(now));
        let ek = kin.update_kinematic(now, &w.cols(), KIN_VMAX);
        assert_eq!(er, ek, "priming events differ");
        for tick in 0..400 {
            now += dt;
            for &i in &w.replan(&mut seed, now) {
                kin.on_motion_change(i, now);
            }
            let er = reference.update(&w.materialize(now));
            let ek = if kin.next_deadline() <= now {
                kin.update_kinematic(now, &w.cols(), KIN_VMAX)
            } else {
                Vec::new()
            };
            assert_eq!(er, ek, "tick {tick}: event streams diverged");
            assert_eq!(
                reference.active_count(),
                kin.active_count(),
                "tick {tick}: active sets diverged"
            );
        }
    }

    /// In a sparse world with long segments, the deadline heap must let
    /// whole ticks pass without any contact work — the skip the event
    /// engine turns into wall-clock wins — while still matching the
    /// reference stream.
    #[test]
    fn kinematic_deadlines_skip_ticks_in_sparse_world() {
        let mut seed = 31u64;
        let n = 4;
        let mut w = KinWorld::new(&mut seed, n);
        let mut reference = detector(DetectorBackend::Grid);
        let mut kin = detector(DetectorBackend::Grid);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        // Long segments: replans (which force wakes) are rare.
        let replan_long = |w: &mut KinWorld, seed: &mut u64, now: SimTime| -> Vec<u32> {
            let mut changed = Vec::new();
            for i in 0..n {
                if w.until[i] > now {
                    continue;
                }
                let p = w.position(i, now);
                let q = Point::new(lcg(seed) * KIN_SPAN, lcg(seed) * KIN_SPAN);
                let len = p.distance(q);
                let speed = (0.2 + 0.8 * lcg(seed)) * KIN_VMAX;
                w.origin[i] = p;
                w.velocity[i] = if len <= 0.0 {
                    Point::new(0.0, 0.0)
                } else {
                    Point::new((q.x - p.x) * speed / len, (q.y - p.y) * speed / len)
                };
                w.start[i] = now;
                w.until[i] = now + SimDuration::from_millis(15_000 + (lcg(seed) * 25_000.0) as u64);
                changed.push(i as u32);
            }
            changed
        };
        replan_long(&mut w, &mut seed, now);
        let er = reference.update(&w.materialize(now));
        let ek = kin.update_kinematic(now, &w.cols(), KIN_VMAX);
        assert_eq!(er, ek);
        let mut skipped = 0u32;
        for tick in 0..400 {
            now += dt;
            for &i in &replan_long(&mut w, &mut seed, now) {
                kin.on_motion_change(i, now);
            }
            let er = reference.update(&w.materialize(now));
            let ek = if kin.next_deadline() <= now {
                kin.update_kinematic(now, &w.cols(), KIN_VMAX)
            } else {
                skipped += 1;
                Vec::new()
            };
            assert_eq!(er, ek, "tick {tick}: event streams diverged");
        }
        assert!(skipped > 0, "deadlines never skipped a tick — vacuous test");
    }

    /// Sharded kinematic updates must match the serial ones (and the
    /// reference) at every pool size.
    #[test]
    fn kinematic_sharded_matches_serial_at_every_pool_size() {
        for &threads in &[1usize, 2, 4] {
            let pool = rayon::ThreadPool::new(threads);
            let mut seed = 23u64;
            let mut w = KinWorld::new(&mut seed, 40);
            let mut reference = detector(DetectorBackend::Grid);
            let mut serial = detector(DetectorBackend::Grid);
            let mut sharded = detector(DetectorBackend::Grid);
            let dt = SimDuration::from_secs(1);
            let mut now = SimTime::ZERO;
            w.replan(&mut seed, now);
            let shards = ShardMap::build(&w.materialize(now), reference.range(), 8);
            let er = reference.update(&w.materialize(now));
            let es = serial.update_kinematic(now, &w.cols(), KIN_VMAX);
            let eh = sharded.update_kinematic_sharded(now, &w.cols(), KIN_VMAX, &pool, &shards);
            assert_eq!(er, es);
            assert_eq!(er, eh);
            for tick in 0..200 {
                now += dt;
                for &i in &w.replan(&mut seed, now) {
                    serial.on_motion_change(i, now);
                    sharded.on_motion_change(i, now);
                }
                let er = reference.update(&w.materialize(now));
                let es = if serial.next_deadline() <= now {
                    serial.update_kinematic(now, &w.cols(), KIN_VMAX)
                } else {
                    Vec::new()
                };
                let eh = if sharded.next_deadline() <= now {
                    sharded.update_kinematic_sharded(now, &w.cols(), KIN_VMAX, &pool, &shards)
                } else {
                    Vec::new()
                };
                assert_eq!(er, es, "threads {threads} tick {tick}: serial diverged");
                assert_eq!(er, eh, "threads {threads} tick {tick}: sharded diverged");
                assert_eq!(serial.next_deadline(), sharded.next_deadline());
                assert_eq!(serial.active_count(), sharded.active_count());
            }
        }
    }

    /// An all-parked world settles to an empty heap: no wakes, ever.
    #[test]
    fn kinematic_parked_world_needs_no_wakes() {
        let origin = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(200.0, 0.0),
        ];
        let velocity = vec![Point::new(0.0, 0.0); 3];
        let start = vec![SimTime::ZERO; 3];
        let until = vec![SimTime::MAX; 3];
        let cols = MotionCols {
            origin: &origin,
            velocity: &velocity,
            start: &start,
            until: &until,
        };
        let mut kin = detector(DetectorBackend::Grid);
        let ev = kin.update_kinematic(SimTime::ZERO, &cols, 0.0);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        assert_eq!(kin.next_deadline(), SimTime::MAX);
    }

    /// The quadratic flip bound must never land after the true crossing.
    #[test]
    fn flip_bound_is_conservative_for_head_on_approach() {
        let now = SimTime::from_millis(10_000);
        let range = 30.0;
        // 100 m apart, closing head-on at 10 m/s combined: d = range at
        // τ = 7 s exactly, i.e. t = 17 s.
        let seg_i = Segment {
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(5.0, 0.0),
            start: now,
            until: now + SimDuration::from_secs(60),
        };
        let seg_j = Segment {
            origin: Point::new(100.0, 0.0),
            velocity: Point::new(-5.0, 0.0),
            start: now,
            until: now + SimDuration::from_secs(60),
        };
        let d2 = 100.0f64 * 100.0;
        let bound = pair_flip_bound(
            now,
            range,
            10.0,
            &seg_i,
            &seg_j,
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            d2,
        );
        assert!(bound <= SimTime::from_millis(17_000), "late bound");
        // …and the analytic solve should beat the trivial rate bound by a
        // hair at most (here they coincide: margin 70 m at 10 m/s).
        assert!(bound >= SimTime::from_millis(16_000), "needlessly early");
    }

    /// A pair receding inside the window gets its deadline extended all the
    /// way to the window edge — the case that pays for the quadratic.
    #[test]
    fn flip_bound_extends_to_window_for_receding_pair() {
        let now = SimTime::ZERO;
        let range = 30.0;
        let w = now + SimDuration::from_secs(40);
        // 35 m apart (out of range, margin 5 m), receding at 4 m/s: the
        // rate bound alone would be 5/16 s, but no crossing can happen
        // before the window closes.
        let seg_i = Segment {
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(-2.0, 0.0),
            start: now,
            until: w,
        };
        let seg_j = Segment {
            origin: Point::new(35.0, 0.0),
            velocity: Point::new(2.0, 0.0),
            start: now,
            until: w,
        };
        let bound = pair_flip_bound(
            now,
            range,
            12.0 + 2.0,
            &seg_i,
            &seg_j,
            Point::new(0.0, 0.0),
            Point::new(35.0, 0.0),
            35.0f64 * 35.0,
        );
        assert_eq!(bound, w);
    }
}

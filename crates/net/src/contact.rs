//! Contact detection: turning node positions into link-up/down events.
//!
//! Each tick the detector computes the set of node pairs within radio range
//! and diffs it against the previous tick's set. Pairs entering the set
//! produce [`LinkEvent::Up`], pairs leaving produce [`LinkEvent::Down`].
//! Events are emitted in deterministic (lexicographic pair) order.

use crate::interface::RadioInterface;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use vdtn_geo::{Point, SpatialGrid};
use vdtn_sim_core::NodeId;

/// Which pair-finding algorithm the detector uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorBackend {
    /// O(n²) scan over all pairs — simple reference implementation.
    Naive,
    /// Uniform spatial hash grid — O(n + pairs) per tick.
    Grid,
}

/// A connectivity change between two nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEvent {
    /// The pair came into radio range.
    Up(NodeId, NodeId),
    /// The pair left radio range.
    Down(NodeId, NodeId),
}

/// Stateful contact detector.
pub struct ContactDetector {
    backend: DetectorBackend,
    range: f64,
    grid: SpatialGrid,
    current: HashSet<(u32, u32)>,
    // Scratch buffers reused across ticks.
    pairs_scratch: Vec<(u32, u32)>,
}

impl ContactDetector {
    /// Create a detector for interfaces with the given uniform range.
    pub fn new(backend: DetectorBackend, interface: RadioInterface) -> Self {
        interface.validate();
        ContactDetector {
            backend,
            range: interface.range,
            grid: SpatialGrid::new(interface.range),
            current: HashSet::new(),
            pairs_scratch: Vec::new(),
        }
    }

    /// Radio range in use.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Currently connected pairs (lexicographic order not guaranteed).
    pub fn active_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.current.iter().map(|&(a, b)| (NodeId(a), NodeId(b)))
    }

    /// Number of active links.
    pub fn active_count(&self) -> usize {
        self.current.len()
    }

    /// Update with this tick's positions; returns link events in
    /// deterministic order (all downs first — freeing nodes for new
    /// contacts — then ups, each lexicographically sorted).
    pub fn update(&mut self, positions: &[Point]) -> Vec<LinkEvent> {
        self.pairs_scratch.clear();
        match self.backend {
            DetectorBackend::Naive => {
                self.grid.rebuild(positions);
                self.grid
                    .pairs_within_naive(self.range, &mut self.pairs_scratch);
            }
            DetectorBackend::Grid => {
                self.grid.rebuild(positions);
                self.grid.pairs_within(self.range, &mut self.pairs_scratch);
            }
        }
        let fresh: HashSet<(u32, u32)> = self.pairs_scratch.iter().copied().collect();

        let mut downs: Vec<(u32, u32)> = self.current.difference(&fresh).copied().collect();
        let mut ups: Vec<(u32, u32)> = fresh.difference(&self.current).copied().collect();
        downs.sort_unstable();
        ups.sort_unstable();

        let mut events = Vec::with_capacity(downs.len() + ups.len());
        events.extend(
            downs
                .into_iter()
                .map(|(a, b)| LinkEvent::Down(NodeId(a), NodeId(b))),
        );
        events.extend(
            ups.into_iter()
                .map(|(a, b)| LinkEvent::Up(NodeId(a), NodeId(b))),
        );
        self.current = fresh;
        events
    }

    /// Forget all link state (e.g. between independent runs).
    pub fn reset(&mut self) {
        self.current.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(backend: DetectorBackend) -> ContactDetector {
        ContactDetector::new(backend, RadioInterface::paper_80211b())
    }

    #[test]
    fn detects_up_and_down() {
        let mut d = detector(DetectorBackend::Grid);
        // Two nodes approach, meet, separate.
        let apart = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let close = vec![Point::new(0.0, 0.0), Point::new(20.0, 0.0)];

        assert!(d.update(&apart).is_empty());
        let ev = d.update(&close);
        assert_eq!(ev, vec![LinkEvent::Up(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 1);
        assert!(d.update(&close).is_empty(), "no repeat events while stable");
        let ev = d.update(&apart);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
        assert_eq!(d.active_count(), 0);
    }

    #[test]
    fn exact_range_is_connected() {
        let mut d = detector(DetectorBackend::Naive);
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.0, 0.0)]);
        assert_eq!(ev.len(), 1, "distance == range counts as in range");
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(30.001, 0.0)]);
        assert_eq!(ev, vec![LinkEvent::Down(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn backends_agree_on_random_walk() {
        let mut naive = detector(DetectorBackend::Naive);
        let mut grid = detector(DetectorBackend::Grid);
        // Deterministic pseudo-random positions for 30 nodes over 50 ticks.
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pos: Vec<Point> = (0..30)
            .map(|_| Point::new(next() * 300.0, next() * 300.0))
            .collect();
        for _ in 0..50 {
            for p in &mut pos {
                p.x += (next() - 0.5) * 20.0;
                p.y += (next() - 0.5) * 20.0;
            }
            let en = naive.update(&pos);
            let eg = grid.update(&pos);
            assert_eq!(en, eg);
        }
    }

    #[test]
    fn downs_emitted_before_ups() {
        let mut d = detector(DetectorBackend::Grid);
        // Node 1 near node 0, node 2 far.
        d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(500.0, 0.0),
        ]);
        // Node 1 leaves, node 2 arrives, same tick.
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(200.0, 0.0),
            Point::new(15.0, 0.0),
        ]);
        assert_eq!(
            ev,
            vec![
                LinkEvent::Down(NodeId(0), NodeId(1)),
                LinkEvent::Up(NodeId(0), NodeId(2)),
            ]
        );
    }

    #[test]
    fn reset_forgets_links() {
        let mut d = detector(DetectorBackend::Grid);
        d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(d.active_count(), 1);
        d.reset();
        assert_eq!(d.active_count(), 0);
        // After reset the same positions re-emit Up.
        let ev = d.update(&[Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn three_node_clique() {
        let mut d = detector(DetectorBackend::Grid);
        let ev = d.update(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 8.0),
        ]);
        assert_eq!(ev.len(), 3);
        assert_eq!(d.active_count(), 3);
    }
}

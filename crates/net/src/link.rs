//! Connections and bandwidth-limited transfers.
//!
//! A [`LinkTable`] tracks every active connection (pair of nodes in range)
//! and at most one in-flight [`Transfer`] per connection. Nodes are
//! half-duplex: a node engaged in any transfer (sending *or* receiving)
//! cannot start another until it completes — the same contention model the
//! ONE simulator applies, and the reason scheduling policies matter at all
//! (only the first few messages in the schedule make it through a short
//! contact).
//!
//! # Event-time transfers
//!
//! A transfer is a static record `{msg, from, to, rate, started}`; nothing
//! about it changes while it drains. Its completion instant is the pure
//! function [`Transfer::completion_time`] = `started + ceil(size/rate)`
//! (rounded **up** to the millisecond grid so a transfer never completes
//! before all bytes are on the wire), and the bytes moved by any partial
//! drain are settled analytically from elapsed time
//! ([`Transfer::bytes_transferred`]). This is what lets the engine schedule
//! one completion event per transfer instead of draining byte counters
//! every tick: [`LinkTable::complete_due`] pops every transfer whose
//! completion instant has passed, and [`LinkTable::tick`] survives only as
//! the per-tick poll of the `Ticked` reference engine (it is the same
//! function).
//!
//! Completions due at the same instant resolve in **ordered-pair-key
//! order**: connections live in a `BTreeMap` keyed by the ordered node
//! pair, and both drain entry points walk that map in key order — so
//! simultaneous completions, and the whole routing round, are
//! deterministic regardless of start order.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use vdtn_bundle::Message;
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// A message copy in flight between two connected nodes.
///
/// The record is immutable while the transfer drains: progress is derived
/// from elapsed time, never stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// The copy being transmitted (snapshot taken at transfer start).
    pub msg: Message,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Link rate in bytes per second (fixed for the transfer's lifetime).
    pub rate: f64,
    /// When the transfer started.
    pub started: SimTime,
}

impl Transfer {
    /// Time needed to drain all bytes, rounded **up** to the millisecond
    /// grid (a transfer never completes before every byte is on the wire).
    pub fn drain_duration(&self) -> SimDuration {
        SimDuration::from_millis((self.msg.size as f64 * 1000.0 / self.rate).ceil() as u64)
    }

    /// The exact instant the last byte lands: `started + size/rate`.
    pub fn completion_time(&self) -> SimTime {
        self.started + self.drain_duration()
    }

    /// Bytes on the wire by `now`, settled analytically from elapsed time:
    /// `min(size, rate × elapsed)`. Used to account partial progress when a
    /// contact breaks mid-transfer.
    pub fn bytes_transferred(&self, now: SimTime) -> u64 {
        if now >= self.completion_time() {
            return self.msg.size;
        }
        let elapsed = now.since(self.started).as_secs_f64();
        self.msg.size.min((self.rate * elapsed).floor() as u64)
    }
}

/// Result of completing or tearing down a transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferOutcome {
    /// Transfer delivered all bytes.
    Completed(Transfer),
    /// Contact broke (or the run ended) before all bytes were delivered.
    Aborted {
        /// The interrupted transfer record.
        transfer: Transfer,
        /// Bytes that made it onto the wire before the abort (analytic,
        /// see [`Transfer::bytes_transferred`]).
        bytes_transferred: u64,
    },
}

/// Typed error for invalid [`LinkTable`] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// [`LinkTable::link_up`] was given a non-finite or non-positive rate,
    /// which would produce NaN or infinite completion times.
    InvalidRate {
        /// The offending rate, in bytes per second.
        rate: f64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::InvalidRate { rate } => {
                write!(f, "link rate must be finite and positive, got {rate}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// One active link.
#[derive(Debug, Clone)]
struct Connection {
    up_since: SimTime,
    rate: f64,
    transfer: Option<Transfer>,
}

/// All active connections plus node busy-state.
#[derive(Debug, Default)]
pub struct LinkTable {
    conns: BTreeMap<(u32, u32), Connection>,
    busy: HashSet<u32>,
}

fn key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl LinkTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new link. Returns [`LinkError::InvalidRate`] for a
    /// non-finite or non-positive rate (which would poison every completion
    /// time computed from it). Panics if the pair is already connected (the
    /// contact detector never double-reports).
    pub fn link_up(
        &mut self,
        a: NodeId,
        b: NodeId,
        now: SimTime,
        rate: f64,
    ) -> Result<(), LinkError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(LinkError::InvalidRate { rate });
        }
        let prev = self.conns.insert(
            key(a, b),
            Connection {
                up_since: now,
                rate,
                transfer: None,
            },
        );
        assert!(prev.is_none(), "duplicate link_up for {a}-{b}");
        Ok(())
    }

    /// Tear down a link, returning the aborted transfer — with its partial
    /// bytes settled analytically at `now` — if one was active.
    pub fn link_down(&mut self, a: NodeId, b: NodeId, now: SimTime) -> Option<TransferOutcome> {
        let conn = self.conns.remove(&key(a, b))?;
        conn.transfer.map(|t| self.abort_outcome(t, now))
    }

    /// Abort the in-flight transfer on a connection **without** tearing the
    /// link down (the connection stays up and idle). Returns `None` if the
    /// pair is not connected or has no active transfer.
    ///
    /// The engine currently aborts only through [`LinkTable::link_down`]
    /// and [`LinkTable::clear`]; this entry point exists for policies that
    /// preempt a transfer while keeping the contact (callers owning
    /// per-contact offer state must invalidate it themselves).
    pub fn abort(&mut self, a: NodeId, b: NodeId, now: SimTime) -> Option<TransferOutcome> {
        let conn = self.conns.get_mut(&key(a, b))?;
        let t = conn.transfer.take()?;
        Some(self.abort_outcome(t, now))
    }

    /// Free the endpoints and settle partial bytes for an aborted transfer.
    fn abort_outcome(&mut self, t: Transfer, now: SimTime) -> TransferOutcome {
        self.busy.remove(&t.from.0);
        self.busy.remove(&t.to.0);
        let bytes_transferred = t.bytes_transferred(now);
        TransferOutcome::Aborted {
            transfer: t,
            bytes_transferred,
        }
    }

    /// True if the pair is currently connected.
    pub fn is_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.conns.contains_key(&key(a, b))
    }

    /// True if `node` is engaged in any transfer.
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.contains(&node.0)
    }

    /// Duration the pair has been connected, if connected.
    pub fn contact_age(&self, a: NodeId, b: NodeId, now: SimTime) -> Option<SimDuration> {
        self.conns.get(&key(a, b)).map(|c| now.since(c.up_since))
    }

    /// Number of active connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Connections with no active transfer whose endpoints are both free,
    /// in deterministic (ordered-pair) order. These are the opportunities
    /// the routing round iterates.
    pub fn idle_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.conns
            .iter()
            .filter(|(k, c)| {
                c.transfer.is_none() && !self.busy.contains(&k.0) && !self.busy.contains(&k.1)
            })
            .map(|(&(a, b), _)| (NodeId(a), NodeId(b)))
            .collect()
    }

    /// Begin transmitting `msg` from `from` to `to`; returns the exact
    /// instant the transfer will complete (for completion-event
    /// scheduling).
    ///
    /// Preconditions (checked): the pair is connected, the connection is
    /// idle, and neither node is busy. The engine upholds these by only
    /// starting transfers on [`LinkTable::idle_pairs`].
    pub fn start_transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Message,
        now: SimTime,
    ) -> SimTime {
        assert!(!self.is_busy(from), "{from} already transferring");
        assert!(!self.is_busy(to), "{to} already transferring");
        let conn = self
            .conns
            .get_mut(&key(from, to))
            .unwrap_or_else(|| panic!("no connection {from}-{to}"));
        assert!(conn.transfer.is_none(), "connection {from}-{to} busy");
        let t = Transfer {
            msg,
            from,
            to,
            rate: conn.rate,
            started: now,
        };
        let completes = t.completion_time();
        conn.transfer = Some(t);
        self.busy.insert(from.0);
        self.busy.insert(to.0);
        completes
    }

    /// Pop every transfer whose completion instant has passed (`≤ now`), in
    /// deterministic ordered-pair-key order — the tie-break rule for
    /// completions due at the same instant. Zero-byte edge cases complete
    /// at the first poll after they start.
    pub fn complete_due(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        let mut done = Vec::new();
        for (_, conn) in self.conns.iter_mut() {
            let finished = match &conn.transfer {
                Some(t) => t.completion_time() <= now,
                None => false,
            };
            if finished {
                let t = conn.transfer.take().expect("checked above");
                self.busy.remove(&t.from.0);
                self.busy.remove(&t.to.0);
                done.push(TransferOutcome::Completed(t));
            }
        }
        done
    }

    /// Per-tick completion poll, kept for the `EngineMode::Ticked`
    /// reference engine: identical to [`LinkTable::complete_due`] (the
    /// event-driven engine calls that at scheduled completion instants
    /// instead of polling).
    pub fn tick(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        self.complete_due(now)
    }

    /// Drop every connection (end of run), returning aborted transfers with
    /// their partial bytes settled at `now`.
    pub fn clear(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        let mut aborted = Vec::new();
        for (_, conn) in std::mem::take(&mut self.conns) {
            if let Some(t) = conn.transfer {
                let bytes_transferred = t.bytes_transferred(now);
                aborted.push(TransferOutcome::Aborted {
                    transfer: t,
                    bytes_transferred,
                });
            }
        }
        self.busy.clear();
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::MessageId;

    fn msg(id: u64, size: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(60),
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn transfer_completes_at_size_over_rate() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_500_000), t(0.0));
        // 1.5 MB at 750 kB/s = exactly 2 s.
        assert_eq!(completes, t(2.0));
        assert!(lt.is_busy(NodeId(0)) && lt.is_busy(NodeId(1)));
        assert!(lt.complete_due(t(1.0)).is_empty());
        assert!(lt.complete_due(t(1.999)).is_empty());
        let done = lt.complete_due(t(2.0));
        assert_eq!(done.len(), 1);
        match &done[0] {
            TransferOutcome::Completed(tr) => {
                assert_eq!(tr.msg.id, MessageId(1));
                assert_eq!(tr.from, NodeId(0));
                assert_eq!(tr.to, NodeId(1));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        // Connection remains up and idle after completion.
        assert!(lt.is_connected(NodeId(0), NodeId(1)));
        assert_eq!(lt.idle_pairs(), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn completion_time_rounds_up_to_millis() {
        let mut lt = LinkTable::new();
        // 1000 bytes at 300 B/s = 3.333… s → must round UP to 3334 ms.
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 300.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_000), t(0.0));
        assert_eq!(completes, SimTime::from_millis(3_334));
        assert!(lt.complete_due(SimTime::from_millis(3_333)).is_empty());
        assert_eq!(lt.complete_due(SimTime::from_millis(3_334)).len(), 1);
    }

    #[test]
    fn tick_is_the_same_poll_as_complete_due() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        assert!(lt.tick(t(1.0)).is_empty());
        let done = lt.tick(t(2.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(1)));
    }

    #[test]
    fn link_down_aborts_with_partial_bytes() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        lt.start_transfer(NodeId(1), NodeId(0), msg(7, 2_000_000), t(0.0));
        let out = lt.link_down(NodeId(0), NodeId(1), t(1.0)).unwrap();
        match out {
            TransferOutcome::Aborted {
                transfer,
                bytes_transferred,
            } => {
                assert_eq!(transfer.msg.id, MessageId(7));
                // 1 s at 750 kB/s of a 2 MB message.
                assert_eq!(bytes_transferred, 750_000);
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        assert!(!lt.is_connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn partial_bytes_cap_at_message_size() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 3_000), t(0.0));
        // Same-tick race: the link drops at an instant the completion is
        // also due. Phase order (downs before completion drain) means the
        // abort wins — but all bytes were on the wire, so accounting must
        // not exceed the size nor lose the progress.
        let out = lt.link_down(NodeId(0), NodeId(1), t(5.0)).unwrap();
        match out {
            TransferOutcome::Aborted {
                bytes_transferred, ..
            } => assert_eq!(bytes_transferred, 3_000),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn abort_keeps_the_link_up() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 10_000), t(0.0));
        let out = lt.abort(NodeId(0), NodeId(1), t(2.0)).unwrap();
        assert!(matches!(
            out,
            TransferOutcome::Aborted {
                bytes_transferred: 2_000,
                ..
            }
        ));
        // Link survives, endpoints are free, and the pair is idle again.
        assert!(lt.is_connected(NodeId(0), NodeId(1)));
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        assert_eq!(lt.idle_pairs(), vec![(NodeId(0), NodeId(1))]);
        // No transfer left to abort.
        assert!(lt.abort(NodeId(0), NodeId(1), t(3.0)).is_none());
    }

    #[test]
    fn simultaneous_completions_resolve_in_pair_key_order() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(6), NodeId(7), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 2_000.0).unwrap();
        // Start in scrambled order; all three complete at exactly t = 2 s.
        lt.start_transfer(NodeId(6), NodeId(7), msg(3, 2_000), t(0.0));
        lt.start_transfer(NodeId(2), NodeId(3), msg(2, 4_000), t(0.0));
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        let done = lt.complete_due(t(2.0));
        let ids: Vec<u64> = done
            .iter()
            .map(|o| match o {
                TransferOutcome::Completed(tr) => tr.msg.id.0,
                other => panic!("expected completion, got {other:?}"),
            })
            .collect();
        // Pair-key order (0,1) < (2,3) < (6,7), not start order 3, 2, 1.
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn link_down_without_transfer_is_quiet() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(2), NodeId(5), t(0.0), 100.0).unwrap();
        assert!(lt.link_down(NodeId(5), NodeId(2), t(1.0)).is_none());
    }

    #[test]
    fn invalid_rates_are_typed_errors() {
        let mut lt = LinkTable::new();
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = lt
                .link_up(NodeId(0), NodeId(1), t(0.0), rate)
                .expect_err("rate must be rejected");
            assert!(matches!(err, LinkError::InvalidRate { .. }));
            let rendered = err.to_string();
            assert!(rendered.contains("rate"), "unhelpful error: {rendered}");
        }
        // Rejected link_up leaves no connection behind.
        assert!(!lt.is_connected(NodeId(0), NodeId(1)));
        assert_eq!(lt.connection_count(), 0);
    }

    #[test]
    fn busy_nodes_not_listed_idle() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 750_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 750_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 10_000_000), t(0.0));
        // 0 and 1 are busy ⇒ only 2-3 is usable.
        assert_eq!(lt.idle_pairs(), vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    #[should_panic(expected = "already transferring")]
    fn cannot_double_book_a_node() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 1000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 5_000), t(0.0));
        lt.start_transfer(NodeId(0), NodeId(2), msg(2, 5_000), t(0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate link_up")]
    fn duplicate_link_up_panics() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0).unwrap();
        lt.link_up(NodeId(1), NodeId(0), t(0.0), 1000.0).unwrap();
    }

    #[test]
    fn pair_key_is_order_independent() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(3), NodeId(1), t(0.0), 1000.0).unwrap();
        assert!(lt.is_connected(NodeId(1), NodeId(3)));
        assert!(lt.is_connected(NodeId(3), NodeId(1)));
        assert_eq!(
            lt.contact_age(NodeId(1), NodeId(3), t(5.0)),
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn multiple_transfers_complete_independently() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 2_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        lt.start_transfer(NodeId(2), NodeId(3), msg(2, 2_000), t(0.0));
        // Faster link finishes first.
        let done = lt.complete_due(t(1.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(2)));
        let done = lt.complete_due(t(2.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(1)));
    }

    #[test]
    fn clear_aborts_everything_with_partial_bytes() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_000_000), t(0.0));
        let aborted = lt.clear(t(10.0));
        assert_eq!(aborted.len(), 1);
        assert!(matches!(
            &aborted[0],
            TransferOutcome::Aborted {
                bytes_transferred: 10_000,
                ..
            }
        ));
        assert_eq!(lt.connection_count(), 0);
        assert!(!lt.is_busy(NodeId(0)));
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 0), t(3.0));
        assert_eq!(completes, t(3.0));
        assert_eq!(lt.complete_due(t(3.0)).len(), 1);
    }
}

//! Connections and bandwidth-limited transfers.
//!
//! A [`LinkTable`] tracks every active connection (pair of nodes in range)
//! and at most one in-flight [`Transfer`] per connection. Nodes are
//! half-duplex: a node engaged in any transfer (sending *or* receiving)
//! cannot start another until it completes — the same contention model the
//! ONE simulator applies, and the reason scheduling policies matter at all
//! (only the first few messages in the schedule make it through a short
//! contact).
//!
//! # Event-time transfers
//!
//! A transfer is a static record `{msg, from, to, rate, started}`; nothing
//! about it changes while it drains. Its completion instant is the pure
//! function [`Transfer::completion_time`] = `started + ceil(size/rate)`
//! (rounded **up** to the millisecond grid so a transfer never completes
//! before all bytes are on the wire), and the bytes moved by any partial
//! drain are settled analytically from elapsed time
//! ([`Transfer::bytes_transferred`]). This is what lets the engine schedule
//! one completion event per transfer instead of draining byte counters
//! every tick: [`LinkTable::complete_due`] pops every transfer whose
//! completion instant has passed, and [`LinkTable::tick`] survives only as
//! the per-tick poll of the `Ticked` reference engine (it is the same
//! function).
//!
//! Completions due at the same instant resolve in **ordered-pair-key
//! order**: connections live in per-node sorted adjacency lists, and both
//! drain entry points walk node ids ascending, then each node's
//! higher-id peers ascending — exactly ordered-pair-key order — so
//! simultaneous completions, and the whole routing round, are
//! deterministic regardless of start order.
//!
//! # Slot handles
//!
//! Connection records live in a slab indexed by dense `u32` **slots**;
//! [`LinkTable::link_up`] returns the slot, which stays stable until the
//! matching [`LinkTable::link_down`] frees it for reuse. Callers keeping
//! per-contact state (the engine's `ContactOffers`) index a flat
//! slot-addressed vector with it instead of hashing the node pair on every
//! touch, and the vector's length stays bounded by the *peak concurrent*
//! connection count rather than the cumulative contact count.

use std::fmt;
use vdtn_bundle::Message;
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// A message copy in flight between two connected nodes.
///
/// The record is immutable while the transfer drains: progress is derived
/// from elapsed time, never stored.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// The copy being transmitted (snapshot taken at transfer start).
    pub msg: Message,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Link rate in bytes per second (fixed for the transfer's lifetime).
    pub rate: f64,
    /// When the transfer started.
    pub started: SimTime,
}

impl Transfer {
    /// Time needed to drain all bytes, rounded **up** to the millisecond
    /// grid (a transfer never completes before every byte is on the wire).
    pub fn drain_duration(&self) -> SimDuration {
        SimDuration::from_millis((self.msg.size as f64 * 1000.0 / self.rate).ceil() as u64)
    }

    /// The exact instant the last byte lands: `started + size/rate`.
    pub fn completion_time(&self) -> SimTime {
        self.started + self.drain_duration()
    }

    /// Bytes on the wire by `now`, settled analytically from elapsed time:
    /// `min(size, rate × elapsed)`. Used to account partial progress when a
    /// contact breaks mid-transfer.
    pub fn bytes_transferred(&self, now: SimTime) -> u64 {
        if now >= self.completion_time() {
            return self.msg.size;
        }
        let elapsed = now.since(self.started).as_secs_f64();
        self.msg.size.min((self.rate * elapsed).floor() as u64)
    }
}

/// Result of completing or tearing down a transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferOutcome {
    /// Transfer delivered all bytes.
    Completed(Transfer),
    /// Contact broke (or the run ended) before all bytes were delivered.
    Aborted {
        /// The interrupted transfer record.
        transfer: Transfer,
        /// Bytes that made it onto the wire before the abort (analytic,
        /// see [`Transfer::bytes_transferred`]).
        bytes_transferred: u64,
    },
}

/// Typed error for invalid [`LinkTable`] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkError {
    /// [`LinkTable::link_up`] was given a non-finite or non-positive rate,
    /// which would produce NaN or infinite completion times.
    InvalidRate {
        /// The offending rate, in bytes per second.
        rate: f64,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::InvalidRate { rate } => {
                write!(f, "link rate must be finite and positive, got {rate}")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// One active link.
#[derive(Debug, Clone)]
struct Connection {
    up_since: SimTime,
    rate: f64,
    transfer: Option<Transfer>,
}

/// All active connections plus node busy-state.
///
/// Storage is node-indexed and slot-indexed throughout — per-node sorted
/// adjacency lists of `(peer, slot)`, a dense `Connection` slab, and a
/// node-indexed busy bitmap — so a world's link state costs a handful of
/// bytes per node plus one slab entry per live connection, with no
/// hash-table or tree-node overhead.
#[derive(Debug, Default)]
pub struct LinkTable {
    /// Per-node adjacency: `(peer id, connection slot)`, sorted by peer id.
    /// Every live connection appears in both endpoints' lists. Iterating
    /// node ids ascending and visiting only higher-id peers walks the
    /// connection set in ordered-pair-key order.
    adj: Vec<Vec<(u32, u32)>>,
    /// Slot-indexed connection slab; `None` entries are free.
    slots: Vec<Option<Connection>>,
    /// Freed slots awaiting reuse (LIFO — the engine's slot-addressed
    /// per-contact state stays bounded by peak concurrency).
    free: Vec<u32>,
    /// `busy[node]` — node is engaged in a transfer (sending or receiving).
    busy: Vec<bool>,
    conn_count: usize,
}

fn key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl LinkTable {
    /// Empty table; node-indexed storage grows on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty table with node-indexed storage sized once for `nodes` ids
    /// (the engine sizes it from the scenario so the hot path never
    /// reallocates the columns).
    pub fn with_nodes(nodes: usize) -> Self {
        LinkTable {
            adj: vec![Vec::new(); nodes],
            busy: vec![false; nodes],
            ..Self::default()
        }
    }

    /// Grow node-indexed columns to cover `node`.
    fn ensure_node(&mut self, node: u32) {
        let need = node as usize + 1;
        if self.adj.len() < need {
            self.adj.resize_with(need, Vec::new);
            self.busy.resize(need, false);
        }
    }

    /// This pair's connection slot, if connected.
    pub fn slot_of(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let (lo, hi) = key(a, b);
        let peers = self.adj.get(lo as usize)?;
        peers
            .binary_search_by_key(&hi, |&(p, _)| p)
            .ok()
            .map(|k| peers[k].1)
    }

    /// Register a new link. Returns the connection's **slot handle**,
    /// stable until the matching [`LinkTable::link_down`], or
    /// [`LinkError::InvalidRate`] for a non-finite or non-positive rate
    /// (which would poison every completion time computed from it). Panics
    /// if the pair is already connected (the contact detector never
    /// double-reports).
    pub fn link_up(
        &mut self,
        a: NodeId,
        b: NodeId,
        now: SimTime,
        rate: f64,
    ) -> Result<u32, LinkError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(LinkError::InvalidRate { rate });
        }
        let (lo, hi) = key(a, b);
        self.ensure_node(hi); // hi ≥ lo covers both
        let conn = Connection {
            up_since: now,
            rate,
            transfer: None,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slots[s as usize].is_none());
                self.slots[s as usize] = Some(conn);
                s
            }
            None => {
                self.slots.push(Some(conn));
                (self.slots.len() - 1) as u32
            }
        };
        for (node, peer) in [(lo, hi), (hi, lo)] {
            let peers = &mut self.adj[node as usize];
            match peers.binary_search_by_key(&peer, |&(p, _)| p) {
                Ok(_) => panic!("duplicate link_up for {a}-{b}"),
                Err(pos) => peers.insert(pos, (peer, slot)),
            }
        }
        self.conn_count += 1;
        Ok(slot)
    }

    /// Tear down a link, returning the aborted transfer — with its partial
    /// bytes settled analytically at `now` — if one was active. The pair's
    /// slot handle is freed for reuse.
    pub fn link_down(&mut self, a: NodeId, b: NodeId, now: SimTime) -> Option<TransferOutcome> {
        let (lo, hi) = key(a, b);
        let slot = {
            let peers = self.adj.get_mut(lo as usize)?;
            let k = peers.binary_search_by_key(&hi, |&(p, _)| p).ok()?;
            peers.remove(k).1
        };
        let peers = &mut self.adj[hi as usize];
        let k = peers
            .binary_search_by_key(&lo, |&(p, _)| p)
            .expect("adjacency is symmetric");
        peers.remove(k);
        let conn = self.slots[slot as usize]
            .take()
            .expect("adjacency names a live slot");
        self.free.push(slot);
        self.conn_count -= 1;
        conn.transfer.map(|t| self.abort_outcome(t, now))
    }

    /// Abort the in-flight transfer on a connection **without** tearing the
    /// link down (the connection stays up and idle). Returns `None` if the
    /// pair is not connected or has no active transfer.
    ///
    /// The engine currently aborts only through [`LinkTable::link_down`]
    /// and [`LinkTable::clear`]; this entry point exists for policies that
    /// preempt a transfer while keeping the contact (callers owning
    /// per-contact offer state must invalidate it themselves).
    pub fn abort(&mut self, a: NodeId, b: NodeId, now: SimTime) -> Option<TransferOutcome> {
        let slot = self.slot_of(a, b)?;
        let conn = self.slots[slot as usize]
            .as_mut()
            .expect("adjacency names a live slot");
        let t = conn.transfer.take()?;
        Some(self.abort_outcome(t, now))
    }

    /// Free the endpoints and settle partial bytes for an aborted transfer.
    fn abort_outcome(&mut self, t: Transfer, now: SimTime) -> TransferOutcome {
        self.busy[t.from.index()] = false;
        self.busy[t.to.index()] = false;
        let bytes_transferred = t.bytes_transferred(now);
        TransferOutcome::Aborted {
            transfer: t,
            bytes_transferred,
        }
    }

    /// True if the pair is currently connected.
    pub fn is_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.slot_of(a, b).is_some()
    }

    /// True if `node` is engaged in any transfer.
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.get(node.index()).copied().unwrap_or(false)
    }

    /// This node's current radio peers with their connection slots, sorted
    /// by peer id. O(1); callers needing per-contact housekeeping walk this
    /// instead of keying a map by the pair.
    pub fn neighbors(&self, node: NodeId) -> &[(u32, u32)] {
        self.adj.get(node.index()).map_or(&[], Vec::as_slice)
    }

    /// Duration the pair has been connected, if connected.
    pub fn contact_age(&self, a: NodeId, b: NodeId, now: SimTime) -> Option<SimDuration> {
        let slot = self.slot_of(a, b)?;
        self.slots[slot as usize]
            .as_ref()
            .map(|c| now.since(c.up_since))
    }

    /// Number of active connections.
    pub fn connection_count(&self) -> usize {
        self.conn_count
    }

    /// One past the highest slot handle ever issued — the length callers
    /// size slot-addressed side tables to.
    pub fn slot_bound(&self) -> usize {
        self.slots.len()
    }

    /// Connections with no active transfer whose endpoints are both free,
    /// in deterministic (ordered-pair) order. These are the opportunities
    /// the routing round iterates.
    pub fn idle_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.idle_contacts()
            .into_iter()
            .map(|(a, b, _)| (a, b))
            .collect()
    }

    /// [`LinkTable::idle_pairs`] plus each pair's slot handle, for callers
    /// holding slot-addressed per-contact state.
    pub fn idle_contacts(&self) -> Vec<(NodeId, NodeId, u32)> {
        let mut idle = Vec::new();
        for (lo, peers) in self.adj.iter().enumerate() {
            if self.busy[lo] {
                continue;
            }
            for &(hi, slot) in peers {
                if (hi as usize) <= lo || self.busy[hi as usize] {
                    continue;
                }
                let conn = self.slots[slot as usize]
                    .as_ref()
                    .expect("adjacency names a live slot");
                if conn.transfer.is_none() {
                    idle.push((NodeId(lo as u32), NodeId(hi), slot));
                }
            }
        }
        idle
    }

    /// Every live connection in ordered-pair-key order:
    /// `(lo, hi, up_since, rate, in-flight transfer)`. This is the canonical
    /// enumeration snapshotting and state hashing fold over — the same order
    /// the drain entry points use, so it is deterministic by construction.
    pub fn connections(&self) -> Vec<(NodeId, NodeId, SimTime, f64, Option<&Transfer>)> {
        let mut out = Vec::with_capacity(self.conn_count);
        for (lo, peers) in self.adj.iter().enumerate() {
            for &(hi, slot) in peers {
                if (hi as usize) <= lo {
                    continue;
                }
                let conn = self.slots[slot as usize]
                    .as_ref()
                    .expect("adjacency names a live slot");
                out.push((
                    NodeId(lo as u32),
                    NodeId(hi),
                    conn.up_since,
                    conn.rate,
                    conn.transfer.as_ref(),
                ));
            }
        }
        out
    }

    /// Begin transmitting `msg` from `from` to `to`; returns the exact
    /// instant the transfer will complete (for completion-event
    /// scheduling).
    ///
    /// Preconditions (checked): the pair is connected, the connection is
    /// idle, and neither node is busy. The engine upholds these by only
    /// starting transfers on [`LinkTable::idle_pairs`].
    pub fn start_transfer(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: Message,
        now: SimTime,
    ) -> SimTime {
        assert!(!self.is_busy(from), "{from} already transferring");
        assert!(!self.is_busy(to), "{to} already transferring");
        let slot = self
            .slot_of(from, to)
            .unwrap_or_else(|| panic!("no connection {from}-{to}"));
        let conn = self.slots[slot as usize]
            .as_mut()
            .expect("adjacency names a live slot");
        assert!(conn.transfer.is_none(), "connection {from}-{to} busy");
        let t = Transfer {
            msg,
            from,
            to,
            rate: conn.rate,
            started: now,
        };
        let completes = t.completion_time();
        conn.transfer = Some(t);
        self.busy[from.index()] = true;
        self.busy[to.index()] = true;
        completes
    }

    /// Pop every transfer whose completion instant has passed (`≤ now`), in
    /// deterministic ordered-pair-key order — the tie-break rule for
    /// completions due at the same instant. Zero-byte edge cases complete
    /// at the first poll after they start.
    pub fn complete_due(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        let mut done = Vec::new();
        for lo in 0..self.adj.len() {
            for k in 0..self.adj[lo].len() {
                let (hi, slot) = self.adj[lo][k];
                if (hi as usize) <= lo {
                    continue;
                }
                let conn = self.slots[slot as usize]
                    .as_mut()
                    .expect("adjacency names a live slot");
                let finished = match &conn.transfer {
                    Some(t) => t.completion_time() <= now,
                    None => false,
                };
                if finished {
                    let t = conn.transfer.take().expect("checked above");
                    self.busy[t.from.index()] = false;
                    self.busy[t.to.index()] = false;
                    done.push(TransferOutcome::Completed(t));
                }
            }
        }
        done
    }

    /// Per-tick completion poll, kept for the `EngineMode::Ticked`
    /// reference engine: identical to [`LinkTable::complete_due`] (the
    /// event-driven engine calls that at scheduled completion instants
    /// instead of polling).
    pub fn tick(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        self.complete_due(now)
    }

    /// Drop every connection (end of run), returning aborted transfers with
    /// their partial bytes settled at `now`, in ordered-pair-key order.
    pub fn clear(&mut self, now: SimTime) -> Vec<TransferOutcome> {
        let mut aborted = Vec::new();
        for lo in 0..self.adj.len() {
            for k in 0..self.adj[lo].len() {
                let (hi, slot) = self.adj[lo][k];
                if (hi as usize) <= lo {
                    continue;
                }
                let conn = self.slots[slot as usize]
                    .take()
                    .expect("adjacency names a live slot");
                if let Some(t) = conn.transfer {
                    let bytes_transferred = t.bytes_transferred(now);
                    aborted.push(TransferOutcome::Aborted {
                        transfer: t,
                        bytes_transferred,
                    });
                }
            }
            self.adj[lo].clear();
        }
        self.slots.clear();
        self.free.clear();
        self.busy.iter_mut().for_each(|b| *b = false);
        self.conn_count = 0;
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::MessageId;

    fn msg(id: u64, size: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(60),
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn transfer_completes_at_size_over_rate() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_500_000), t(0.0));
        // 1.5 MB at 750 kB/s = exactly 2 s.
        assert_eq!(completes, t(2.0));
        assert!(lt.is_busy(NodeId(0)) && lt.is_busy(NodeId(1)));
        assert!(lt.complete_due(t(1.0)).is_empty());
        assert!(lt.complete_due(t(1.999)).is_empty());
        let done = lt.complete_due(t(2.0));
        assert_eq!(done.len(), 1);
        match &done[0] {
            TransferOutcome::Completed(tr) => {
                assert_eq!(tr.msg.id, MessageId(1));
                assert_eq!(tr.from, NodeId(0));
                assert_eq!(tr.to, NodeId(1));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        // Connection remains up and idle after completion.
        assert!(lt.is_connected(NodeId(0), NodeId(1)));
        assert_eq!(lt.idle_pairs(), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn completion_time_rounds_up_to_millis() {
        let mut lt = LinkTable::new();
        // 1000 bytes at 300 B/s = 3.333… s → must round UP to 3334 ms.
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 300.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_000), t(0.0));
        assert_eq!(completes, SimTime::from_millis(3_334));
        assert!(lt.complete_due(SimTime::from_millis(3_333)).is_empty());
        assert_eq!(lt.complete_due(SimTime::from_millis(3_334)).len(), 1);
    }

    #[test]
    fn tick_is_the_same_poll_as_complete_due() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        assert!(lt.tick(t(1.0)).is_empty());
        let done = lt.tick(t(2.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(1)));
    }

    #[test]
    fn link_down_aborts_with_partial_bytes() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        lt.start_transfer(NodeId(1), NodeId(0), msg(7, 2_000_000), t(0.0));
        let out = lt.link_down(NodeId(0), NodeId(1), t(1.0)).unwrap();
        match out {
            TransferOutcome::Aborted {
                transfer,
                bytes_transferred,
            } => {
                assert_eq!(transfer.msg.id, MessageId(7));
                // 1 s at 750 kB/s of a 2 MB message.
                assert_eq!(bytes_transferred, 750_000);
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        assert!(!lt.is_connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn partial_bytes_cap_at_message_size() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 3_000), t(0.0));
        // Same-tick race: the link drops at an instant the completion is
        // also due. Phase order (downs before completion drain) means the
        // abort wins — but all bytes were on the wire, so accounting must
        // not exceed the size nor lose the progress.
        let out = lt.link_down(NodeId(0), NodeId(1), t(5.0)).unwrap();
        match out {
            TransferOutcome::Aborted {
                bytes_transferred, ..
            } => assert_eq!(bytes_transferred, 3_000),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn abort_keeps_the_link_up() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 10_000), t(0.0));
        let out = lt.abort(NodeId(0), NodeId(1), t(2.0)).unwrap();
        assert!(matches!(
            out,
            TransferOutcome::Aborted {
                bytes_transferred: 2_000,
                ..
            }
        ));
        // Link survives, endpoints are free, and the pair is idle again.
        assert!(lt.is_connected(NodeId(0), NodeId(1)));
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        assert_eq!(lt.idle_pairs(), vec![(NodeId(0), NodeId(1))]);
        // No transfer left to abort.
        assert!(lt.abort(NodeId(0), NodeId(1), t(3.0)).is_none());
    }

    #[test]
    fn simultaneous_completions_resolve_in_pair_key_order() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(6), NodeId(7), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 2_000.0).unwrap();
        // Start in scrambled order; all three complete at exactly t = 2 s.
        lt.start_transfer(NodeId(6), NodeId(7), msg(3, 2_000), t(0.0));
        lt.start_transfer(NodeId(2), NodeId(3), msg(2, 4_000), t(0.0));
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        let done = lt.complete_due(t(2.0));
        let ids: Vec<u64> = done
            .iter()
            .map(|o| match o {
                TransferOutcome::Completed(tr) => tr.msg.id.0,
                other => panic!("expected completion, got {other:?}"),
            })
            .collect();
        // Pair-key order (0,1) < (2,3) < (6,7), not start order 3, 2, 1.
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn link_down_without_transfer_is_quiet() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(2), NodeId(5), t(0.0), 100.0).unwrap();
        assert!(lt.link_down(NodeId(5), NodeId(2), t(1.0)).is_none());
    }

    #[test]
    fn invalid_rates_are_typed_errors() {
        let mut lt = LinkTable::new();
        for rate in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = lt
                .link_up(NodeId(0), NodeId(1), t(0.0), rate)
                .expect_err("rate must be rejected");
            assert!(matches!(err, LinkError::InvalidRate { .. }));
            let rendered = err.to_string();
            assert!(rendered.contains("rate"), "unhelpful error: {rendered}");
        }
        // Rejected link_up leaves no connection behind.
        assert!(!lt.is_connected(NodeId(0), NodeId(1)));
        assert_eq!(lt.connection_count(), 0);
    }

    #[test]
    fn busy_nodes_not_listed_idle() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 750_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 750_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 10_000_000), t(0.0));
        // 0 and 1 are busy ⇒ only 2-3 is usable.
        assert_eq!(lt.idle_pairs(), vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    #[should_panic(expected = "already transferring")]
    fn cannot_double_book_a_node() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0).unwrap();
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 1000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 5_000), t(0.0));
        lt.start_transfer(NodeId(0), NodeId(2), msg(2, 5_000), t(0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate link_up")]
    fn duplicate_link_up_panics() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0).unwrap();
        lt.link_up(NodeId(1), NodeId(0), t(0.0), 1000.0).unwrap();
    }

    #[test]
    fn pair_key_is_order_independent() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(3), NodeId(1), t(0.0), 1000.0).unwrap();
        assert!(lt.is_connected(NodeId(1), NodeId(3)));
        assert!(lt.is_connected(NodeId(3), NodeId(1)));
        assert_eq!(
            lt.contact_age(NodeId(1), NodeId(3), t(5.0)),
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn multiple_transfers_complete_independently() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 2_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        lt.start_transfer(NodeId(2), NodeId(3), msg(2, 2_000), t(0.0));
        // Faster link finishes first.
        let done = lt.complete_due(t(1.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(2)));
        let done = lt.complete_due(t(2.0));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(1)));
    }

    #[test]
    fn clear_aborts_everything_with_partial_bytes() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 1_000.0).unwrap();
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_000_000), t(0.0));
        let aborted = lt.clear(t(10.0));
        assert_eq!(aborted.len(), 1);
        assert!(matches!(
            &aborted[0],
            TransferOutcome::Aborted {
                bytes_transferred: 10_000,
                ..
            }
        ));
        assert_eq!(lt.connection_count(), 0);
        assert!(!lt.is_busy(NodeId(0)));
    }

    #[test]
    fn slots_are_stable_and_reused_after_teardown() {
        let mut lt = LinkTable::with_nodes(6);
        let s01 = lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0).unwrap();
        let s23 = lt.link_up(NodeId(2), NodeId(3), t(0.0), 1000.0).unwrap();
        assert_ne!(s01, s23);
        assert_eq!(lt.slot_of(NodeId(1), NodeId(0)), Some(s01));
        assert_eq!(lt.slot_of(NodeId(2), NodeId(3)), Some(s23));
        assert_eq!(lt.slot_of(NodeId(0), NodeId(2)), None);
        // Teardown frees the slot; the next link reuses it, so the slot
        // bound tracks peak concurrency, not cumulative contacts.
        let bound = lt.slot_bound();
        lt.link_down(NodeId(0), NodeId(1), t(1.0));
        let s45 = lt.link_up(NodeId(4), NodeId(5), t(1.0), 1000.0).unwrap();
        assert_eq!(s45, s01, "freed slot is reused");
        assert_eq!(lt.slot_bound(), bound);
        assert_eq!(lt.connection_count(), 2);
        // Neighbor lists stay sorted and symmetric.
        assert_eq!(lt.neighbors(NodeId(2)), &[(3, s23)]);
        assert_eq!(lt.neighbors(NodeId(3)), &[(2, s23)]);
        assert_eq!(lt.neighbors(NodeId(0)), &[]);
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0).unwrap();
        let completes = lt.start_transfer(NodeId(0), NodeId(1), msg(1, 0), t(3.0));
        assert_eq!(completes, t(3.0));
        assert_eq!(lt.complete_due(t(3.0)).len(), 1);
    }
}

//! Connections and bandwidth-limited transfers.
//!
//! A [`LinkTable`] tracks every active connection (pair of nodes in range)
//! and at most one in-flight [`Transfer`] per connection. Nodes are
//! half-duplex: a node engaged in any transfer (sending *or* receiving)
//! cannot start another until it completes — the same contention model the
//! ONE simulator applies, and the reason scheduling policies matter at all
//! (only the first few messages in the schedule make it through a short
//! contact).
//!
//! Internally connections live in a `BTreeMap` keyed by the ordered node
//! pair, so iteration — and therefore the whole routing round — is
//! deterministic.

use std::collections::{BTreeMap, HashSet};
use vdtn_bundle::Message;
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// A message copy in flight between two connected nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// The copy being transmitted (snapshot taken at transfer start).
    pub msg: Message,
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Bytes still to transmit.
    pub bytes_left: f64,
    /// When the transfer started.
    pub started: SimTime,
}

/// Result of progressing or tearing down a transfer.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferOutcome {
    /// Transfer delivered all bytes.
    Completed(Transfer),
    /// Contact broke before all bytes were delivered.
    Aborted(Transfer),
}

/// One active link.
#[derive(Debug, Clone)]
struct Connection {
    up_since: SimTime,
    rate: f64,
    transfer: Option<Transfer>,
}

/// All active connections plus node busy-state.
#[derive(Debug, Default)]
pub struct LinkTable {
    conns: BTreeMap<(u32, u32), Connection>,
    busy: HashSet<u32>,
}

fn key(a: NodeId, b: NodeId) -> (u32, u32) {
    if a.0 < b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl LinkTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new link. Panics if the pair is already connected
    /// (the contact detector never double-reports).
    pub fn link_up(&mut self, a: NodeId, b: NodeId, now: SimTime, rate: f64) {
        assert!(rate > 0.0, "link rate must be positive");
        let prev = self.conns.insert(
            key(a, b),
            Connection {
                up_since: now,
                rate,
                transfer: None,
            },
        );
        assert!(prev.is_none(), "duplicate link_up for {a}-{b}");
    }

    /// Tear down a link, returning the aborted transfer if one was active.
    pub fn link_down(&mut self, a: NodeId, b: NodeId) -> Option<TransferOutcome> {
        let conn = self.conns.remove(&key(a, b))?;
        conn.transfer.map(|t| {
            self.busy.remove(&t.from.0);
            self.busy.remove(&t.to.0);
            TransferOutcome::Aborted(t)
        })
    }

    /// True if the pair is currently connected.
    pub fn is_connected(&self, a: NodeId, b: NodeId) -> bool {
        self.conns.contains_key(&key(a, b))
    }

    /// True if `node` is engaged in any transfer.
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.busy.contains(&node.0)
    }

    /// Duration the pair has been connected, if connected.
    pub fn contact_age(&self, a: NodeId, b: NodeId, now: SimTime) -> Option<SimDuration> {
        self.conns.get(&key(a, b)).map(|c| now.since(c.up_since))
    }

    /// Number of active connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Connections with no active transfer whose endpoints are both free,
    /// in deterministic (ordered-pair) order. These are the opportunities
    /// the routing round iterates.
    pub fn idle_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.conns
            .iter()
            .filter(|(k, c)| {
                c.transfer.is_none() && !self.busy.contains(&k.0) && !self.busy.contains(&k.1)
            })
            .map(|(&(a, b), _)| (NodeId(a), NodeId(b)))
            .collect()
    }

    /// Begin transmitting `msg` from `from` to `to`.
    ///
    /// Preconditions (checked): the pair is connected, the connection is
    /// idle, and neither node is busy. The engine upholds these by only
    /// starting transfers on [`LinkTable::idle_pairs`].
    pub fn start_transfer(&mut self, from: NodeId, to: NodeId, msg: Message, now: SimTime) {
        assert!(!self.is_busy(from), "{from} already transferring");
        assert!(!self.is_busy(to), "{to} already transferring");
        let conn = self
            .conns
            .get_mut(&key(from, to))
            .unwrap_or_else(|| panic!("no connection {from}-{to}"));
        assert!(conn.transfer.is_none(), "connection {from}-{to} busy");
        let bytes = msg.size as f64;
        conn.transfer = Some(Transfer {
            msg,
            from,
            to,
            bytes_left: bytes,
            started: now,
        });
        self.busy.insert(from.0);
        self.busy.insert(to.0);
    }

    /// Advance every active transfer by `dt`; returns completed transfers in
    /// deterministic order. Zero-byte edge cases complete on the first tick.
    pub fn tick(&mut self, dt: SimDuration) -> Vec<TransferOutcome> {
        let secs = dt.as_secs_f64();
        let mut done = Vec::new();
        for (_, conn) in self.conns.iter_mut() {
            let finished = match &mut conn.transfer {
                Some(t) => {
                    t.bytes_left -= conn.rate * secs;
                    t.bytes_left <= 0.0
                }
                None => false,
            };
            if finished {
                let t = conn.transfer.take().expect("checked above");
                self.busy.remove(&t.from.0);
                self.busy.remove(&t.to.0);
                done.push(TransferOutcome::Completed(t));
            }
        }
        done
    }

    /// Drop every connection (end of run), returning aborted transfers.
    pub fn clear(&mut self) -> Vec<TransferOutcome> {
        let mut aborted = Vec::new();
        for (_, conn) in std::mem::take(&mut self.conns) {
            if let Some(t) = conn.transfer {
                aborted.push(TransferOutcome::Aborted(t));
            }
        }
        self.busy.clear();
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_bundle::MessageId;

    fn msg(id: u64, size: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(60),
        )
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn transfer_completes_after_size_over_rate() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0);
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_500_000), t(0.0));
        assert!(lt.is_busy(NodeId(0)) && lt.is_busy(NodeId(1)));
        // 1.5 MB at 750 kB/s = 2 s.
        assert!(lt.tick(SimDuration::from_secs(1)).is_empty());
        let done = lt.tick(SimDuration::from_secs(1));
        assert_eq!(done.len(), 1);
        match &done[0] {
            TransferOutcome::Completed(tr) => {
                assert_eq!(tr.msg.id, MessageId(1));
                assert_eq!(tr.from, NodeId(0));
                assert_eq!(tr.to, NodeId(1));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        // Connection remains up and idle after completion.
        assert!(lt.is_connected(NodeId(0), NodeId(1)));
        assert_eq!(lt.idle_pairs(), vec![(NodeId(0), NodeId(1))]);
    }

    #[test]
    fn link_down_aborts_transfer() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0);
        lt.start_transfer(NodeId(1), NodeId(0), msg(7, 2_000_000), t(0.0));
        lt.tick(SimDuration::from_secs(1));
        let out = lt.link_down(NodeId(0), NodeId(1)).unwrap();
        match out {
            TransferOutcome::Aborted(tr) => {
                assert_eq!(tr.msg.id, MessageId(7));
                assert!(tr.bytes_left > 0.0);
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert!(!lt.is_busy(NodeId(0)) && !lt.is_busy(NodeId(1)));
        assert!(!lt.is_connected(NodeId(0), NodeId(1)));
    }

    #[test]
    fn link_down_without_transfer_is_quiet() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(2), NodeId(5), t(0.0), 100.0);
        assert!(lt.link_down(NodeId(5), NodeId(2)).is_none());
    }

    #[test]
    fn busy_nodes_not_listed_idle() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 750_000.0);
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 750_000.0);
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 750_000.0);
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 10_000_000), t(0.0));
        // 0 and 1 are busy ⇒ only 2-3 is usable.
        assert_eq!(lt.idle_pairs(), vec![(NodeId(2), NodeId(3))]);
    }

    #[test]
    #[should_panic(expected = "already transferring")]
    fn cannot_double_book_a_node() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0);
        lt.link_up(NodeId(0), NodeId(2), t(0.0), 1000.0);
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 5_000), t(0.0));
        lt.start_transfer(NodeId(0), NodeId(2), msg(2, 5_000), t(0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate link_up")]
    fn duplicate_link_up_panics() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1000.0);
        lt.link_up(NodeId(1), NodeId(0), t(0.0), 1000.0);
    }

    #[test]
    fn pair_key_is_order_independent() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(3), NodeId(1), t(0.0), 1000.0);
        assert!(lt.is_connected(NodeId(1), NodeId(3)));
        assert!(lt.is_connected(NodeId(3), NodeId(1)));
        assert_eq!(
            lt.contact_age(NodeId(1), NodeId(3), t(5.0)),
            Some(SimDuration::from_secs(5))
        );
    }

    #[test]
    fn multiple_transfers_progress_independently() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0);
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 2_000.0);
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 2_000), t(0.0));
        lt.start_transfer(NodeId(2), NodeId(3), msg(2, 2_000), t(0.0));
        let done = lt.tick(SimDuration::from_secs(1));
        // Faster link finishes first.
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(2)));
        let done = lt.tick(SimDuration::from_secs(1));
        assert_eq!(done.len(), 1);
        assert!(matches!(&done[0], TransferOutcome::Completed(tr) if tr.msg.id == MessageId(1)));
    }

    #[test]
    fn clear_aborts_everything() {
        let mut lt = LinkTable::new();
        lt.link_up(NodeId(0), NodeId(1), t(0.0), 1_000.0);
        lt.link_up(NodeId(2), NodeId(3), t(0.0), 1_000.0);
        lt.start_transfer(NodeId(0), NodeId(1), msg(1, 1_000_000), t(0.0));
        let aborted = lt.clear();
        assert_eq!(aborted.len(), 1);
        assert_eq!(lt.connection_count(), 0);
        assert!(!lt.is_busy(NodeId(0)));
    }
}

//! Simulation substrate for the VDTN reproduction suite.
//!
//! This crate contains the domain-independent pieces every other crate builds
//! on: simulation time ([`SimTime`], [`SimDuration`]), a deterministic event
//! queue ([`EventQueue`]), a self-contained deterministic random number
//! generator ([`rng::SimRng`], xoshiro256++ seeded via SplitMix64 so results
//! are bit-stable regardless of external crate versions), and online
//! statistics ([`stats`]).
//!
//! # Design notes
//!
//! * Everything is deterministic: the event queue breaks timestamp ties by
//!   insertion sequence, and RNG streams are derived per concern so that
//!   adding a consumer never perturbs another stream.
//! * No heap allocation in the hot paths beyond the queue itself; statistics
//!   are online (Welford) so 12-hour simulations never buffer samples.
//!
//! # Example
//!
//! ```
//! use vdtn_sim_core::{EventQueue, SimRng, SimTime};
//!
//! // Deterministic RNG lanes: the same seed yields the same stream, and
//! // derived lanes never perturb each other.
//! let root = SimRng::seed_from_u64(42);
//! let mut a = root.derive("traffic", 0);
//! let mut b = root.derive("traffic", 0);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! // The event queue pops in time order, breaking ties by insertion.
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::from_secs_f64(2.0), "second");
//! queue.schedule(SimTime::from_secs_f64(1.0), "first");
//! let (t, what) = queue.pop().unwrap();
//! assert_eq!((t.as_secs_f64(), what), (1.0, "first"));
//! ```

pub mod events;
pub mod ids;
pub mod par;
pub mod rng;
pub mod statehash;
pub mod stats;
pub mod time;

pub use events::{EngineEvent, EventQueue};
pub use ids::NodeId;
pub use rng::SimRng;
pub use statehash::StateHash;
pub use time::{SimDuration, SimTime};

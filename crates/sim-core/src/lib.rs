//! Simulation substrate for the VDTN reproduction suite.
//!
//! This crate contains the domain-independent pieces every other crate builds
//! on: simulation time ([`SimTime`], [`SimDuration`]), a deterministic event
//! queue ([`EventQueue`]), a self-contained deterministic random number
//! generator ([`rng::SimRng`], xoshiro256++ seeded via SplitMix64 so results
//! are bit-stable regardless of external crate versions), and online
//! statistics ([`stats`]).
//!
//! # Design notes
//!
//! * Everything is deterministic: the event queue breaks timestamp ties by
//!   insertion sequence, and RNG streams are derived per concern so that
//!   adding a consumer never perturbs another stream.
//! * No heap allocation in the hot paths beyond the queue itself; statistics
//!   are online (Welford) so 12-hour simulations never buffer samples.

pub mod events;
pub mod ids;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use ids::NodeId;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

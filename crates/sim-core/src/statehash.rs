//! Deterministic streaming state hashing.
//!
//! [`StateHash`] is a 64-bit FNV-1a stream folded over a *canonical*
//! serialisation of simulation state: every contributor writes its fields in
//! a fixed, documented order, collections are visited in their semantic
//! order (reception order for buffers, sorted order for sets, ordered
//! pair-key order for links), and floating-point values contribute their IEEE
//! bit patterns. Two worlds hash equal **iff** every canonical field is
//! bit-identical — which is exactly the property the engine-mode and
//! thread-count equivalence guarantees promise, so a hash stream emitted once
//! per tick turns "the final reports matched" into a per-tick invariant that
//! CI can `cmp` in O(1) per sample.
//!
//! The constants match the FNV-1a variant already used for RNG lane
//! derivation ([`crate::SimRng::derive`]), keeping the repo on a single house
//! hash. FNV is not collision-resistant — it is a *drift detector*, not an
//! integrity seal: a divergence flags the first tick where two executions
//! stopped being bit-identical, and the snapshot fingerprint it feeds guards
//! against torn writes, not adversaries.
//!
//! # Domain separation
//!
//! Writers tag each logical section with [`StateHash::write_tag`] so that a
//! field accidentally migrating between sections (or an empty section
//! adjacent to a non-empty one) cannot alias another encoding. Length
//! prefixes on variable-size collections serve the same purpose.

/// Streaming FNV-1a (64-bit) over canonical state.
///
/// ```
/// use vdtn_sim_core::statehash::StateHash;
///
/// let mut a = StateHash::new();
/// a.write_u64(7);
/// a.write_f64(1.5);
/// let mut b = StateHash::new();
/// b.write_u64(7);
/// b.write_f64(1.5);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateHash {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl Default for StateHash {
    fn default() -> Self {
        Self::new()
    }
}

impl StateHash {
    /// Fresh hasher at the FNV offset basis.
    pub const fn new() -> Self {
        StateHash { state: FNV_OFFSET }
    }

    /// Fold one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u64;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Fold a byte slice (no implicit length — callers prefix with
    /// [`write_len`](Self::write_len) when the slice is variable-sized).
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Fold a `u32` as 4 little-endian bytes.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold a `u64` as 8 little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Fold an `i64` via its two's-complement bits.
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Fold a length prefix (domain-separates adjacent collections).
    #[inline]
    pub fn write_len(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Fold an `f64` through its IEEE-754 bit pattern. Bit equality is the
    /// point: `-0.0` and `0.0` hash differently, as do differently-rounded
    /// results of "the same" computation — which is what drift detection needs.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Fold a bool as one byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Fold a UTF-8 string, length-prefixed.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_len(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Fold a section tag. Tags are short static strings ("nodes", "links",
    /// …) that keep independently-written sections from aliasing.
    #[inline]
    pub fn write_tag(&mut self, tag: &str) {
        self.write_str(tag);
    }

    /// The digest so far. Does not consume the hasher: callers may emit a
    /// running digest per tick and keep folding.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Hash a byte slice in one shot (used for file fingerprints).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = StateHash::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StateHash::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn matches_reference_fnv1a() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn write_order_matters() {
        let mut a = StateHash::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StateHash::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn f64_uses_bit_pattern() {
        let mut a = StateHash::new();
        a.write_f64(0.0);
        let mut b = StateHash::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());

        let mut c = StateHash::new();
        c.write_f64(1.0 / 3.0);
        let mut d = StateHash::new();
        d.write_f64(1.0 / 3.0);
        assert_eq!(c.finish(), d.finish());
    }

    #[test]
    fn length_prefix_separates_collections() {
        // ([1], []) must not alias ([], [1]).
        let mut a = StateHash::new();
        a.write_len(1);
        a.write_u64(1);
        a.write_len(0);
        let mut b = StateHash::new();
        b.write_len(0);
        b.write_len(1);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn tags_separate_sections() {
        let mut a = StateHash::new();
        a.write_tag("nodes");
        let mut b = StateHash::new();
        b.write_tag("links");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut a = StateHash::new();
        a.write_bytes(b"hello ");
        a.write_bytes(b"world");
        assert_eq!(a.finish(), fnv1a_64(b"hello world"));
    }

    #[test]
    fn running_digest_does_not_consume() {
        let mut h = StateHash::new();
        h.write_u64(1);
        let first = h.finish();
        h.write_u64(2);
        let second = h.finish();
        assert_ne!(first, second);
        // Continuing after finish folds on top of the same stream.
        let mut ref_h = StateHash::new();
        ref_h.write_u64(1);
        ref_h.write_u64(2);
        assert_eq!(second, ref_h.finish());
    }
}

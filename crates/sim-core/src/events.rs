//! Deterministic time-ordered event queue and the engine's event kinds.
//!
//! [`EventQueue`] is a thin wrapper around [`std::collections::BinaryHeap`]
//! that pops events in `(time, insertion sequence)` order. The sequence
//! tie-break makes the queue fully deterministic: two events scheduled for
//! the same millisecond always come out in the order they were scheduled,
//! regardless of heap internals.
//!
//! [`EngineEvent`] enumerates the wake-up kinds the hybrid event-driven
//! scheduler uses to decide *which ticks execute at all*. The contract is
//! deliberately weak: an event is a conservative "something may happen at
//! this tick" marker, never an obligation. The engine re-derives the actual
//! work from simulation state when the tick runs, so stale or duplicate
//! events are harmless — they cost one wasted wake-up, not correctness.

use crate::ids::NodeId;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wake-up kinds scheduled by the hybrid event-driven engine.
///
/// Each variant maps to one class of per-tick work the classic ticked loop
/// performs unconditionally:
///
/// * [`TrafficDue`](EngineEvent::TrafficDue) — the traffic generator's next
///   message creation time (one pending instance, rescheduled after each
///   drain).
/// * [`MovementWake`](EngineEvent::MovementWake) — a node's motion-segment
///   expiry (`Segment::until`): the next instant stepping its movement
///   model can change anything it exports (plan a trip, turn at a
///   waypoint, draw RNG). Between expiries the node's position follows the
///   segment's closed form, so driving nodes wake per *leg*, not per tick.
/// * [`ContactRecheck`](EngineEvent::ContactRecheck) — the build-time
///   "first tick always executes" marker; superseded between ticks by
///   `ContactWindow`, which carries the detector's analytic bound.
/// * [`ContactWindow`](EngineEvent::ContactWindow) — the contact
///   detector's earliest slack deadline: the first grid tick at which some
///   pair's worst-case relative motion could flip its in-range status.
///   Derived from per-node slack radii and pairwise quadratic
///   contact-window bounds over the exported motion segments.
/// * [`LinkRound`](EngineEvent::LinkRound) — a routing round may do work
///   next tick: some idle connection has a direction that is not provably
///   silent (see the engine's silent-round memo).
/// * [`TransferComplete`](EngineEvent::TransferComplete) — an in-flight
///   transfer's exact byte-drain instant (`started + size/rate`), scheduled
///   once when the transfer starts. Like every other event it is a wake-up
///   marker: the tick that executes drains *all* due completions from the
///   link table in ordered-pair-key order, which is the deterministic
///   tie-break for completions due at the same instant (the event queue's
///   own insertion-order tie-break reflects start order, not pair order).
///   A stale instance (the transfer was aborted first) wakes a tick that
///   finds nothing due.
/// * [`TtlExpiry`](EngineEvent::TtlExpiry) — the earliest TTL expiry in one
///   node's buffer (conservative: may fire early after evictions, never
///   late).
/// * [`Sample`](EngineEvent::Sample) — the next time-series sample boundary.
///
/// A tick with no due event is provably a no-op for every engine phase, so
/// the scheduler advances the clock straight to the next due event instead
/// of executing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// Next message creation is due at the traffic generator.
    TrafficDue,
    /// A node's motion-segment deadline (trip planning, waypoint departure,
    /// leg arrival) is due: advance the model across the boundary and
    /// refresh its kinematics columns.
    MovementWake(NodeId),
    /// Node positions changed recently: re-evaluate contacts next tick.
    ContactRecheck,
    /// The contact detector's earliest slack deadline may elapse: some node
    /// could have drifted within range of a new neighbour (or out of range
    /// of a current one) by this instant. Re-query due nodes only.
    ContactWindow,
    /// Some idle connection may produce a transfer: run a routing round
    /// next tick.
    LinkRound,
    /// The transfer between this (unordered) node pair drains its last byte
    /// at this instant.
    TransferComplete(NodeId, NodeId),
    /// A node's earliest buffered-message TTL may elapse at this time.
    TtlExpiry(NodeId),
    /// A time-series sample boundary.
    Sample,
}

struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timed events with deterministic FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Pop the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(100), 1u8);
        q.schedule(t(200), 2u8);
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)), Some((t(100), 1)));
        assert_eq!(q.pop_due(t(150)), None);
        assert_eq!(q.pop_due(t(250)), Some((t(200), 2)));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn engine_events_queue_deterministically() {
        use crate::ids::NodeId;
        let mut q = EventQueue::new();
        q.schedule(t(20), EngineEvent::TtlExpiry(NodeId(3)));
        q.schedule(t(10), EngineEvent::MovementWake(NodeId(1)));
        q.schedule(t(10), EngineEvent::TrafficDue);
        q.schedule(t(10), EngineEvent::ContactRecheck);
        // Same-time events come out in schedule order.
        assert_eq!(q.pop(), Some((t(10), EngineEvent::MovementWake(NodeId(1)))));
        assert_eq!(q.pop(), Some((t(10), EngineEvent::TrafficDue)));
        assert_eq!(q.pop(), Some((t(10), EngineEvent::ContactRecheck)));
        assert_eq!(q.pop(), Some((t(20), EngineEvent::TtlExpiry(NodeId(3)))));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        q.schedule(now + SimDuration::from_millis(10), 0u32);
        let mut fired = Vec::new();
        for _ in 0..50 {
            now += SimDuration::from_millis(10);
            while let Some((_, p)) = q.pop_due(now) {
                fired.push(p);
                if p < 10 {
                    // Each event reschedules its successor relative to now.
                    q.schedule(now + SimDuration::from_millis(10), p + 1);
                }
            }
        }
        assert_eq!(fired, (0..=10).collect::<Vec<_>>());
    }
}

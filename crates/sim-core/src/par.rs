//! Deterministic work partitioning for the parallel engine phases.
//!
//! The sharded phases split an ordered work list into contiguous chunks,
//! one per pool thread, process the chunks concurrently, and merge results
//! back in the original order. These helpers keep the *partitioning* rules
//! in one audited place: outputs of parallel phases must be a pure function
//! of the work list, never of the thread count, so the chunk geometry here
//! may affect only scheduling, and anything order-sensitive is indexed by
//! original position (see [`order_of`]).

/// Chunk length that splits `len` items into at most `workers` contiguous
/// chunks of near-equal size (the classic ceiling division, minimum 1).
/// With `workers == 1` the single chunk is the whole list.
pub fn chunk_len(len: usize, workers: usize) -> usize {
    let workers = workers.max(1);
    len.div_ceil(workers).max(1)
}

/// Permutation that visits `keyed` in ascending key order: `order_of(k)[r]`
/// is the position in `keyed` of the item with rank `r`. Used to walk
/// shard-grouped work back in canonical (original-index) order at the merge
/// barrier. The sort is stable, so equal keys keep their relative order.
pub fn order_of<K: Ord + Copy>(keyed: &[K]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..keyed.len()).collect();
    order.sort_by_key(|&i| keyed[i]);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_covers_all_items_with_at_most_workers_chunks() {
        for len in 0..40usize {
            for workers in 1..10usize {
                let c = chunk_len(len, workers);
                assert!(c >= 1);
                if len > 0 {
                    let chunks = len.div_ceil(c);
                    assert!(chunks <= workers, "len={len} workers={workers}");
                    assert!(chunks * c >= len);
                }
            }
        }
    }

    #[test]
    fn chunk_len_degenerate_workers() {
        assert_eq!(chunk_len(10, 0), 10); // clamped to one worker
        assert_eq!(chunk_len(0, 4), 1);
        assert_eq!(chunk_len(7, 1), 7);
    }

    #[test]
    fn order_of_visits_keys_in_ascending_stable_order() {
        let keys = [3u32, 1, 2, 1, 3, 0];
        let order = order_of(&keys);
        let visited: Vec<u32> = order.iter().map(|&i| keys[i]).collect();
        assert_eq!(visited, vec![0, 1, 1, 2, 3, 3]);
        // Stability: the two `1`s keep original relative order, as do the 3s.
        assert_eq!(order, vec![5, 1, 3, 2, 0, 4]);
    }

    #[test]
    fn order_of_empty() {
        assert!(order_of::<u32>(&[]).is_empty());
    }
}

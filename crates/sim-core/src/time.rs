//! Simulation time.
//!
//! Time is represented in whole **milliseconds** as a `u64` under the hood.
//! The paper's scenario uses second-scale ticks over a 12-hour horizon, so
//! millisecond resolution is three orders of magnitude finer than anything
//! the model needs, while keeping time values exactly comparable (no float
//! drift in the event queue) and hashable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp (milliseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s (milliseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build a timestamp from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Build a timestamp from (possibly fractional) seconds.
    ///
    /// Rounds to the nearest millisecond. Panics in debug builds on negative
    /// or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad time {secs}");
        SimTime((secs * 1000.0).round() as u64)
    }

    /// Whole milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reports and maths).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Minutes since simulation start as a float (figure axes use minutes).
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration; used as an "infinite TTL" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Build from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Build from whole minutes (paper TTLs are given in minutes).
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1000)
    }

    /// Build from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * 1000)
    }

    /// Build from fractional seconds, rounding to the nearest millisecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration {secs}");
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Minutes as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(12.5);
        assert_eq!(t.as_millis(), 12_500);
        assert!((t.as_secs_f64() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn minutes_and_hours() {
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(12).as_secs_f64(), 43_200.0);
        assert!((SimDuration::from_mins(90).as_mins_f64() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_is_exact() {
        let a = SimTime::from_secs_f64(1.00049);
        let b = SimTime::from_secs_f64(1.0004);
        // Both round to the same millisecond: equality, not near-miss.
        assert_eq!(a, b.saturating_add(SimDuration::from_millis(0)));
        // And a genuinely later float is strictly greater after rounding.
        assert!(SimTime::from_secs_f64(1.0006) > b);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_millis(1_000);
        let t1 = t0 + SimDuration::from_millis(500);
        assert_eq!(t1 - t0, SimDuration::from_millis(500));
        assert_eq!(t1.since(t0).as_millis(), 500);
        // since() saturates rather than underflowing.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.000s");
    }
}

//! Deterministic random number generation.
//!
//! The simulator carries its own generator — **xoshiro256++** seeded through
//! **SplitMix64** — instead of depending on an external RNG crate, so that
//! simulation results are reproducible bit-for-bit independent of dependency
//! upgrades. Both algorithms are public-domain reference designs
//! (Blackman & Vigna); the unit tests below pin the reference output vectors.
//!
//! # Streams
//!
//! Every random concern in a scenario (map generation, each node's mobility,
//! traffic generation, policy tie-breaking, …) draws from its own
//! [`SimRng`] derived via [`SimRng::derive`], keyed by a label and an index.
//! Adding or removing one consumer therefore never perturbs the values seen
//! by any other consumer, which keeps A/B experiment comparisons paired.

use serde::{Deserialize, Serialize};

/// SplitMix64 — used to expand seeds into xoshiro state and to mix stream keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workhorse generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality and
/// extremely fast (a handful of ALU ops per draw).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) is valid: state expansion
    /// goes through SplitMix64, which never yields the all-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        SimRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent child stream identified by `(label, index)`.
    ///
    /// The label is hashed with FNV-1a so call sites read declaratively:
    /// `rng.derive("mobility", node_id)`.
    pub fn derive(&self, label: &str, index: u64) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // Mix the parent state, label hash, and index through SplitMix64.
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_add(h.rotate_left(17))
                .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        SimRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The raw 256-bit generator state, for canonical state hashing. The
    /// words fully determine the stream position, so two generators with
    /// equal state words produce identical futures.
    #[inline]
    pub fn state_words(&self) -> [u64; 4] {
        self.s
    }

    /// Next 64 random bits (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)` using Lemire's unbiased method.
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`. `lo == hi` returns `lo`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "range_f64({lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in the **inclusive** range `[lo, hi]`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "range_u64({lo}, {hi})");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        // Inverse-CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Standard-normal draw (Box–Muller; one value per call, the pair's twin
    /// is discarded for simplicity — these draws are not on hot paths).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly choose a reference from a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose on empty slice");
        &slice[self.index(slice.len())]
    }

    /// Choose two **distinct** indices from `[0, n)`. Panics if `n < 2`.
    pub fn choose_two_distinct(&mut self, n: usize) -> (usize, usize) {
        assert!(n >= 2, "need at least two elements");
        let a = self.index(n);
        let mut b = self.index(n - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the SplitMix64 public-domain implementation
    /// (seed 1234567).
    #[test]
    fn splitmix_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for e in expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    /// xoshiro256++ reference: seeding via SplitMix64(0) must reproduce the
    /// sequence from the reference C code arrangement we use (state filled
    /// with four successive SplitMix64 outputs).
    #[test]
    fn xoshiro_is_deterministic_and_stable() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        let seq_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        // Pin the first three outputs so accidental algorithm changes fail loudly.
        let mut c = SimRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| c.next_u64()).collect();
        assert_eq!(first[0], 5987356902031041503);
    }

    #[test]
    fn derive_streams_are_independent() {
        let root = SimRng::seed_from_u64(7);
        let mut m0 = root.derive("mobility", 0);
        let mut m1 = root.derive("mobility", 1);
        let mut t0 = root.derive("traffic", 0);
        let a: Vec<u64> = (0..16).map(|_| m0.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| m1.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| t0.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Re-deriving yields the identical stream.
        let mut m0_again = root.derive("mobility", 0);
        let a2: Vec<u64> = (0..16).map(|_| m0_again.next_u64()).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_u64_inclusive() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..20_000 {
            let v = rng.range_u64(15, 30);
            assert!((15..=30).contains(&v));
            hit_lo |= v == 15;
            hit_hi |= v == 30;
        }
        assert!(hit_lo && hit_hi);
        assert_eq!(rng.range_u64(9, 9), 9);
    }

    #[test]
    fn range_f64_uniformity_rough() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.range_f64(10.0, 20.0)).sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_two_distinct_never_collides() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..5_000 {
            let (a, b) = rng.choose_two_distinct(40);
            assert_ne!(a, b);
            assert!(a < 40 && b < 40);
        }
        // Smallest legal n.
        for _ in 0..100 {
            let (a, b) = rng.choose_two_distinct(2);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn exponential_mean_rough() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(22.5)).sum::<f64>() / n as f64;
        assert!((mean - 22.5).abs() < 0.3, "mean was {mean}");
    }

    #[test]
    fn normal_moments_rough() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.1);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(10);
        assert!(!(0..1000).any(|_| rng.chance(0.0)));
        assert!((0..1000).all(|_| rng.chance(1.0)));
    }
}

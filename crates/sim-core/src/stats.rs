//! Online statistics used by the metric collectors.
//!
//! All accumulators are *online* (constant memory): a 12-hour epidemic run
//! relays hundreds of thousands of messages and we never want to buffer
//! per-sample vectors inside the engine. Where the paper reports medians we
//! additionally keep a bounded reservoir sample.

use serde::{Deserialize, Serialize};

/// Welford online mean / variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold every field into a canonical state hash (IEEE bit patterns —
    /// Welford accumulation is order-sensitive at the ULP level, which is
    /// exactly what drift detection must observe).
    pub fn hash_into(&self, h: &mut crate::StateHash) {
        h.write_u64(self.count);
        h.write_f64(self.mean);
        h.write_f64(self.m2);
        h.write_f64(self.min);
        h.write_f64(self.max);
    }

    /// Merge another accumulator into this one (parallel reduction step).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `n` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "bad histogram bounds");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bucket counts, in order.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (linear within the winning bucket).
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if seen + c >= target && c > 0 {
                let into = (target - seen) as f64 / c as f64;
                return Some(self.lo + width * (i as f64 + into));
            }
            seen += c;
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical bounds/buckets.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo);
        assert_eq!(self.hi, other.hi);
        assert_eq!(self.buckets.len(), other.buckets.len());
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
    }
}

/// Bounded reservoir sample (Vitter's algorithm R) for exact medians on
/// moderate sample counts without unbounded memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
    /// Cheap embedded LCG so the reservoir does not need an external RNG
    /// handle; statistical quality is irrelevant for sampling positions.
    state: u64,
}

impl Reservoir {
    /// Reservoir keeping at most `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0);
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::with_capacity(cap.min(4096)),
            state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next(&mut self) -> u64 {
        // SplitMix-style step; deterministic across runs.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    /// Offer one sample.
    pub fn push(&mut self, x: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
        } else {
            let j = self.next() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = x;
            }
        }
    }

    /// Total samples offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Quantile over the retained sample (exact when `seen <= cap`).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
        Some(v[idx])
    }

    /// Median convenience wrapper.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// A ratio counter for probabilities (delivered / created etc.).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator events.
    pub hits: u64,
    /// Denominator events.
    pub total: u64,
}

impl Ratio {
    /// Record a denominator event.
    pub fn observe(&mut self) {
        self.total += 1;
    }

    /// Record a numerator event (does not bump the denominator).
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Current value in `[0, 1]`; 0 when the denominator is empty.
    pub fn value(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 3.0)
            .collect();
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let mut whole = Welford::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut left = Welford::new();
        let mut right = Welford::new();
        data[..200].iter().for_each(|&x| left.push(x));
        data[200..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn welford_empty_behaviour() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
        let mut a = Welford::new();
        let b = Welford::new();
        a.merge(&b); // merging empties is a no-op
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!(h.buckets().iter().all(|&c| c == 10));
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 10.0, "median ≈ 50, got {med}");
        h.push(-5.0);
        h.push(1e9);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.push(1.0);
        b.push(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.buckets()[0], 1);
        assert_eq!(a.buckets()[4], 1);
    }

    #[test]
    fn reservoir_exact_when_small() {
        let mut r = Reservoir::new(100);
        for i in 0..51 {
            r.push(i as f64);
        }
        assert_eq!(r.median(), Some(25.0));
        assert_eq!(r.seen(), 51);
    }

    #[test]
    fn reservoir_bounded_when_large() {
        let mut r = Reservoir::new(64);
        for i in 0..10_000 {
            r.push(i as f64);
        }
        assert_eq!(r.seen(), 10_000);
        let med = r.median().unwrap();
        // Very loose: the retained sample should straddle the middle.
        assert!(med > 1_000.0 && med < 9_000.0, "median {med}");
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::default();
        assert_eq!(r.value(), 0.0);
        for i in 0..10 {
            r.observe();
            if i % 2 == 0 {
                r.hit();
            }
        }
        assert!((r.value() - 0.5).abs() < 1e-12);
    }
}

//! Compact identifier types shared across the suite.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (vehicle or stationary relay).
///
/// Nodes are numbered densely from zero within a scenario, so a `u32` is
/// plenty and keeps hot structures small (see the type-size guidance in the
/// performance guides).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index, as `usize`, for direct slice addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let id = NodeId::from(17usize);
        assert_eq!(id.index(), 17);
        assert_eq!(id, NodeId(17));
        assert_eq!(format!("{id}"), "n17");
    }

    #[test]
    fn stays_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}

//! Property tests for the motion segment protocol.
//!
//! For every movement model, over random configurations and seeds:
//!
//! * `position_at(elapsed)` anchored at any tick must equal the position the
//!   model actually reaches by iterated `step()`ping, bit-for-bit, for every
//!   grid tick that lands strictly inside the current decision window, and
//! * the exported `motion()` segment must reproduce both through its own
//!   closed form.
//!
//! This is the contract the event-driven engine leans on when it skips
//! movement ticks entirely and evaluates kinematics columns analytically.

use proptest::prelude::*;
use std::sync::Arc;
use vdtn_geo::{Bounds, GridMapGen, Point, RoadGraph};
use vdtn_mobility::{
    MapRouteMovement, MovementModel, RandomWaypoint, RouteConfig, ShortestPathMapBased, SpmbConfig,
    Stationary, WaypointConfig,
};
use vdtn_sim_core::{SimDuration, SimRng, SimTime};

/// How many future grid ticks each anchor predicts ahead.
const HORIZON: u64 = 30;

/// Drive `m` for `ticks` one-second steps; at every tick check all earlier
/// predictions that land on it, then predict forward from the fresh state.
fn check_protocol<M: MovementModel>(mut m: M, ticks: u64) {
    let dt = SimDuration::from_secs(1);
    let mut now = SimTime::ZERO;
    let mut pending: Vec<(SimTime, Point)> = Vec::new();
    let mut predicted = 0u64;
    for _ in 0..ticks {
        let end = now + dt;
        let p = m.step(now, dt);
        for &(t, pred) in pending.iter() {
            if t == end {
                assert_eq!(pred, p, "prediction for {end} diverged");
            }
        }
        pending.retain(|&(t, _)| t > end);

        // The exported segment must agree with the model *now*…
        let seg = m.motion();
        assert_eq!(seg.position_at(end), p, "segment disagrees at its anchor");
        // …and project exactly up to (not including) the next decision.
        let nd = m.next_decision_time();
        for k in 1..=HORIZON {
            let f = end + SimDuration::from_secs(k);
            if f >= nd {
                break;
            }
            let via_at = m.position_at(SimDuration::from_secs(k));
            assert_eq!(via_at, seg.position_at(f), "position_at vs segment at {f}");
            pending.push((f, via_at));
            predicted += 1;
        }
        now = end;
    }
    assert!(
        predicted > 0 || ticks == 0,
        "window never admitted a prediction — test is vacuous"
    );
}

fn grid_map() -> Arc<RoadGraph> {
    Arc::new(
        GridMapGen {
            cols: 5,
            rows: 5,
            spacing: 100.0,
        }
        .generate(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spmb_segment_protocol(
        seed in 0u64..1_000_000,
        speed_lo_d in 10u32..150,
        speed_span_d in 0u32..150,
        wait_lo_d in 0u32..200,
        wait_span_d in 10u32..400,
    ) {
        let speed_lo = speed_lo_d as f64 / 10.0;
        let cfg = SpmbConfig {
            speed_lo,
            speed_hi: speed_lo + speed_span_d as f64 / 10.0,
            wait_lo: wait_lo_d as f64 / 10.0,
            wait_hi: (wait_lo_d + wait_span_d) as f64 / 10.0,
        };
        let m = ShortestPathMapBased::new(grid_map(), cfg, SimRng::seed_from_u64(seed));
        check_protocol(m, 400);
    }

    #[test]
    fn waypoint_segment_protocol(
        seed in 0u64..1_000_000,
        speed_lo_d in 10u32..150,
        speed_span_d in 0u32..150,
        wait_lo_d in 0u32..100,
        wait_span_d in 10u32..200,
    ) {
        let speed_lo = speed_lo_d as f64 / 10.0;
        let speed_span = speed_span_d as f64 / 10.0;
        let wait_lo = wait_lo_d as f64 / 10.0;
        let wait_span = wait_span_d as f64 / 10.0;
        let mut bounds = Bounds::empty();
        bounds.expand(Point::new(0.0, 0.0));
        bounds.expand(Point::new(900.0, 700.0));
        let cfg = WaypointConfig {
            bounds,
            speed_lo,
            speed_hi: speed_lo + speed_span,
            wait_lo,
            wait_hi: wait_lo + wait_span,
        };
        let m = RandomWaypoint::new(cfg, SimRng::seed_from_u64(seed));
        check_protocol(m, 400);
    }

    #[test]
    fn route_segment_protocol(
        seed in 0u64..1_000_000,
        speed_d in 10u32..200,
        stop_wait_d in 0u32..200,
    ) {
        let speed = speed_d as f64 / 10.0;
        let stop_wait = stop_wait_d as f64 / 10.0;
        let g = grid_map();
        let stops = [
            Point::new(0.0, 0.0),
            Point::new(400.0, 0.0),
            Point::new(400.0, 400.0),
            Point::new(0.0, 400.0),
        ]
        .iter()
        .map(|&p| g.nearest_vertex(p).unwrap())
        .collect();
        let cfg = RouteConfig { stops, speed, stop_wait };
        let mut rng = SimRng::seed_from_u64(seed);
        let m = MapRouteMovement::new(g, cfg, &mut rng);
        check_protocol(m, 400);
    }

    #[test]
    fn stationary_segment_protocol(x in -500i32..500, y in -500i32..500) {
        let m = Stationary::new(Point::new(x as f64, y as f64));
        check_protocol(m, 50);
    }
}

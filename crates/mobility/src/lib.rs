//! Node movement models.
//!
//! The paper's vehicles use what the ONE simulator calls
//! `ShortestPathMapBasedMovement`: a vehicle drives to a randomly chosen map
//! location along the shortest road path at a per-trip random speed
//! (U\[30, 50\] km/h in the scenario), then pauses for a random wait
//! (U\[5, 15\] min) before picking the next destination. Relay nodes are
//! stationary. This crate implements those two plus two extension models
//! (fixed routes for bus-like nodes and free-space random waypoint) behind a
//! single [`MovementModel`] trait that the engine steps once per tick.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vdtn_geo::GridMapGen;
//! use vdtn_mobility::{MovementModel, ShortestPathMapBased, SpmbConfig};
//! use vdtn_sim_core::{SimDuration, SimRng, SimTime};
//!
//! let map = Arc::new(GridMapGen { cols: 4, rows: 4, spacing: 100.0 }.generate());
//! let bounds = map.bounds();
//! let mut vehicle =
//!     ShortestPathMapBased::new(map, SpmbConfig::default(), SimRng::seed_from_u64(7));
//! let tick = SimDuration::from_secs(1);
//! let mut now = SimTime::ZERO;
//! for _ in 0..120 {
//!     let position = vehicle.step(now, tick);
//!     assert!(bounds.contains(position), "vehicles never leave the map");
//!     now = now.saturating_add(tick);
//! }
//! ```

pub mod model;
pub mod route;
pub mod snapshot;
pub mod spmb;
pub mod waypoint;

pub use model::{MovementModel, Stationary};
pub use route::{MapRouteMovement, RouteConfig};
pub use snapshot::{restore_mover, FreePhase, MoverSnapshot, PathPhase};
pub use spmb::{ShortestPathMapBased, SpmbConfig};
pub use waypoint::{RandomWaypoint, WaypointConfig};

/// Convert km/h to the m/s the simulator uses internally.
pub fn kmh_to_ms(kmh: f64) -> f64 {
    kmh / 3.6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmh_conversion() {
        assert!((kmh_to_ms(36.0) - 10.0).abs() < 1e-12);
        assert!((kmh_to_ms(50.0) - 13.888_888_888).abs() < 1e-6);
    }
}

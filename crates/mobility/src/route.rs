//! Fixed-route movement (bus-like nodes).
//!
//! The paper's introduction motivates VDTNs with vehicles that "follow
//! predefined routes (e.g. buses)". This model drives a node around a cyclic
//! list of map vertices, pausing a fixed time at each stop. It is not used in
//! the headline experiments but is exercised by the extension examples and
//! sweep ablations.

use crate::model::{advance_along_path, MovementModel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdtn_geo::{astar, Point, RoadGraph, VertexId};
use vdtn_sim_core::{SimDuration, SimRng, SimTime};

/// Parameters for [`MapRouteMovement`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Stops, as road-graph vertex ids, visited cyclically.
    pub stops: Vec<VertexId>,
    /// Cruise speed in m/s.
    pub speed: f64,
    /// Dwell time at each stop, seconds.
    pub stop_wait: f64,
}

impl RouteConfig {
    /// Validate the configuration against a map.
    pub fn validate(&self, graph: &RoadGraph) {
        assert!(self.stops.len() >= 2, "route needs at least two stops");
        assert!(self.speed > 0.0, "route speed must be positive");
        assert!(self.stop_wait >= 0.0);
        for &s in &self.stops {
            assert!(
                s.index() < graph.vertex_count(),
                "route stop {s:?} outside map"
            );
        }
    }
}

enum Phase {
    Dwelling { until: SimTime },
    Driving { path: Vec<Point>, leg: usize },
}

/// Cyclic fixed-route movement over the road graph.
pub struct MapRouteMovement {
    graph: Arc<RoadGraph>,
    cfg: RouteConfig,
    pos: Point,
    /// Index into `cfg.stops` of the *next* stop to visit.
    next_stop: usize,
    phase: Phase,
}

impl MapRouteMovement {
    /// Create a route node starting parked at a random stop.
    pub fn new(graph: Arc<RoadGraph>, cfg: RouteConfig, rng: &mut SimRng) -> Self {
        cfg.validate(&graph);
        let start_idx = rng.index(cfg.stops.len());
        let pos = graph.position(cfg.stops[start_idx]);
        MapRouteMovement {
            graph,
            pos,
            next_stop: (start_idx + 1) % cfg.stops.len(),
            phase: Phase::Dwelling {
                until: SimTime::ZERO + SimDuration::from_secs_f64(cfg.stop_wait),
            },
            cfg,
        }
    }

    fn depart(&mut self, now: SimTime) {
        let here = self
            .graph
            .nearest_vertex(self.pos)
            .expect("non-empty graph");
        let target = self.cfg.stops[self.next_stop];
        match astar(&self.graph, here, target) {
            Some(result) if result.vertices.len() > 1 => {
                let path = result
                    .vertices
                    .iter()
                    .map(|&v| self.graph.position(v))
                    .collect();
                self.phase = Phase::Driving { path, leg: 1 };
            }
            _ => {
                // Already there or unreachable: advance the stop pointer and
                // dwell again instead of spinning.
                self.next_stop = (self.next_stop + 1) % self.cfg.stops.len();
                self.phase = Phase::Dwelling {
                    until: now + SimDuration::from_secs_f64(self.cfg.stop_wait.max(1.0)),
                };
            }
        }
    }
}

impl MovementModel for MapRouteMovement {
    fn step(&mut self, now: SimTime, dt: SimDuration) -> Point {
        let end = now + dt;
        match &mut self.phase {
            Phase::Dwelling { until } => {
                if end >= *until {
                    self.depart(end);
                }
            }
            Phase::Driving { path, leg } => {
                let dist = self.cfg.speed * dt.as_secs_f64();
                self.pos = advance_along_path(path, self.pos, leg, dist);
                if *leg >= path.len() {
                    self.next_stop = (self.next_stop + 1) % self.cfg.stops.len();
                    self.phase = Phase::Dwelling {
                        until: end + SimDuration::from_secs_f64(self.cfg.stop_wait),
                    };
                }
            }
        }
        self.pos
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        match &self.phase {
            Phase::Dwelling { until } => Some(*until),
            Phase::Driving { .. } => None,
        }
    }

    fn position_at(&self, elapsed: SimDuration) -> Point {
        match &self.phase {
            Phase::Dwelling { .. } => self.pos,
            Phase::Driving { path, leg } => crate::model::peek_along_path(
                path,
                self.pos,
                *leg,
                self.cfg.speed * elapsed.as_secs_f64(),
            ),
        }
    }

    fn name(&self) -> &'static str {
        "MapRoute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_geo::GridMapGen;

    fn grid() -> Arc<RoadGraph> {
        Arc::new(
            GridMapGen {
                cols: 4,
                rows: 4,
                spacing: 100.0,
            }
            .generate(),
        )
    }

    fn corners(g: &RoadGraph) -> Vec<VertexId> {
        [
            Point::new(0.0, 0.0),
            Point::new(300.0, 0.0),
            Point::new(300.0, 300.0),
            Point::new(0.0, 300.0),
        ]
        .iter()
        .map(|&p| g.nearest_vertex(p).unwrap())
        .collect()
    }

    #[test]
    fn visits_all_stops_cyclically() {
        let g = grid();
        let stops = corners(&g);
        let stop_points: Vec<Point> = stops.iter().map(|&s| g.position(s)).collect();
        let cfg = RouteConfig {
            stops,
            speed: 10.0,
            stop_wait: 5.0,
        };
        let mut rng = SimRng::seed_from_u64(3);
        let mut m = MapRouteMovement::new(g, cfg, &mut rng);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut visited = vec![false; 4];
        for _ in 0..2_000 {
            let p = m.step(now, dt);
            now += dt;
            for (i, &sp) in stop_points.iter().enumerate() {
                if p.distance(sp) < 0.5 {
                    visited[i] = true;
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "visited = {visited:?}");
    }

    #[test]
    fn constant_speed_while_driving() {
        let g = grid();
        let stops = corners(&g);
        let cfg = RouteConfig {
            stops,
            speed: 10.0,
            stop_wait: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(4);
        let mut m = MapRouteMovement::new(g, cfg, &mut rng);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut prev = m.position();
        for _ in 0..500 {
            let p = m.step(now, dt);
            now += dt;
            let d = prev.distance(p);
            assert!(d <= 10.0 + 1e-9, "step of {d} m at {now}");
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "at least two stops")]
    fn rejects_single_stop() {
        let g = grid();
        let cfg = RouteConfig {
            stops: vec![VertexId(0)],
            speed: 10.0,
            stop_wait: 1.0,
        };
        cfg.validate(&g);
    }

    #[test]
    #[should_panic(expected = "outside map")]
    fn rejects_out_of_range_stop() {
        let g = grid();
        let cfg = RouteConfig {
            stops: vec![VertexId(0), VertexId(10_000)],
            speed: 10.0,
            stop_wait: 1.0,
        };
        cfg.validate(&g);
    }
}

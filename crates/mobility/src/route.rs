//! Fixed-route movement (bus-like nodes).
//!
//! The paper's introduction motivates VDTNs with vehicles that "follow
//! predefined routes (e.g. buses)". This model drives a node around a cyclic
//! list of map vertices, pausing a fixed time at each stop. It is not used in
//! the headline experiments but is exercised by the extension examples and
//! sweep ablations.

use crate::model::{leg_segment, project_legs, MovementModel, MIN_WAIT};
use crate::snapshot::{MoverSnapshot, PathPhase};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdtn_geo::{astar, Point, RoadGraph, Segment, VertexId};
use vdtn_sim_core::{SimDuration, SimRng, SimTime, StateHash};

/// Parameters for [`MapRouteMovement`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteConfig {
    /// Stops, as road-graph vertex ids, visited cyclically.
    pub stops: Vec<VertexId>,
    /// Cruise speed in m/s.
    pub speed: f64,
    /// Dwell time at each stop, seconds.
    pub stop_wait: f64,
}

impl RouteConfig {
    /// Validate the configuration against a map.
    pub fn validate(&self, graph: &RoadGraph) {
        assert!(self.stops.len() >= 2, "route needs at least two stops");
        assert!(self.speed > 0.0, "route speed must be positive");
        assert!(self.stop_wait >= 0.0);
        for &s in &self.stops {
            assert!(
                s.index() < graph.vertex_count(),
                "route stop {s:?} outside map"
            );
        }
    }
}

enum Phase {
    Dwelling {
        seg: Segment,
    },
    Driving {
        path: Vec<Point>,
        leg: usize,
        seg: Segment,
    },
}

/// Cyclic fixed-route movement over the road graph.
pub struct MapRouteMovement {
    graph: Arc<RoadGraph>,
    cfg: RouteConfig,
    pos: Point,
    /// Time of the last `advance_to` (the anchor for `position_at`).
    clock: SimTime,
    /// Index into `cfg.stops` of the *next* stop to visit.
    next_stop: usize,
    phase: Phase,
}

impl MapRouteMovement {
    /// Create a route node starting parked at a random stop.
    pub fn new(graph: Arc<RoadGraph>, cfg: RouteConfig, rng: &mut SimRng) -> Self {
        cfg.validate(&graph);
        let start_idx = rng.index(cfg.stops.len());
        let pos = graph.position(cfg.stops[start_idx]);
        let until = SimTime::ZERO + SimDuration::from_secs_f64(cfg.stop_wait).max(MIN_WAIT);
        MapRouteMovement {
            graph,
            pos,
            clock: SimTime::ZERO,
            next_stop: (start_idx + 1) % cfg.stops.len(),
            phase: Phase::Dwelling {
                seg: Segment::stationary(pos, SimTime::ZERO, until),
            },
            cfg,
        }
    }

    /// Rebuild a route node from its [`MoverSnapshot::MapRoute`] parts.
    /// Exact inverse of [`MovementModel::snapshot`]. The snapshot's `speed`
    /// field is redundant with `cfg.speed` and is ignored here.
    pub(crate) fn from_snapshot(
        graph: Arc<RoadGraph>,
        cfg: RouteConfig,
        pos: Point,
        clock: SimTime,
        next_stop: usize,
        phase: PathPhase,
    ) -> Self {
        cfg.validate(&graph);
        assert!(next_stop < cfg.stops.len(), "next_stop outside route");
        let phase = match phase {
            PathPhase::Waiting { seg } => Phase::Dwelling { seg },
            PathPhase::Driving { path, leg, seg, .. } => Phase::Driving { path, leg, seg },
        };
        MapRouteMovement {
            graph,
            cfg,
            pos,
            clock,
            next_stop,
            phase,
        }
    }

    /// Leave for the next stop at `depart` (the dwell's expiry).
    fn depart(&mut self, depart: SimTime) {
        let here = self
            .graph
            .nearest_vertex(self.pos)
            .expect("non-empty graph");
        let target = self.cfg.stops[self.next_stop];
        match astar(&self.graph, here, target) {
            Some(result) if result.vertices.len() > 1 => {
                let path: Vec<Point> = result
                    .vertices
                    .iter()
                    .map(|&v| self.graph.position(v))
                    .collect();
                let seg = leg_segment(path[0], path[1], self.cfg.speed, depart);
                self.phase = Phase::Driving { path, leg: 1, seg };
            }
            _ => {
                // Already there or unreachable: advance the stop pointer and
                // dwell again instead of spinning.
                self.next_stop = (self.next_stop + 1) % self.cfg.stops.len();
                let until =
                    depart + SimDuration::from_secs_f64(self.cfg.stop_wait.max(1.0)).max(MIN_WAIT);
                self.phase = Phase::Dwelling {
                    seg: Segment::stationary(self.pos, depart, until),
                };
            }
        }
    }
}

impl MovementModel for MapRouteMovement {
    fn advance_to(&mut self, t: SimTime) -> Point {
        loop {
            match &mut self.phase {
                Phase::Dwelling { seg } => {
                    if t < seg.until {
                        self.clock = t;
                        return self.pos;
                    }
                    let when = seg.until;
                    self.depart(when);
                }
                Phase::Driving { path, leg, seg } => {
                    let (nseg, nleg) = project_legs(path, *leg, *seg, self.cfg.speed, t);
                    if nleg < path.len() {
                        *seg = nseg;
                        *leg = nleg;
                        self.pos = nseg.position_at(t);
                        self.clock = t;
                        return self.pos;
                    }
                    // Arrived at the stop: dwell from the arrival instant.
                    let arrival = nseg.start;
                    let parked = nseg.origin;
                    self.pos = parked;
                    self.next_stop = (self.next_stop + 1) % self.cfg.stops.len();
                    let until =
                        arrival + SimDuration::from_secs_f64(self.cfg.stop_wait).max(MIN_WAIT);
                    self.phase = Phase::Dwelling {
                        seg: Segment::stationary(parked, arrival, until),
                    };
                }
            }
        }
    }

    fn motion(&self) -> Segment {
        match &self.phase {
            Phase::Dwelling { seg } => *seg,
            Phase::Driving { seg, .. } => *seg,
        }
    }

    fn max_speed(&self) -> f64 {
        self.cfg.speed
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn position_at(&self, elapsed: SimDuration) -> Point {
        let t = self.clock + elapsed;
        match &self.phase {
            Phase::Dwelling { .. } => self.pos,
            Phase::Driving { path, leg, seg } => {
                let (nseg, _) = project_legs(path, *leg, *seg, self.cfg.speed, t);
                nseg.position_at(t)
            }
        }
    }

    fn name(&self) -> &'static str {
        "MapRoute"
    }

    fn snapshot(&self) -> MoverSnapshot {
        let phase = match &self.phase {
            Phase::Dwelling { seg } => PathPhase::Waiting { seg: *seg },
            Phase::Driving { path, leg, seg } => PathPhase::Driving {
                path: path.clone(),
                leg: *leg,
                speed: self.cfg.speed,
                seg: *seg,
            },
        };
        MoverSnapshot::MapRoute {
            cfg: self.cfg.clone(),
            pos: self.pos,
            clock: self.clock,
            next_stop: self.next_stop,
            phase,
        }
    }

    fn hash_state(&self, h: &mut StateHash) {
        h.write_tag("mov.route");
        h.write_len(self.next_stop);
        match &self.phase {
            Phase::Dwelling { seg } => {
                h.write_u8(0);
                seg.hash_into(h);
            }
            Phase::Driving { path, leg, seg } => {
                h.write_u8(1);
                h.write_len(path.len());
                for p in path {
                    p.hash_into(h);
                }
                h.write_len(*leg);
                seg.hash_into(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_geo::GridMapGen;

    fn grid() -> Arc<RoadGraph> {
        Arc::new(
            GridMapGen {
                cols: 4,
                rows: 4,
                spacing: 100.0,
            }
            .generate(),
        )
    }

    fn corners(g: &RoadGraph) -> Vec<VertexId> {
        [
            Point::new(0.0, 0.0),
            Point::new(300.0, 0.0),
            Point::new(300.0, 300.0),
            Point::new(0.0, 300.0),
        ]
        .iter()
        .map(|&p| g.nearest_vertex(p).unwrap())
        .collect()
    }

    #[test]
    fn visits_all_stops_cyclically() {
        let g = grid();
        let stops = corners(&g);
        let stop_points: Vec<Point> = stops.iter().map(|&s| g.position(s)).collect();
        let cfg = RouteConfig {
            stops,
            speed: 10.0,
            stop_wait: 5.0,
        };
        let mut rng = SimRng::seed_from_u64(3);
        let mut m = MapRouteMovement::new(g, cfg, &mut rng);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut visited = vec![false; 4];
        for _ in 0..2_000 {
            let p = m.step(now, dt);
            now += dt;
            for (i, &sp) in stop_points.iter().enumerate() {
                if p.distance(sp) < 0.5 {
                    visited[i] = true;
                }
            }
        }
        assert!(visited.iter().all(|&v| v), "visited = {visited:?}");
    }

    #[test]
    fn constant_speed_while_driving() {
        let g = grid();
        let stops = corners(&g);
        let cfg = RouteConfig {
            stops,
            speed: 10.0,
            stop_wait: 0.0,
        };
        let mut rng = SimRng::seed_from_u64(4);
        let mut m = MapRouteMovement::new(g, cfg, &mut rng);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut prev = m.position();
        // Arrival snap absorbs the floored sub-millisecond remainder.
        let limit = 10.0 * 1.001 + 1e-9;
        for _ in 0..500 {
            let p = m.step(now, dt);
            now += dt;
            let d = prev.distance(p);
            assert!(d <= limit, "step of {d} m at {now}");
            prev = p;
        }
    }

    #[test]
    fn lazy_advance_matches_stepping() {
        let g = grid();
        let stops = corners(&g);
        let cfg = RouteConfig {
            stops,
            speed: 7.0,
            stop_wait: 4.0,
        };
        let mut rng_a = SimRng::seed_from_u64(5);
        let mut rng_b = SimRng::seed_from_u64(5);
        let mut every_tick = MapRouteMovement::new(g.clone(), cfg.clone(), &mut rng_a);
        let mut lazy = MapRouteMovement::new(g, cfg, &mut rng_b);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..3_000 {
            let end = now + dt;
            let reference = every_tick.step(now, dt);
            if lazy.next_decision_time() <= end {
                lazy.advance_to(end);
                assert_eq!(reference, lazy.position(), "diverged at {end}");
            }
            assert_eq!(
                reference,
                lazy.motion().position_at(end),
                "segment diverged at {end}"
            );
            now = end;
        }
    }

    #[test]
    #[should_panic(expected = "at least two stops")]
    fn rejects_single_stop() {
        let g = grid();
        let cfg = RouteConfig {
            stops: vec![VertexId(0)],
            speed: 10.0,
            stop_wait: 1.0,
        };
        cfg.validate(&g);
    }

    #[test]
    #[should_panic(expected = "outside map")]
    fn rejects_out_of_range_stop() {
        let g = grid();
        let cfg = RouteConfig {
            stops: vec![VertexId(0), VertexId(10_000)],
            speed: 10.0,
            stop_wait: 1.0,
        };
        cfg.validate(&g);
    }
}

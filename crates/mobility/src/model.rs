//! The movement-model trait and the stationary model.
//!
//! # The motion segment protocol
//!
//! Every model exposes its current motion as a piecewise-linear
//! [`Segment`]: position ≡ `origin + velocity · (t − start)`
//! over `[start, until]`. The engine's two disciplines both evaluate positions
//! through that one closed form — the ticked loop via [`MovementModel::step`]
//! (which is just `advance_to(now + dt)`), the event-driven loop via the
//! world's kinematics columns — so analytically computed positions are
//! bit-identical to stepped ones.
//!
//! Decision boundaries (wait expiry, leg arrival) happen at the *boundary
//! time*, not at the end of whatever tick observed them: RNG draws and new
//! segments are anchored to `until`, which makes the trajectory independent
//! of the call pattern (stepping every tick vs. jumping straight to the
//! deadline).

use crate::snapshot::MoverSnapshot;
use vdtn_geo::{Point, Segment};
use vdtn_sim_core::{SimDuration, SimTime, StateHash};

/// Minimum length of any waiting segment. A parked phase always lasts at
/// least one millisecond, which guarantees `advance_to` makes progress even
/// when a drawn wait quantises to zero.
pub(crate) const MIN_WAIT: SimDuration = SimDuration::from_millis(1);

/// Convert fractional seconds to a duration rounding *down* to the
/// millisecond grid. Leg durations must floor: a segment that expires at or
/// before the true arrival time never drives past its waypoint, so positions
/// stay on the road and deadline math stays conservative. (The crossing then
/// snaps exactly onto the waypoint, absorbing the sub-millisecond remainder.)
pub(crate) fn floor_secs(secs: f64) -> SimDuration {
    debug_assert!(secs.is_finite() && secs >= 0.0, "bad duration {secs}");
    SimDuration::from_millis((secs * 1000.0).floor() as u64)
}

/// A node's movement behaviour.
///
/// Implementations own all their state (current position, pending path,
/// per-node RNG stream) so the engine can hold them as `Box<dyn MovementModel>`
/// and advance them independently — including in parallel, hence `Send`.
pub trait MovementModel: Send {
    /// Advance the model to absolute time `t`, crossing every decision
    /// boundary (wait expiry, waypoint arrival) on the way, and return the
    /// position at `t`.
    ///
    /// Contract: RNG draws triggered by a boundary use the *boundary time*,
    /// never `t`, so calling `advance_to(b); advance_to(t)` for any
    /// intermediate `b` yields exactly the same state and trajectory as
    /// calling `advance_to(t)` directly. `t` must be non-decreasing across
    /// calls.
    fn advance_to(&mut self, t: SimTime) -> Point;

    /// The current motion segment. Within `[seg.start, seg.until]` the
    /// closed form reproduces `advance_to` bit-for-bit; at `seg.until` the
    /// model makes its next decision (see
    /// [`next_decision_time`](MovementModel::next_decision_time)).
    fn motion(&self) -> Segment;

    /// Static upper bound on this node's speed over the whole run, m/s.
    /// Contact prediction uses this to bound how fast any pair can close.
    fn max_speed(&self) -> f64;

    /// Current position without advancing (the position at the last
    /// `advance_to` time).
    fn position(&self) -> Point;

    /// True for models that never move (lets the engine skip work).
    fn is_stationary(&self) -> bool {
        false
    }

    /// First future time at which advancing this model can change anything:
    /// `motion().until`. Every `advance_to(t)` with `t` strictly before it
    /// stays on the current segment — no state change, no RNG draw — so the
    /// engine may skip straight to the first tick ≥ this time.
    /// [`Stationary`] reports [`SimTime::MAX`].
    fn next_decision_time(&self) -> SimTime {
        self.motion().until
    }

    /// Tick-style wrapper: advance by `dt` ending at `now + dt`.
    fn step(&mut self, now: SimTime, dt: SimDuration) -> Point {
        self.advance_to(now + dt)
    }

    /// Closed-form position `elapsed` after the current state, without
    /// mutating the model.
    ///
    /// Exact (bit-identical to `advance_to`) while no *random* decision
    /// boundary is crossed within `elapsed`: deterministic leg changes inside
    /// a planned trip project exactly, and beyond the last waypoint (or for
    /// parked nodes, beyond the wait — whose outcome needs an RNG draw) the
    /// result conservatively clamps in place. Default: the current position
    /// (correct for anything not moving).
    fn position_at(&self, elapsed: SimDuration) -> Point {
        let _ = elapsed;
        self.position()
    }

    /// Diagnostic name for reports.
    fn name(&self) -> &'static str;

    /// Capture the model's full dynamic state for checkpointing.
    ///
    /// Restoring the snapshot with [`crate::restore_mover`] reproduces the
    /// model bit-for-bit: identical future RNG draws, boundary crossings,
    /// and positions.
    fn snapshot(&self) -> MoverSnapshot;

    /// Fold the model's *mode-invariant* semantic state into a canonical
    /// state hash: phase, motion segment, planned path, and RNG words — but
    /// not the `advance_to` clock/position anchor, which depends on how
    /// often the engine happened to call the model (see
    /// [`crate::snapshot`] module docs).
    fn hash_state(&self, h: &mut StateHash);
}

/// A node that never moves (the paper's stationary relay nodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    pos: Point,
}

impl Stationary {
    /// Place a stationary node at `pos`.
    pub fn new(pos: Point) -> Self {
        Stationary { pos }
    }
}

impl MovementModel for Stationary {
    fn advance_to(&mut self, _t: SimTime) -> Point {
        self.pos
    }

    fn motion(&self) -> Segment {
        Segment::stationary(self.pos, SimTime::ZERO, SimTime::MAX)
    }

    fn max_speed(&self) -> f64 {
        0.0
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn is_stationary(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Stationary"
    }

    fn snapshot(&self) -> MoverSnapshot {
        MoverSnapshot::Stationary { pos: self.pos }
    }

    fn hash_state(&self, h: &mut StateHash) {
        h.write_tag("mov.stationary");
        self.pos.hash_into(h);
    }
}

/// Build the motion segment for one polyline leg from `origin` towards
/// `target` at `speed` m/s, starting at `start`.
///
/// The expiry is floor-quantised ([`floor_secs`]) so the segment never
/// evaluates past the waypoint; a zero-length leg yields a degenerate
/// segment (`until == start`) that the crossing loop steps over by index.
pub(crate) fn leg_segment(origin: Point, target: Point, speed: f64, start: SimTime) -> Segment {
    let len = origin.distance(target);
    if len <= 0.0 {
        return Segment::stationary(origin, start, start);
    }
    let scale = speed / len;
    Segment {
        origin,
        velocity: Point::new((target.x - origin.x) * scale, (target.y - origin.y) * scale),
        start,
        until: start + floor_secs(len / speed),
    }
}

/// Walk deterministic leg boundaries up to time `t`.
///
/// `leg` indexes the waypoint the segment is driving towards; each crossing
/// snaps onto `path[leg]` exactly and starts the next leg at the expired
/// segment's `until`. Returns the segment active at `t` plus the new target
/// index. When the path is exhausted (arrival — the caller's cue to draw the
/// wait RNG at the returned segment's `start`) the segment is a stationary
/// sentinel parked on the final waypoint and the index equals `path.len()`.
///
/// Pure: both `advance_to` and `position_at` route through this, which is
/// what makes within-trip projections bit-identical to stepping.
pub(crate) fn project_legs(
    path: &[Point],
    mut leg: usize,
    mut seg: Segment,
    speed: f64,
    t: SimTime,
) -> (Segment, usize) {
    while seg.until < SimTime::MAX && t >= seg.until {
        let reached = path[leg];
        leg += 1;
        if leg >= path.len() {
            return (Segment::stationary(reached, seg.until, SimTime::MAX), leg);
        }
        seg = leg_segment(reached, path[leg], speed, seg.until);
    }
    (seg, leg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let mut s = Stationary::new(Point::new(5.0, 7.0));
        let p0 = s.position();
        for i in 0..10 {
            let p = s.step(SimTime::from_millis(i * 1000), SimDuration::from_secs(1));
            assert_eq!(p, p0);
        }
        assert!(s.is_stationary());
        assert_eq!(s.name(), "Stationary");
    }

    #[test]
    fn stationary_decision_time_is_never() {
        let s = Stationary::new(Point::ORIGIN);
        assert_eq!(s.next_decision_time(), SimTime::MAX);
        assert_eq!(s.position_at(SimDuration::from_hours(5)), Point::ORIGIN);
        assert!(s.motion().is_parked());
        assert_eq!(s.max_speed(), 0.0);
    }

    #[test]
    fn leg_segment_reaches_waypoint_on_the_grid() {
        // 100 m at 10 m/s = exactly 10 s: no quantisation loss.
        let s = leg_segment(
            Point::ORIGIN,
            Point::new(100.0, 0.0),
            10.0,
            SimTime::from_millis(5_000),
        );
        assert_eq!(s.until, SimTime::from_millis(15_000));
        assert_eq!(
            s.position_at(SimTime::from_millis(15_000)),
            Point::new(100.0, 0.0)
        );
    }

    #[test]
    fn leg_segment_floors_the_expiry() {
        // 100 m at 30 m/s = 3.333… s → floors to 3.333 s, so the segment
        // stops a hair short of the waypoint rather than overshooting it.
        let s = leg_segment(Point::ORIGIN, Point::new(100.0, 0.0), 30.0, SimTime::ZERO);
        assert_eq!(s.until, SimTime::from_millis(3_333));
        let end = s.position_at(s.until);
        assert!(end.x <= 100.0, "overshot the waypoint: {end}");
        assert!(
            100.0 - end.x < 30.0 * 0.001 + 1e-9,
            "stopped too short: {end}"
        );
    }

    #[test]
    fn zero_length_leg_is_degenerate() {
        let s = leg_segment(
            Point::new(3.0, 3.0),
            Point::new(3.0, 3.0),
            10.0,
            SimTime::ZERO,
        );
        assert_eq!(s.until, s.start);
        assert!(s.is_parked());
    }

    #[test]
    fn project_crosses_legs_and_snaps() {
        let path = [Point::ORIGIN, Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let seg = leg_segment(path[0], path[1], 1.0, SimTime::ZERO);
        // 15 s at 1 m/s: 10 m east (snap onto the corner), 5 m north.
        let (s, leg) = project_legs(&path, 1, seg, 1.0, SimTime::from_millis(15_000));
        assert_eq!(leg, 2);
        assert_eq!(s.origin, Point::new(10.0, 0.0));
        assert_eq!(
            s.position_at(SimTime::from_millis(15_000)),
            Point::new(10.0, 5.0)
        );
    }

    #[test]
    fn project_exhausts_path_into_sentinel() {
        let path = [Point::ORIGIN, Point::new(10.0, 0.0)];
        let seg = leg_segment(path[0], path[1], 1.0, SimTime::ZERO);
        let (s, leg) = project_legs(&path, 1, seg, 1.0, SimTime::from_millis(60_000));
        assert_eq!(leg, 2);
        assert!(s.is_parked());
        assert_eq!(s.origin, Point::new(10.0, 0.0));
        assert_eq!(s.start, SimTime::from_millis(10_000));
        assert_eq!(s.until, SimTime::MAX);
    }

    #[test]
    fn project_before_boundary_is_identity() {
        let path = [Point::ORIGIN, Point::new(10.0, 0.0)];
        let seg = leg_segment(path[0], path[1], 1.0, SimTime::ZERO);
        let (s, leg) = project_legs(&path, 1, seg, 1.0, SimTime::from_millis(4_000));
        assert_eq!(leg, 1);
        assert_eq!(s, seg);
    }
}

//! The movement-model trait and the stationary model.

use vdtn_geo::Point;
use vdtn_sim_core::{SimDuration, SimTime};

/// A node's movement behaviour, stepped once per simulation tick.
///
/// Implementations own all their state (current position, pending path,
/// per-node RNG stream) so the engine can hold them as `Box<dyn MovementModel>`
/// and step them independently — including in parallel, hence `Send`.
pub trait MovementModel: Send {
    /// Advance the model by `dt` ending at absolute time `now + dt`.
    /// Returns the position at the end of the step.
    fn step(&mut self, now: SimTime, dt: SimDuration) -> Point;

    /// Current position without advancing.
    fn position(&self) -> Point;

    /// True for models that never move (lets the engine skip work).
    fn is_stationary(&self) -> bool {
        false
    }

    /// Diagnostic name for reports.
    fn name(&self) -> &'static str;
}

/// A node that never moves (the paper's stationary relay nodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    pos: Point,
}

impl Stationary {
    /// Place a stationary node at `pos`.
    pub fn new(pos: Point) -> Self {
        Stationary { pos }
    }
}

impl MovementModel for Stationary {
    fn step(&mut self, _now: SimTime, _dt: SimDuration) -> Point {
        self.pos
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn is_stationary(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "Stationary"
    }
}

/// Shared helper: advance along a polyline path by `dist` metres.
///
/// `leg` is the index of the current target waypoint; returns the new
/// position, updating `leg` in place. When the path is exhausted the final
/// waypoint is returned and `leg == path.len()`.
pub(crate) fn advance_along_path(
    path: &[Point],
    pos: Point,
    leg: &mut usize,
    mut dist: f64,
) -> Point {
    let mut cur = pos;
    while *leg < path.len() && dist > 0.0 {
        let target = path[*leg];
        let to_target = cur.distance(target);
        if dist >= to_target {
            dist -= to_target;
            cur = target;
            *leg += 1;
        } else {
            cur = cur.advance_towards(target, dist);
            dist = 0.0;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let mut s = Stationary::new(Point::new(5.0, 7.0));
        let p0 = s.position();
        for i in 0..10 {
            let p = s.step(SimTime::from_millis(i * 1000), SimDuration::from_secs(1));
            assert_eq!(p, p0);
        }
        assert!(s.is_stationary());
        assert_eq!(s.name(), "Stationary");
    }

    #[test]
    fn advance_partial_leg() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 4.0);
        assert_eq!(p, Point::new(4.0, 0.0));
        assert_eq!(leg, 0);
    }

    #[test]
    fn advance_across_legs() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 15.0);
        assert_eq!(p, Point::new(10.0, 5.0));
        assert_eq!(leg, 1);
    }

    #[test]
    fn advance_exhausts_path() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 1000.0);
        assert_eq!(p, Point::new(10.0, 10.0));
        assert_eq!(leg, 2);
    }

    #[test]
    fn advance_zero_distance() {
        let path = [Point::new(10.0, 0.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::new(3.0, 0.0), &mut leg, 0.0);
        assert_eq!(p, Point::new(3.0, 0.0));
        assert_eq!(leg, 0);
    }
}

//! The movement-model trait and the stationary model.

use vdtn_geo::Point;
use vdtn_sim_core::{SimDuration, SimTime};

/// A node's movement behaviour, stepped once per simulation tick.
///
/// Implementations own all their state (current position, pending path,
/// per-node RNG stream) so the engine can hold them as `Box<dyn MovementModel>`
/// and step them independently — including in parallel, hence `Send`.
pub trait MovementModel: Send {
    /// Advance the model by `dt` ending at absolute time `now + dt`.
    /// Returns the position at the end of the step.
    fn step(&mut self, now: SimTime, dt: SimDuration) -> Point;

    /// Current position without advancing.
    fn position(&self) -> Point;

    /// True for models that never move (lets the engine skip work).
    fn is_stationary(&self) -> bool {
        false
    }

    /// Earliest future time at which stepping this model can have any effect.
    ///
    /// This is the hook the event-driven engine schedules movement wake-ups
    /// from, and it carries a strict contract:
    ///
    /// * `Some(t)` — every [`step`](MovementModel::step) whose end time is
    ///   strictly before `t` is a **pure no-op**: position unchanged, no
    ///   internal state change, no RNG draw. The engine may therefore skip
    ///   those calls entirely and wake the model at the first tick ≥ `t`.
    ///   Parked vehicles return their wait deadline; [`Stationary`] returns
    ///   [`SimTime::MAX`].
    /// * `None` — the model is actively moving and must be stepped every
    ///   tick (the conservative default).
    fn next_decision_time(&self) -> Option<SimTime> {
        None
    }

    /// Closed-form position `elapsed` after the current state, without
    /// mutating the model.
    ///
    /// Valid while no decision boundary (waypoint arrival, wait expiry) is
    /// crossed within `elapsed`; beyond one the result is a conservative
    /// extrapolation (it clamps at the final waypoint for path-based
    /// models). This never replaces per-tick stepping where bit-identical
    /// trajectories matter — iterated stepping accumulates float rounding
    /// differently — but gives analysis code and coarse look-ahead (e.g.
    /// contact-recheck bounds) an `O(1)` interpolation. Default: the current
    /// position (correct for anything not moving).
    fn position_at(&self, elapsed: SimDuration) -> Point {
        let _ = elapsed;
        self.position()
    }

    /// Diagnostic name for reports.
    fn name(&self) -> &'static str;
}

/// A node that never moves (the paper's stationary relay nodes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    pos: Point,
}

impl Stationary {
    /// Place a stationary node at `pos`.
    pub fn new(pos: Point) -> Self {
        Stationary { pos }
    }
}

impl MovementModel for Stationary {
    fn step(&mut self, _now: SimTime, _dt: SimDuration) -> Point {
        self.pos
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn is_stationary(&self) -> bool {
        true
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        Some(SimTime::MAX)
    }

    fn name(&self) -> &'static str {
        "Stationary"
    }
}

/// Shared helper: advance along a polyline path by `dist` metres.
///
/// `leg` is the index of the current target waypoint; returns the new
/// position, updating `leg` in place. When the path is exhausted the final
/// waypoint is returned and `leg == path.len()`.
pub(crate) fn advance_along_path(
    path: &[Point],
    pos: Point,
    leg: &mut usize,
    mut dist: f64,
) -> Point {
    let mut cur = pos;
    while *leg < path.len() && dist > 0.0 {
        let target = path[*leg];
        let to_target = cur.distance(target);
        if dist >= to_target {
            dist -= to_target;
            cur = target;
            *leg += 1;
        } else {
            cur = cur.advance_towards(target, dist);
            dist = 0.0;
        }
    }
    cur
}

/// Pure counterpart of [`advance_along_path`]: the position `dist` metres
/// further along the path, without committing the move. Used by
/// [`MovementModel::position_at`] implementations.
pub(crate) fn peek_along_path(path: &[Point], pos: Point, leg: usize, dist: f64) -> Point {
    let mut leg = leg;
    advance_along_path(path, pos, &mut leg, dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let mut s = Stationary::new(Point::new(5.0, 7.0));
        let p0 = s.position();
        for i in 0..10 {
            let p = s.step(SimTime::from_millis(i * 1000), SimDuration::from_secs(1));
            assert_eq!(p, p0);
        }
        assert!(s.is_stationary());
        assert_eq!(s.name(), "Stationary");
    }

    #[test]
    fn advance_partial_leg() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 4.0);
        assert_eq!(p, Point::new(4.0, 0.0));
        assert_eq!(leg, 0);
    }

    #[test]
    fn advance_across_legs() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 15.0);
        assert_eq!(p, Point::new(10.0, 5.0));
        assert_eq!(leg, 1);
    }

    #[test]
    fn advance_exhausts_path() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::ORIGIN, &mut leg, 1000.0);
        assert_eq!(p, Point::new(10.0, 10.0));
        assert_eq!(leg, 2);
    }

    #[test]
    fn advance_zero_distance() {
        let path = [Point::new(10.0, 0.0)];
        let mut leg = 0;
        let p = advance_along_path(&path, Point::new(3.0, 0.0), &mut leg, 0.0);
        assert_eq!(p, Point::new(3.0, 0.0));
        assert_eq!(leg, 0);
    }

    #[test]
    fn peek_does_not_commit() {
        let path = [Point::new(10.0, 0.0), Point::new(10.0, 10.0)];
        let leg = 0;
        let p = peek_along_path(&path, Point::ORIGIN, leg, 15.0);
        assert_eq!(p, Point::new(10.0, 5.0));
        // Peeking twice from the same state yields the same answer.
        assert_eq!(p, peek_along_path(&path, Point::ORIGIN, leg, 15.0));
    }

    #[test]
    fn stationary_decision_time_is_never() {
        let s = Stationary::new(Point::ORIGIN);
        assert_eq!(s.next_decision_time(), Some(SimTime::MAX));
        assert_eq!(s.position_at(SimDuration::from_hours(5)), Point::ORIGIN);
    }
}

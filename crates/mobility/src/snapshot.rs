//! Movement-model checkpointing.
//!
//! [`MoverSnapshot`] is the serialisable image of a movement model's full
//! dynamic state — RNG stream, phase, planned path, clock anchor. Restoring
//! one via [`restore_mover`] reproduces the original model bit-for-bit: every
//! future RNG draw, boundary crossing, and closed-form position is identical
//! to the uninterrupted run, because the snapshot captures exactly the
//! private fields the model evolves and nothing derived.
//!
//! # Snapshot vs. hash
//!
//! The snapshot includes `pos`/`clock` (the `position_at` anchor): they are
//! needed to resume. The canonical *hash* ([`MovementModel::hash_state`])
//! deliberately excludes them — mid-leg they depend on how often the engine
//! happened to call `advance_to`, which differs between the ticked and
//! event-driven disciplines even though the trajectories are bit-identical.
//! The segment protocol guarantees `motion()` and all future decisions are
//! mode-invariant, so the hash folds the segment, the remaining path, and
//! the RNG words instead.

use crate::route::RouteConfig;
use crate::spmb::SpmbConfig;
use crate::waypoint::WaypointConfig;
use crate::{MapRouteMovement, MovementModel, RandomWaypoint, ShortestPathMapBased, Stationary};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdtn_geo::{Point, RoadGraph, Segment, VertexId};
use vdtn_sim_core::{SimRng, SimTime};

/// Phase image for path-driving models (SPMB and fixed-route).
///
/// `speed` mirrors the SPMB per-trip draw; for [`MapRouteMovement`] it
/// records the config cruise speed (redundant but kept so the variant is
/// self-describing).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathPhase {
    /// Parked on a stationary segment until `seg.until`.
    Waiting { seg: Segment },
    /// Driving along `path`; `leg` indexes the waypoint the segment drives
    /// towards.
    Driving {
        path: Vec<Point>,
        leg: usize,
        speed: f64,
        seg: Segment,
    },
}

/// Phase image for the free-space waypoint model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FreePhase {
    /// Paused until `seg.until`.
    Waiting { seg: Segment },
    /// Straight-line leg towards `target`.
    Moving { target: Point, seg: Segment },
}

/// Full dynamic state of one movement model, ready for serialisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MoverSnapshot {
    /// A node that never moves.
    Stationary { pos: Point },
    /// Shortest-path map-based vehicle.
    Spmb {
        cfg: SpmbConfig,
        rng: SimRng,
        pos: Point,
        clock: SimTime,
        anchor_a: VertexId,
        anchor_b: VertexId,
        phase: PathPhase,
    },
    /// Free-space random waypoint node.
    Waypoint {
        cfg: WaypointConfig,
        rng: SimRng,
        pos: Point,
        clock: SimTime,
        phase: FreePhase,
    },
    /// Cyclic fixed-route node.
    MapRoute {
        cfg: RouteConfig,
        pos: Point,
        clock: SimTime,
        next_stop: usize,
        phase: PathPhase,
    },
}

/// Rebuild a movement model from its snapshot.
///
/// `graph` is the world's road network — map-based models hold an
/// `Arc<RoadGraph>` that is scenario state, not mover state, so it travels
/// outside the snapshot and is re-attached here. Free-space and stationary
/// models ignore it.
pub fn restore_mover(snap: MoverSnapshot, graph: &Arc<RoadGraph>) -> Box<dyn MovementModel> {
    match snap {
        MoverSnapshot::Stationary { pos } => Box::new(Stationary::new(pos)),
        MoverSnapshot::Spmb {
            cfg,
            rng,
            pos,
            clock,
            anchor_a,
            anchor_b,
            phase,
        } => Box::new(ShortestPathMapBased::from_snapshot(
            graph.clone(),
            cfg,
            rng,
            pos,
            clock,
            anchor_a,
            anchor_b,
            phase,
        )),
        MoverSnapshot::Waypoint {
            cfg,
            rng,
            pos,
            clock,
            phase,
        } => Box::new(RandomWaypoint::from_snapshot(cfg, rng, pos, clock, phase)),
        MoverSnapshot::MapRoute {
            cfg,
            pos,
            clock,
            next_stop,
            phase,
        } => Box::new(MapRouteMovement::from_snapshot(
            graph.clone(),
            cfg,
            pos,
            clock,
            next_stop,
            phase,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_geo::{Bounds, GridMapGen};
    use vdtn_sim_core::{SimDuration, StateHash};

    fn grid() -> Arc<RoadGraph> {
        Arc::new(
            GridMapGen {
                cols: 5,
                rows: 5,
                spacing: 100.0,
            }
            .generate(),
        )
    }

    /// Drive `model` for `secs` one-second steps starting at `from`.
    fn drive(model: &mut dyn MovementModel, from: SimTime, secs: u64) -> Vec<Point> {
        let dt = SimDuration::from_secs(1);
        let mut now = from;
        let mut trace = Vec::with_capacity(secs as usize);
        for _ in 0..secs {
            trace.push(model.step(now, dt));
            now += dt;
        }
        trace
    }

    fn hash_of(m: &dyn MovementModel) -> u64 {
        let mut h = StateHash::new();
        m.hash_state(&mut h);
        h.finish()
    }

    #[test]
    fn spmb_snapshot_round_trips_bitwise() {
        let g = grid();
        let cfg = SpmbConfig {
            wait_lo: 2.0,
            wait_hi: 20.0,
            ..SpmbConfig::default()
        };
        let mut original = ShortestPathMapBased::new(g.clone(), cfg, SimRng::seed_from_u64(42));
        // Advance into the middle of the run (mid-trip for most seeds).
        drive(&mut original, SimTime::ZERO, 500);

        let snap = original.snapshot();
        let mut restored = restore_mover(snap.clone(), &g);
        assert_eq!(snap, restored.snapshot(), "snapshot must round-trip");
        assert_eq!(hash_of(&original), hash_of(restored.as_ref()));

        let resume = SimTime::from_millis(500_000);
        let a = drive(&mut original, resume, 2_000);
        let b = drive(restored.as_mut(), resume, 2_000);
        assert_eq!(a, b, "restored trajectory diverged");
        assert_eq!(hash_of(&original), hash_of(restored.as_mut()));
    }

    #[test]
    fn waypoint_snapshot_round_trips_bitwise() {
        let mut bounds = Bounds::empty();
        bounds.expand(Point::new(0.0, 0.0));
        bounds.expand(Point::new(500.0, 500.0));
        let cfg = WaypointConfig {
            bounds,
            speed_lo: 2.0,
            speed_hi: 8.0,
            wait_lo: 0.0,
            wait_hi: 5.0,
        };
        let mut original = RandomWaypoint::new(cfg, SimRng::seed_from_u64(7));
        drive(&mut original, SimTime::ZERO, 333);

        let g = grid(); // unused by the model; restore_mover still wants one
        let mut restored = restore_mover(original.snapshot(), &g);
        assert_eq!(hash_of(&original), hash_of(restored.as_ref()));
        let resume = SimTime::from_millis(333_000);
        assert_eq!(
            drive(&mut original, resume, 1_500),
            drive(restored.as_mut(), resume, 1_500)
        );
    }

    #[test]
    fn route_snapshot_round_trips_bitwise() {
        let g = grid();
        let stops: Vec<VertexId> = vec![VertexId(0), VertexId(4), VertexId(24), VertexId(20)];
        let cfg = RouteConfig {
            stops,
            speed: 9.0,
            stop_wait: 6.0,
        };
        let mut rng = SimRng::seed_from_u64(5);
        let mut original = MapRouteMovement::new(g.clone(), cfg, &mut rng);
        drive(&mut original, SimTime::ZERO, 77);

        let mut restored = restore_mover(original.snapshot(), &g);
        assert_eq!(hash_of(&original), hash_of(restored.as_ref()));
        let resume = SimTime::from_millis(77_000);
        assert_eq!(
            drive(&mut original, resume, 1_000),
            drive(restored.as_mut(), resume, 1_000)
        );
    }

    #[test]
    fn stationary_snapshot_round_trips() {
        let s = Stationary::new(Point::new(3.0, 4.0));
        let g = grid();
        let restored = restore_mover(s.snapshot(), &g);
        assert_eq!(restored.position(), Point::new(3.0, 4.0));
        assert!(restored.is_stationary());
        assert_eq!(hash_of(&s), hash_of(restored.as_ref()));
    }

    #[test]
    fn hash_distinguishes_divergent_movers() {
        let g = grid();
        let cfg = SpmbConfig::default();
        let a = ShortestPathMapBased::new(g.clone(), cfg, SimRng::seed_from_u64(1));
        let b = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(2));
        assert_ne!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn hash_ignores_mid_segment_clock() {
        // Advancing within one segment (no boundary crossed, no RNG draw)
        // must not change the canonical hash: the clock/pos anchor is
        // call-pattern-dependent and is excluded by design.
        let g = grid();
        let cfg = SpmbConfig {
            wait_lo: 100.0,
            wait_hi: 200.0,
            ..SpmbConfig::default()
        };
        let mut m = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(3));
        let before = hash_of(&m);
        // The initial wait lasts at least 100 s; advance 1 s into it.
        m.advance_to(SimTime::from_millis(1_000));
        assert_eq!(before, hash_of(&m));
    }
}

//! Shortest-path map-based movement — the paper's vehicle model.
//!
//! State machine per vehicle:
//!
//! ```text
//!            pick random destination vertex,
//!            random speed U[speed_lo, speed_hi]
//!   Waiting ────────────────────────────────────▶ Driving (along shortest path)
//!      ▲                                              │ arrives
//!      └────────── wait U[wait_lo, wait_hi] ──────────┘
//! ```
//!
//! Vehicles start at a random road vertex in the Waiting state with a random
//! initial residual wait (avoids the thundering-herd of every vehicle
//! departing at t = 0).
//!
//! Motion follows the segment protocol (see [`crate::model`]): each driving
//! leg is a [`Segment`] evaluated in closed form, transitions happen at
//! segment expiry with RNG draws anchored to the boundary time, and
//! [`MovementModel::position_at`] projects across leg boundaries exactly —
//! a whole trip is deterministic once planned.

use crate::model::{leg_segment, project_legs, MovementModel, MIN_WAIT};
use crate::snapshot::{MoverSnapshot, PathPhase};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdtn_geo::{astar, distance_lower_bound, Point, RoadGraph, Segment, VertexId};
use vdtn_sim_core::{SimDuration, SimRng, SimTime, StateHash};

/// Parameters for [`ShortestPathMapBased`]. Defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmbConfig {
    /// Minimum trip speed, m/s.
    pub speed_lo: f64,
    /// Maximum trip speed, m/s.
    pub speed_hi: f64,
    /// Minimum pause at a destination, seconds.
    pub wait_lo: f64,
    /// Maximum pause at a destination, seconds.
    pub wait_hi: f64,
}

impl Default for SpmbConfig {
    /// Paper scenario: 30–50 km/h speeds, 5–15 min waits.
    fn default() -> Self {
        SpmbConfig {
            speed_lo: 30.0 / 3.6,
            speed_hi: 50.0 / 3.6,
            wait_lo: 5.0 * 60.0,
            wait_hi: 15.0 * 60.0,
        }
    }
}

impl SpmbConfig {
    /// Validate ranges; panics with a descriptive message on nonsense input.
    pub fn validate(&self) {
        assert!(
            self.speed_lo > 0.0 && self.speed_hi >= self.speed_lo,
            "invalid speed range [{}, {}]",
            self.speed_lo,
            self.speed_hi
        );
        assert!(
            self.wait_lo >= 0.0 && self.wait_hi >= self.wait_lo,
            "invalid wait range [{}, {}]",
            self.wait_lo,
            self.wait_hi
        );
    }
}

enum Phase {
    /// Parked on a stationary segment until `seg.until`.
    Waiting { seg: Segment },
    /// Driving along `path` (waypoint positions); `leg` indexes the waypoint
    /// the active segment drives towards, `speed` is this trip's m/s.
    Driving {
        path: Vec<Point>,
        leg: usize,
        speed: f64,
        seg: Segment,
    },
}

/// The paper's vehicle movement model. See module docs.
///
/// Destinations are uniform random *road points* — a road edge chosen with
/// probability proportional to its length, then a uniform offset along it —
/// matching ONE's "selects a new random map location". Parking mid-block
/// (rather than only at intersections) is what keeps contact durations
/// realistic: two vehicles rarely pause within radio range of each other.
pub struct ShortestPathMapBased {
    graph: Arc<RoadGraph>,
    cfg: SpmbConfig,
    rng: SimRng,
    pos: Point,
    /// Time of the last `advance_to` (the anchor for `position_at`).
    clock: SimTime,
    /// The two road vertices the current position lies between (equal when
    /// parked exactly at an intersection). These are the legal ways back
    /// onto the vertex graph when planning the next trip.
    anchor_a: VertexId,
    anchor_b: VertexId,
    phase: Phase,
}

impl ShortestPathMapBased {
    /// Create a vehicle on `graph` with its own RNG stream.
    ///
    /// The vehicle starts waiting at a uniformly random road point, with an
    /// initial residual wait drawn from `[0, wait_hi]`.
    pub fn new(graph: Arc<RoadGraph>, cfg: SpmbConfig, mut rng: SimRng) -> Self {
        cfg.validate();
        assert!(graph.vertex_count() > 0, "map has no vertices");
        let (pos, anchor_a, anchor_b) = random_road_point(&graph, &mut rng);
        let initial_wait = SimDuration::from_secs_f64(rng.range_f64(0.0, cfg.wait_hi.max(1.0)));
        let until = SimTime::ZERO + initial_wait.max(MIN_WAIT);
        ShortestPathMapBased {
            graph,
            cfg,
            rng,
            pos,
            clock: SimTime::ZERO,
            anchor_a,
            anchor_b,
            phase: Phase::Waiting {
                seg: Segment::stationary(pos, SimTime::ZERO, until),
            },
        }
    }

    /// Rebuild a vehicle from its [`MoverSnapshot::Spmb`] parts. Exact
    /// inverse of [`MovementModel::snapshot`]: no RNG draws, no validation
    /// beyond the config's own invariants.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_snapshot(
        graph: Arc<RoadGraph>,
        cfg: SpmbConfig,
        rng: SimRng,
        pos: Point,
        clock: SimTime,
        anchor_a: VertexId,
        anchor_b: VertexId,
        phase: PathPhase,
    ) -> Self {
        cfg.validate();
        let phase = match phase {
            PathPhase::Waiting { seg } => Phase::Waiting { seg },
            PathPhase::Driving {
                path,
                leg,
                speed,
                seg,
            } => Phase::Driving {
                path,
                leg,
                speed,
                seg,
            },
        };
        ShortestPathMapBased {
            graph,
            cfg,
            rng,
            pos,
            clock,
            anchor_a,
            anchor_b,
            phase,
        }
    }

    /// Plan the next trip, departing at `depart` (the wait's expiry — all
    /// RNG draws here are anchored to that boundary time).
    fn plan_next_trip(&mut self, depart: SimTime) {
        let (dest, dest_a, dest_b) = random_road_point(&self.graph, &mut self.rng);

        // Choose the cheapest combination of exit anchor (how we rejoin the
        // vertex graph) and entry anchor (where we leave it for the final
        // off-vertex stretch). Up to four A* runs per trip; a pair whose
        // admissible lower bound already reaches the best exact total is
        // skipped — the bound never exceeds the true length and the update
        // below is strictly `<`, so the pruned loop picks the same winner
        // (ties stay first-in-order) while usually running a single search.
        let mut best: Option<(f64, Vec<Point>)> = None;
        for &exit in &[self.anchor_a, self.anchor_b] {
            for &entry in &[dest_a, dest_b] {
                let head = self.pos.distance(self.graph.position(exit));
                let tail = self.graph.position(entry).distance(dest);
                if let Some((c, _)) = &best {
                    if head + distance_lower_bound(&self.graph, exit, entry) + tail >= *c {
                        continue;
                    }
                }
                let Some(result) = astar(&self.graph, exit, entry) else {
                    continue;
                };
                let total = head + result.length + tail;
                if best.as_ref().map(|(c, _)| total < *c).unwrap_or(true) {
                    let mut path: Vec<Point> = Vec::with_capacity(result.vertices.len() + 2);
                    path.push(self.pos);
                    path.extend(result.vertices.iter().map(|&v| self.graph.position(v)));
                    path.push(dest);
                    best = Some((total, path));
                }
            }
        }

        match best {
            Some((_, path)) => {
                let speed = self.rng.range_f64(self.cfg.speed_lo, self.cfg.speed_hi);
                self.anchor_a = dest_a;
                self.anchor_b = dest_b;
                let seg = leg_segment(path[0], path[1], speed, depart);
                self.phase = Phase::Driving {
                    path,
                    leg: 1, // element 0 is the current position
                    speed,
                    seg,
                };
            }
            None => {
                // Unreachable destination (disconnected map): wait and retry.
                let wait = self.rng.range_f64(self.cfg.wait_lo, self.cfg.wait_hi);
                let until = depart + SimDuration::from_secs_f64(wait.max(1.0)).max(MIN_WAIT);
                self.phase = Phase::Waiting {
                    seg: Segment::stationary(self.pos, depart, until),
                };
            }
        }
    }
}

/// Uniform random point on the road network: an edge chosen proportionally
/// to its length, then a uniform offset. Returns the point and the edge's
/// endpoint vertices. Falls back to a random vertex on edgeless maps.
fn random_road_point(graph: &RoadGraph, rng: &mut SimRng) -> (Point, VertexId, VertexId) {
    if graph.edge_count() == 0 {
        let v = VertexId(rng.index(graph.vertex_count()) as u32);
        return (graph.position(v), v, v);
    }
    // Length-proportional edge choice via one uniform draw over the total
    // street length, answered from the graph's cached length-prefix table —
    // bit-identical to a sequential `acc >= target` scan (including its
    // rounding fallback to the last edge), but O(log E) per trip.
    let target = rng.range_f64(0.0, graph.total_length());
    let chosen = graph.edge_at_accumulated_length(target);
    let (a, b) = graph.edge_endpoints(chosen);
    let t = rng.next_f64();
    let p = graph.position(a).lerp(graph.position(b), t);
    (p, a, b)
}

impl MovementModel for ShortestPathMapBased {
    fn advance_to(&mut self, t: SimTime) -> Point {
        loop {
            match &mut self.phase {
                Phase::Waiting { seg } => {
                    if t < seg.until {
                        self.clock = t;
                        return self.pos;
                    }
                    let depart = seg.until;
                    self.plan_next_trip(depart);
                }
                Phase::Driving {
                    path,
                    leg,
                    speed,
                    seg,
                } => {
                    let (nseg, nleg) = project_legs(path, *leg, *seg, *speed, t);
                    if nleg < path.len() {
                        *seg = nseg;
                        *leg = nleg;
                        self.pos = nseg.position_at(t);
                        self.clock = t;
                        return self.pos;
                    }
                    // Arrived at `nseg.start`, parked exactly on the final
                    // waypoint: schedule the paper's 5–15 min wait from the
                    // arrival instant.
                    let arrival = nseg.start;
                    let parked = nseg.origin;
                    self.pos = parked;
                    let wait = self.rng.range_f64(self.cfg.wait_lo, self.cfg.wait_hi);
                    let until = arrival + SimDuration::from_secs_f64(wait).max(MIN_WAIT);
                    self.phase = Phase::Waiting {
                        seg: Segment::stationary(parked, arrival, until),
                    };
                }
            }
        }
    }

    fn motion(&self) -> Segment {
        match &self.phase {
            Phase::Waiting { seg } => *seg,
            Phase::Driving { seg, .. } => *seg,
        }
    }

    fn max_speed(&self) -> f64 {
        self.cfg.speed_hi
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn position_at(&self, elapsed: SimDuration) -> Point {
        let t = self.clock + elapsed;
        match &self.phase {
            Phase::Waiting { .. } => self.pos,
            Phase::Driving {
                path,
                leg,
                speed,
                seg,
                ..
            } => {
                let (nseg, _) = project_legs(path, *leg, *seg, *speed, t);
                nseg.position_at(t)
            }
        }
    }

    fn name(&self) -> &'static str {
        "ShortestPathMapBased"
    }

    fn snapshot(&self) -> MoverSnapshot {
        let phase = match &self.phase {
            Phase::Waiting { seg } => PathPhase::Waiting { seg: *seg },
            Phase::Driving {
                path,
                leg,
                speed,
                seg,
            } => PathPhase::Driving {
                path: path.clone(),
                leg: *leg,
                speed: *speed,
                seg: *seg,
            },
        };
        MoverSnapshot::Spmb {
            cfg: self.cfg,
            rng: self.rng.clone(),
            pos: self.pos,
            clock: self.clock,
            anchor_a: self.anchor_a,
            anchor_b: self.anchor_b,
            phase,
        }
    }

    fn hash_state(&self, h: &mut StateHash) {
        h.write_tag("mov.spmb");
        h.write_u32(self.anchor_a.0);
        h.write_u32(self.anchor_b.0);
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        match &self.phase {
            Phase::Waiting { seg } => {
                h.write_u8(0);
                seg.hash_into(h);
            }
            Phase::Driving {
                path,
                leg,
                speed,
                seg,
            } => {
                h.write_u8(1);
                h.write_len(path.len());
                for p in path {
                    p.hash_into(h);
                }
                h.write_len(*leg);
                h.write_f64(*speed);
                seg.hash_into(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_geo::GridMapGen;

    fn grid() -> Arc<RoadGraph> {
        Arc::new(
            GridMapGen {
                cols: 5,
                rows: 5,
                spacing: 100.0,
            }
            .generate(),
        )
    }

    fn drive(model: &mut ShortestPathMapBased, secs: u64) -> Vec<Point> {
        let mut trace = Vec::with_capacity(secs as usize);
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..secs {
            trace.push(model.step(now, dt));
            now += dt;
        }
        trace
    }

    #[test]
    fn stays_on_roads() {
        let g = grid();
        let mut m = ShortestPathMapBased::new(
            g.clone(),
            SpmbConfig {
                wait_lo: 1.0,
                wait_hi: 5.0,
                ..SpmbConfig::default()
            },
            SimRng::seed_from_u64(11),
        );
        for p in drive(&mut m, 3_000) {
            // Every position must lie on (or within 1 cm of) some edge.
            let mut on_road = false;
            for e in 0..g.edge_count() {
                let (a, b) = g.edge_endpoints(vdtn_geo::EdgeId(e as u32));
                if p.distance_to_segment(g.position(a), g.position(b)) < 0.01 {
                    on_road = true;
                    break;
                }
            }
            assert!(on_road, "vehicle left the road network at {p}");
        }
    }

    #[test]
    fn respects_speed_limit() {
        let g = grid();
        let cfg = SpmbConfig {
            wait_lo: 1.0,
            wait_hi: 3.0,
            ..SpmbConfig::default()
        };
        let mut m = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(5));
        let trace = drive(&mut m, 2_000);
        // A leg boundary inside the tick snaps onto the waypoint, absorbing
        // the floored sub-millisecond remainder: allow one millisecond's
        // travel of slack on top of the per-second limit.
        let limit = cfg.speed_hi * 1.001 + 1e-9;
        for w in trace.windows(2) {
            let d = w[0].distance(w[1]);
            assert!(d <= limit, "moved {d} m in one second (limit {limit})");
        }
    }

    #[test]
    fn eventually_moves_and_pauses() {
        let g = grid();
        let mut m = ShortestPathMapBased::new(
            g,
            SpmbConfig {
                wait_lo: 10.0,
                wait_hi: 20.0,
                ..SpmbConfig::default()
            },
            SimRng::seed_from_u64(2),
        );
        let trace = drive(&mut m, 5_000);
        let moving_ticks = trace.windows(2).filter(|w| w[0] != w[1]).count();
        let still_ticks = trace.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            moving_ticks > 100,
            "should drive (moved {moving_ticks} ticks)"
        );
        assert!(still_ticks > 10, "should pause (still {still_ticks} ticks)");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid();
        let cfg = SpmbConfig::default();
        let mut a = ShortestPathMapBased::new(g.clone(), cfg, SimRng::seed_from_u64(9));
        let mut b = ShortestPathMapBased::new(g.clone(), cfg, SimRng::seed_from_u64(9));
        let mut c = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(10));
        let ta = drive(&mut a, 1_000);
        let tb = drive(&mut b, 1_000);
        let tc = drive(&mut c, 1_000);
        assert_eq!(ta, tb);
        assert_ne!(ta, tc);
    }

    #[test]
    fn skipping_to_deadlines_is_bit_identical() {
        // The event-driven engine's movement contract: between decision
        // boundaries a node need not be advanced at all — its segment's
        // closed form IS its trajectory. Advancing only at boundaries and
        // evaluating `motion()` in between must reproduce per-tick stepping
        // bit-for-bit, including every RNG draw.
        let g = grid();
        let cfg = SpmbConfig {
            wait_lo: 5.0,
            wait_hi: 40.0,
            ..SpmbConfig::default()
        };
        let mut every_tick = ShortestPathMapBased::new(g.clone(), cfg, SimRng::seed_from_u64(21));
        let mut lazy = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(21));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..4_000 {
            let end = now + dt;
            let reference = every_tick.step(now, dt);
            if lazy.next_decision_time() <= end {
                lazy.advance_to(end);
                assert_eq!(reference, lazy.position(), "diverged at {end}");
            }
            // Whether lazy advanced or not, its segment must reproduce the
            // stepped position analytically.
            assert_eq!(
                reference,
                lazy.motion().position_at(end),
                "segment diverged at {end}"
            );
            assert_eq!(every_tick.motion(), lazy.motion());
            now = end;
        }
    }

    #[test]
    fn position_at_is_exact_between_boundaries() {
        let g = grid();
        let cfg = SpmbConfig {
            wait_lo: 1.0,
            wait_hi: 2.0,
            ..SpmbConfig::default()
        };
        let mut m = ShortestPathMapBased::new(g, cfg, SimRng::seed_from_u64(6));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut checked = 0;
        for _ in 0..2_000 {
            let end = now + dt;
            let seg = m.motion();
            let driving = !seg.is_parked();
            let predicted = m.position_at(dt);
            let actual = m.step(now, dt);
            if seg.until > end {
                // No decision boundary inside the tick: the projection and
                // the exported segment are both bit-exact.
                assert_eq!(predicted, actual, "peek diverged at {end}");
                assert_eq!(seg.position_at(end), actual, "segment diverged at {end}");
                if driving {
                    checked += 1;
                }
            }
            now = end;
        }
        assert!(checked > 100, "never drove ({checked} checks)");
    }

    #[test]
    fn single_vertex_map_never_panics() {
        let mut b = vdtn_geo::RoadGraphBuilder::new();
        b.add_vertex(Point::new(1.0, 1.0));
        let g = Arc::new(b.build());
        let mut m = ShortestPathMapBased::new(
            g,
            SpmbConfig {
                wait_lo: 1.0,
                wait_hi: 2.0,
                ..SpmbConfig::default()
            },
            SimRng::seed_from_u64(1),
        );
        let trace = drive(&mut m, 100);
        assert!(trace.iter().all(|&p| p == Point::new(1.0, 1.0)));
    }

    #[test]
    #[should_panic(expected = "invalid speed range")]
    fn rejects_bad_speed() {
        SpmbConfig {
            speed_lo: 10.0,
            speed_hi: 5.0,
            ..SpmbConfig::default()
        }
        .validate();
    }
}

//! Free-space random waypoint movement.
//!
//! Classic DTN baseline model: pick a uniform point in a rectangle, move to
//! it in a straight line at a random speed, pause, repeat. Not used by the
//! paper's scenario (which is map-constrained) but included as a baseline so
//! the effect of map constraints on contact statistics can be measured.

use crate::model::MovementModel;
use serde::{Deserialize, Serialize};
use vdtn_geo::{Bounds, Point};
use vdtn_sim_core::{SimDuration, SimRng, SimTime};

/// Parameters for [`RandomWaypoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointConfig {
    /// Movement area.
    pub bounds: Bounds,
    /// Minimum leg speed, m/s.
    pub speed_lo: f64,
    /// Maximum leg speed, m/s.
    pub speed_hi: f64,
    /// Minimum pause, seconds.
    pub wait_lo: f64,
    /// Maximum pause, seconds.
    pub wait_hi: f64,
}

impl WaypointConfig {
    /// Validate ranges.
    pub fn validate(&self) {
        assert!(self.bounds.width() > 0.0 && self.bounds.height() > 0.0);
        assert!(self.speed_lo > 0.0 && self.speed_hi >= self.speed_lo);
        assert!(self.wait_lo >= 0.0 && self.wait_hi >= self.wait_lo);
    }
}

enum Phase {
    Waiting { until: SimTime },
    Moving { target: Point, speed: f64 },
}

/// Free-space random waypoint model.
pub struct RandomWaypoint {
    cfg: WaypointConfig,
    rng: SimRng,
    pos: Point,
    phase: Phase,
}

impl RandomWaypoint {
    /// Create a node at a uniform random position inside the bounds.
    pub fn new(cfg: WaypointConfig, mut rng: SimRng) -> Self {
        cfg.validate();
        let pos = Point::new(
            rng.range_f64(cfg.bounds.min.x, cfg.bounds.max.x),
            rng.range_f64(cfg.bounds.min.y, cfg.bounds.max.y),
        );
        RandomWaypoint {
            cfg,
            rng,
            pos,
            phase: Phase::Waiting {
                until: SimTime::ZERO,
            },
        }
    }

    fn pick_leg(&mut self) {
        let target = Point::new(
            self.rng
                .range_f64(self.cfg.bounds.min.x, self.cfg.bounds.max.x),
            self.rng
                .range_f64(self.cfg.bounds.min.y, self.cfg.bounds.max.y),
        );
        let speed = self.rng.range_f64(self.cfg.speed_lo, self.cfg.speed_hi);
        self.phase = Phase::Moving { target, speed };
    }
}

impl MovementModel for RandomWaypoint {
    fn step(&mut self, now: SimTime, dt: SimDuration) -> Point {
        let end = now + dt;
        match self.phase {
            Phase::Waiting { until } => {
                if end >= until {
                    self.pick_leg();
                }
            }
            Phase::Moving { target, speed } => {
                let dist = speed * dt.as_secs_f64();
                self.pos = self.pos.advance_towards(target, dist);
                if self.pos.distance(target) < 1e-9 {
                    let wait = self.rng.range_f64(self.cfg.wait_lo, self.cfg.wait_hi);
                    self.phase = Phase::Waiting {
                        until: end + SimDuration::from_secs_f64(wait),
                    };
                }
            }
        }
        self.pos
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn next_decision_time(&self) -> Option<SimTime> {
        match self.phase {
            Phase::Waiting { until } => Some(until),
            Phase::Moving { .. } => None,
        }
    }

    fn position_at(&self, elapsed: SimDuration) -> Point {
        match self.phase {
            Phase::Waiting { .. } => self.pos,
            Phase::Moving { target, speed } => self
                .pos
                .advance_towards(target, speed * elapsed.as_secs_f64()),
        }
    }

    fn name(&self) -> &'static str {
        "RandomWaypoint"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WaypointConfig {
        let mut bounds = Bounds::empty();
        bounds.expand(Point::new(0.0, 0.0));
        bounds.expand(Point::new(1000.0, 800.0));
        WaypointConfig {
            bounds,
            speed_lo: 5.0,
            speed_hi: 15.0,
            wait_lo: 0.0,
            wait_hi: 10.0,
        }
    }

    #[test]
    fn stays_in_bounds() {
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(1));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let p = m.step(now, dt);
            now += dt;
            assert!(cfg().bounds.contains(p), "escaped bounds at {p}");
        }
    }

    #[test]
    fn respects_speed_cap() {
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(2));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut prev = m.position();
        for _ in 0..5_000 {
            let p = m.step(now, dt);
            now += dt;
            assert!(prev.distance(p) <= 15.0 + 1e-9);
            prev = p;
        }
    }

    #[test]
    fn covers_the_area() {
        // After a long run positions should span most of the rectangle.
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(3));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut bounds = Bounds::empty();
        for _ in 0..50_000 {
            bounds.expand(m.step(now, dt));
            now += dt;
        }
        assert!(bounds.width() > 800.0, "width {}", bounds.width());
        assert!(bounds.height() > 600.0, "height {}", bounds.height());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(4));
        let mut b = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(4));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            assert_eq!(a.step(now, dt), b.step(now, dt));
            now += dt;
        }
    }
}

//! Free-space random waypoint movement.
//!
//! Classic DTN baseline model: pick a uniform point in a rectangle, move to
//! it in a straight line at a random speed, pause, repeat. Not used by the
//! paper's scenario (which is map-constrained) but included as a baseline so
//! the effect of map constraints on contact statistics can be measured.

use crate::model::{leg_segment, MovementModel, MIN_WAIT};
use crate::snapshot::{FreePhase, MoverSnapshot};
use serde::{Deserialize, Serialize};
use vdtn_geo::{Bounds, Point, Segment};
use vdtn_sim_core::{SimDuration, SimRng, SimTime, StateHash};

/// Parameters for [`RandomWaypoint`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointConfig {
    /// Movement area.
    pub bounds: Bounds,
    /// Minimum leg speed, m/s.
    pub speed_lo: f64,
    /// Maximum leg speed, m/s.
    pub speed_hi: f64,
    /// Minimum pause, seconds.
    pub wait_lo: f64,
    /// Maximum pause, seconds.
    pub wait_hi: f64,
}

impl WaypointConfig {
    /// Validate ranges.
    pub fn validate(&self) {
        assert!(self.bounds.width() > 0.0 && self.bounds.height() > 0.0);
        assert!(self.speed_lo > 0.0 && self.speed_hi >= self.speed_lo);
        assert!(self.wait_lo >= 0.0 && self.wait_hi >= self.wait_lo);
    }
}

enum Phase {
    Waiting { seg: Segment },
    Moving { target: Point, seg: Segment },
}

/// Free-space random waypoint model.
pub struct RandomWaypoint {
    cfg: WaypointConfig,
    rng: SimRng,
    pos: Point,
    /// Time of the last `advance_to` (the anchor for `position_at`).
    clock: SimTime,
    phase: Phase,
}

impl RandomWaypoint {
    /// Create a node at a uniform random position inside the bounds.
    pub fn new(cfg: WaypointConfig, mut rng: SimRng) -> Self {
        cfg.validate();
        let pos = Point::new(
            rng.range_f64(cfg.bounds.min.x, cfg.bounds.max.x),
            rng.range_f64(cfg.bounds.min.y, cfg.bounds.max.y),
        );
        RandomWaypoint {
            cfg,
            rng,
            pos,
            clock: SimTime::ZERO,
            // Degenerate wait: the first leg is drawn at t = 0.
            phase: Phase::Waiting {
                seg: Segment::stationary(pos, SimTime::ZERO, SimTime::ZERO),
            },
        }
    }

    /// Rebuild a node from its [`MoverSnapshot::Waypoint`] parts. Exact
    /// inverse of [`MovementModel::snapshot`]: no RNG draws.
    pub(crate) fn from_snapshot(
        cfg: WaypointConfig,
        rng: SimRng,
        pos: Point,
        clock: SimTime,
        phase: FreePhase,
    ) -> Self {
        cfg.validate();
        let phase = match phase {
            FreePhase::Waiting { seg } => Phase::Waiting { seg },
            FreePhase::Moving { target, seg } => Phase::Moving { target, seg },
        };
        RandomWaypoint {
            cfg,
            rng,
            pos,
            clock,
            phase,
        }
    }

    /// Draw the next leg, departing at `depart` (the wait's expiry).
    fn pick_leg(&mut self, depart: SimTime) {
        let target = Point::new(
            self.rng
                .range_f64(self.cfg.bounds.min.x, self.cfg.bounds.max.x),
            self.rng
                .range_f64(self.cfg.bounds.min.y, self.cfg.bounds.max.y),
        );
        let speed = self.rng.range_f64(self.cfg.speed_lo, self.cfg.speed_hi);
        let seg = leg_segment(self.pos, target, speed, depart);
        self.phase = Phase::Moving { target, seg };
    }
}

impl MovementModel for RandomWaypoint {
    fn advance_to(&mut self, t: SimTime) -> Point {
        loop {
            match &mut self.phase {
                Phase::Waiting { seg } => {
                    if t < seg.until {
                        self.clock = t;
                        return self.pos;
                    }
                    let depart = seg.until;
                    self.pick_leg(depart);
                }
                Phase::Moving { target, seg } => {
                    if t < seg.until {
                        self.pos = seg.position_at(t);
                        self.clock = t;
                        return self.pos;
                    }
                    // Arrived: snap exactly onto the waypoint and pause.
                    let arrival = seg.until;
                    let parked = *target;
                    self.pos = parked;
                    let wait = self.rng.range_f64(self.cfg.wait_lo, self.cfg.wait_hi);
                    let until = arrival + SimDuration::from_secs_f64(wait).max(MIN_WAIT);
                    self.phase = Phase::Waiting {
                        seg: Segment::stationary(parked, arrival, until),
                    };
                }
            }
        }
    }

    fn motion(&self) -> Segment {
        match &self.phase {
            Phase::Waiting { seg } => *seg,
            Phase::Moving { seg, .. } => *seg,
        }
    }

    fn max_speed(&self) -> f64 {
        self.cfg.speed_hi
    }

    fn position(&self) -> Point {
        self.pos
    }

    fn position_at(&self, elapsed: SimDuration) -> Point {
        let t = self.clock + elapsed;
        match &self.phase {
            Phase::Waiting { .. } => self.pos,
            Phase::Moving { target, seg } => {
                if t >= seg.until {
                    *target // conservative: parked on the waypoint
                } else {
                    seg.position_at(t)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "RandomWaypoint"
    }

    fn snapshot(&self) -> MoverSnapshot {
        let phase = match &self.phase {
            Phase::Waiting { seg } => FreePhase::Waiting { seg: *seg },
            Phase::Moving { target, seg } => FreePhase::Moving {
                target: *target,
                seg: *seg,
            },
        };
        MoverSnapshot::Waypoint {
            cfg: self.cfg,
            rng: self.rng.clone(),
            pos: self.pos,
            clock: self.clock,
            phase,
        }
    }

    fn hash_state(&self, h: &mut StateHash) {
        h.write_tag("mov.waypoint");
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        match &self.phase {
            Phase::Waiting { seg } => {
                h.write_u8(0);
                seg.hash_into(h);
            }
            Phase::Moving { target, seg } => {
                h.write_u8(1);
                target.hash_into(h);
                seg.hash_into(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WaypointConfig {
        let mut bounds = Bounds::empty();
        bounds.expand(Point::new(0.0, 0.0));
        bounds.expand(Point::new(1000.0, 800.0));
        WaypointConfig {
            bounds,
            speed_lo: 5.0,
            speed_hi: 15.0,
            wait_lo: 0.0,
            wait_hi: 10.0,
        }
    }

    #[test]
    fn stays_in_bounds() {
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(1));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..10_000 {
            let p = m.step(now, dt);
            now += dt;
            assert!(cfg().bounds.contains(p), "escaped bounds at {p}");
        }
    }

    #[test]
    fn respects_speed_cap() {
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(2));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut prev = m.position();
        // One millisecond's travel of slack for the arrival snap (see
        // `leg_segment`'s floor-quantisation).
        let limit = 15.0 * 1.001 + 1e-9;
        for _ in 0..5_000 {
            let p = m.step(now, dt);
            now += dt;
            assert!(prev.distance(p) <= limit);
            prev = p;
        }
    }

    #[test]
    fn covers_the_area() {
        // After a long run positions should span most of the rectangle.
        let mut m = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(3));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        let mut bounds = Bounds::empty();
        for _ in 0..50_000 {
            bounds.expand(m.step(now, dt));
            now += dt;
        }
        assert!(bounds.width() > 800.0, "width {}", bounds.width());
        assert!(bounds.height() > 600.0, "height {}", bounds.height());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(4));
        let mut b = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(4));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..1_000 {
            assert_eq!(a.step(now, dt), b.step(now, dt));
            now += dt;
        }
    }

    #[test]
    fn lazy_advance_matches_stepping() {
        // Same contract test as SPMB's: boundaries-only advancement plus
        // closed-form evaluation reproduces per-tick stepping bit-for-bit.
        let mut every_tick = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(7));
        let mut lazy = RandomWaypoint::new(cfg(), SimRng::seed_from_u64(7));
        let dt = SimDuration::from_secs(1);
        let mut now = SimTime::ZERO;
        for _ in 0..5_000 {
            let end = now + dt;
            let reference = every_tick.step(now, dt);
            if lazy.next_decision_time() <= end {
                lazy.advance_to(end);
                assert_eq!(reference, lazy.position(), "diverged at {end}");
            }
            assert_eq!(
                reference,
                lazy.motion().position_at(end),
                "segment diverged at {end}"
            );
            now = end;
        }
    }
}

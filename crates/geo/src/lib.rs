//! Road-network geometry substrate.
//!
//! The paper's scenario is *map-based*: vehicles move along the streets of a
//! Helsinki downtown extract, choosing shortest paths between random road
//! points. This crate provides everything that layer needs:
//!
//! * [`Point`] and small 2-D geometry helpers,
//! * [`RoadGraph`] — an undirected road network with CSR adjacency,
//! * [`shortest_path`] — Dijkstra and A* over road graphs,
//! * [`SpatialGrid`] — a uniform hash grid for radius queries (used by
//!   contact detection in `vdtn-net`),
//! * map generators ([`gen`]) including the synthetic-Helsinki substitute
//!   documented in `DESIGN.md`, and
//! * a WKT reader/writer ([`wkt`]) compatible with the ONE simulator's map
//!   format, so a real Helsinki extract can be dropped in.
//!
//! # Example
//!
//! ```
//! use vdtn_geo::{dijkstra, GridMapGen, Point};
//!
//! // A 4×3 Manhattan grid with 100 m blocks.
//! let map = GridMapGen { cols: 4, rows: 3, spacing: 100.0 }.generate();
//! let a = map.nearest_vertex(Point::new(0.0, 0.0)).unwrap();
//! let b = map.nearest_vertex(Point::new(300.0, 200.0)).unwrap();
//! let path = dijkstra(&map, a, b).expect("grid maps are connected");
//! assert_eq!(path.length, 500.0); // 3 blocks east + 2 blocks north
//! ```

pub mod gen;
pub mod graph;
pub mod grid;
pub mod point;
pub mod segment;
pub mod shard;
pub mod shortest_path;
pub mod stats;
pub mod wkt;

pub use gen::{GridMapGen, SyntheticCityGen};
pub use graph::{EdgeId, RoadGraph, RoadGraphBuilder, VertexId};
pub use grid::SpatialGrid;
pub use point::{Bounds, Point};
pub use segment::Segment;
pub use shard::ShardMap;
pub use shortest_path::{astar, dijkstra, distance_lower_bound, PathResult};
pub use stats::{map_stats, MapStats};

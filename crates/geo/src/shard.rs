//! Deterministic spatial sharding for parallel engine phases.
//!
//! A [`ShardMap`] tiles the plane into a fixed `cols × rows` lattice of
//! rectangular shards, aligned to [`crate::SpatialGrid`] cell boundaries so
//! a shard is always a whole block of grid buckets. The engine partitions
//! per-contact work by shard, processes shards concurrently, and merges the
//! outputs in canonical order — so the map's only obligations are to be a
//! **total function** (every point lands in exactly one shard, including
//! points that drift outside the construction-time bounding box, which
//! clamp to the nearest edge shard) and to be **independent of thread
//! count** (the tiling is fixed at construction from the initial positions
//! and never changes as nodes move or pools resize).
//!
//! Pair ownership: a contact pair `(a, b)` is owned by the shard of the
//! *lower-id* endpoint's current position. Pairs that straddle a shard
//! boundary (possible out to the detection slack radius) therefore have
//! exactly one deterministic owner, with no coordination between shards.

use crate::point::Point;

/// Fixed rectangular tiling of the plane into spatial shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Cell coordinate of the bounding box minimum (grid-aligned).
    origin: (i32, i32),
    cell_size: f64,
    /// Shard tile extent in whole grid cells.
    tile_cells: (i32, i32),
    cols: u32,
    rows: u32,
}

impl ShardMap {
    /// Build a tiling over the bounding box of `positions` with at least 1
    /// and at most `target_shards` (rounded up to a full lattice) shards.
    /// `cell_size` should match the spatial grid used for detection so
    /// shard edges coincide with bucket edges.
    pub fn build(positions: &[Point], cell_size: f64, target_shards: usize) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let target = target_shards.max(1) as u32;
        // Lattice shape: near-square, cols × rows >= 1.
        let cols = (target as f64).sqrt().ceil() as u32;
        let rows = target.div_ceil(cols).max(1);

        let (min, max) = bounding_cells(positions, cell_size);
        let span_x = max.0 - min.0 + 1;
        let span_y = max.1 - min.1 + 1;
        // Whole-cell tile extents; a tile is at least one cell, so very
        // small worlds quietly collapse to fewer effective shards (edge
        // clamping keeps of_point total regardless).
        let tile_x = ((span_x + cols as i32 - 1) / cols as i32).max(1);
        let tile_y = ((span_y + rows as i32 - 1) / rows as i32).max(1);
        ShardMap {
            origin: min,
            cell_size,
            tile_cells: (tile_x, tile_y),
            cols,
            rows,
        }
    }

    /// Total number of shard slots in the lattice.
    pub fn num_shards(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// The shard containing `p`. Total: points outside the construction
    /// bounding box clamp to the nearest edge shard.
    #[inline]
    pub fn of_point(&self, p: Point) -> u32 {
        let cx = (p.x / self.cell_size).floor() as i32 - self.origin.0;
        let cy = (p.y / self.cell_size).floor() as i32 - self.origin.1;
        let sx = (cx.div_euclid(self.tile_cells.0)).clamp(0, self.cols as i32 - 1) as u32;
        let sy = (cy.div_euclid(self.tile_cells.1)).clamp(0, self.rows as i32 - 1) as u32;
        sy * self.cols + sx
    }

    /// The unique owning shard of the pair `(a, b)`: the shard of the
    /// lower-id endpoint's position. Symmetric in argument order.
    #[inline]
    pub fn pair_owner(&self, a: u32, b: u32, positions: &[Point]) -> u32 {
        let low = a.min(b);
        self.of_point(positions[low as usize])
    }
}

/// Grid-cell bounding box of `positions`; a degenerate single cell at the
/// origin when the slice is empty.
fn bounding_cells(positions: &[Point], cell_size: f64) -> ((i32, i32), (i32, i32)) {
    let mut min = (i32::MAX, i32::MAX);
    let mut max = (i32::MIN, i32::MIN);
    for p in positions {
        let c = (
            (p.x / cell_size).floor() as i32,
            (p.y / cell_size).floor() as i32,
        );
        min.0 = min.0.min(c.0);
        min.1 = min.1.min(c.1);
        max.0 = max.0.max(c.0);
        max.1 = max.1.max(c.1);
    }
    if positions.is_empty() {
        ((0, 0), (0, 0))
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn every_point_maps_to_exactly_one_in_range_shard() {
        let positions = pts(&[(0.0, 0.0), (100.0, 40.0), (250.0, 90.0), (30.0, 70.0)]);
        let map = ShardMap::build(&positions, 30.0, 6);
        assert!(map.num_shards() >= 6);
        for &p in &positions {
            let s = map.of_point(p);
            assert!((s as usize) < map.num_shards());
            // Deterministic: repeated queries agree.
            assert_eq!(s, map.of_point(p));
        }
    }

    #[test]
    fn outside_points_clamp_to_edge_shards() {
        let positions = pts(&[(0.0, 0.0), (300.0, 300.0)]);
        let map = ShardMap::build(&positions, 50.0, 4);
        for &p in &[
            Point::new(-1e6, -1e6),
            Point::new(1e6, 1e6),
            Point::new(-1e6, 150.0),
            Point::new(150.0, 1e6),
        ] {
            assert!((map.of_point(p) as usize) < map.num_shards());
        }
    }

    #[test]
    fn single_shard_world() {
        let positions = pts(&[(5.0, 5.0), (6.0, 6.0)]);
        let map = ShardMap::build(&positions, 10.0, 1);
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.of_point(Point::new(123.0, -456.0)), 0);
    }

    #[test]
    fn empty_positions_degenerate_map_is_total() {
        let map = ShardMap::build(&[], 10.0, 8);
        assert!((map.of_point(Point::new(42.0, 42.0)) as usize) < map.num_shards());
    }

    #[test]
    fn pair_owner_is_symmetric_and_follows_lower_id() {
        let positions = pts(&[(0.0, 0.0), (290.0, 0.0), (150.0, 80.0)]);
        let map = ShardMap::build(&positions, 30.0, 4);
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a == b {
                    continue;
                }
                let owner = map.pair_owner(a, b, &positions);
                assert_eq!(owner, map.pair_owner(b, a, &positions));
                assert_eq!(owner, map.of_point(positions[a.min(b) as usize]));
            }
        }
    }

    #[test]
    fn shards_are_grid_aligned_blocks() {
        // Points in the same grid cell always share a shard.
        let positions = pts(&[(0.0, 0.0), (500.0, 500.0)]);
        let map = ShardMap::build(&positions, 50.0, 9);
        for cx in 0..10 {
            for cy in 0..10 {
                let base = Point::new(cx as f64 * 50.0 + 1.0, cy as f64 * 50.0 + 1.0);
                let far = Point::new(cx as f64 * 50.0 + 49.0, cy as f64 * 50.0 + 49.0);
                assert_eq!(map.of_point(base), map.of_point(far));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn to_points(raw: &[(i32, i32)]) -> Vec<Point> {
        raw.iter()
            .map(|&(x, y)| Point::new(x as f64, y as f64))
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Partition correctness: every node lands in exactly one shard —
        /// `of_point` is total, in range, and deterministic — for random
        /// positions, grid cell sizes, and shard counts.
        #[test]
        fn every_node_lands_in_exactly_one_shard(
            raw in proptest::collection::vec((-2000i32..2000, -2000i32..2000), 1..40),
            cell_int in 5u32..200,
            shards in 1usize..16,
        ) {
            let positions = to_points(&raw);
            let cell = cell_int as f64;
            let map = ShardMap::build(&positions, cell, shards);
            let mut per_shard = vec![0usize; map.num_shards()];
            for &p in &positions {
                let s = map.of_point(p) as usize;
                prop_assert!(s < map.num_shards());
                prop_assert_eq!(s as u32, map.of_point(p));
                per_shard[s] += 1;
            }
            // Shard populations partition the node set.
            prop_assert_eq!(per_shard.iter().sum::<usize>(), positions.len());
        }

        /// Ownership correctness: every in-range (and slack-range) pair has
        /// exactly one owning shard, symmetric in argument order and stable
        /// under re-query.
        #[test]
        fn every_in_range_pair_owned_by_exactly_one_shard(
            raw in proptest::collection::vec((-2000i32..2000, -2000i32..2000), 1..40),
            cell_int in 5u32..200,
            shards in 1usize..16,
            range_int in 10u32..400,
        ) {
            let positions = to_points(&raw);
            let map = ShardMap::build(&positions, cell_int as f64, shards);
            let slack_range = 2.0 * range_int as f64; // detection re-query radius
            let n = positions.len() as u32;
            for a in 0..n {
                for b in (a + 1)..n {
                    let d = positions[a as usize].distance(positions[b as usize]);
                    if d > slack_range {
                        continue;
                    }
                    let owner = map.pair_owner(a, b, &positions);
                    prop_assert!((owner as usize) < map.num_shards());
                    // Exactly one owner: the rule is a function of the pair,
                    // not of traversal order or which endpoint asks.
                    prop_assert_eq!(owner, map.pair_owner(b, a, &positions));
                    prop_assert_eq!(owner, map.of_point(positions[a as usize]));
                }
            }
        }
    }
}

//! Shortest paths over road graphs: Dijkstra and A*.
//!
//! Both return a [`PathResult`] with the vertex sequence and total length.
//! A* combines the Euclidean distance heuristic (admissible because edge
//! weights *are* Euclidean segment lengths) with an ALT landmark bound
//! (`|d_L(v) - d_L(goal)|`, admissible and consistent by the triangle
//! inequality) cached on the graph. On grid-like maps the landmark bound is
//! exact, so the search expands only vertices on shortest paths; a high-`g`
//! tie-break then walks a single corridor instead of flooding the equal-cost
//! plateau. Search state (`dist`/`prev`) is kept in generation-stamped
//! thread-local scratch so repeated queries — trip planning runs tens of
//! thousands per scenario — never re-allocate or re-zero O(V) memory.

use crate::graph::{RoadGraph, VertexId};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of extremal landmark vertices used by [`Landmarks`].
const LANDMARK_COUNT: usize = 4;

/// ALT landmark table: shortest-path distances from a handful of extremal
/// vertices to every vertex. `|d_L(v) - d_L(goal)|` lower-bounds
/// `d(v, goal)` for each landmark `L`; the maximum over landmarks (and the
/// Euclidean bound) is still admissible and consistent, so A* stays exact.
#[derive(Debug, Clone)]
pub struct Landmarks {
    /// `dists[l][v]` = shortest-path distance from landmark `l` to vertex
    /// `v` (`f64::INFINITY` when unreachable).
    dists: Vec<Vec<f64>>,
}

impl Landmarks {
    /// Pick the four "corner" vertices (extremal `x+y` / `x-y`, ties to the
    /// lowest id) and run one Dijkstra sweep from each. Deterministic.
    pub fn build(graph: &RoadGraph) -> Landmarks {
        let n = graph.vertex_count();
        if n == 0 {
            return Landmarks { dists: Vec::new() };
        }
        let mut corners = [(f64::NEG_INFINITY, 0u32); LANDMARK_COUNT];
        for (i, p) in graph.positions().iter().enumerate() {
            for (k, key) in [p.x + p.y, -(p.x + p.y), p.x - p.y, p.y - p.x]
                .into_iter()
                .enumerate()
            {
                if key > corners[k].0 {
                    corners[k] = (key, i as u32);
                }
            }
        }
        let mut dists = Vec::with_capacity(LANDMARK_COUNT);
        for &(_, v) in &corners {
            dists.push(distances_from(graph, VertexId(v)));
        }
        Landmarks { dists }
    }

    /// Landmark distances to `v`, one per landmark (empty for empty graphs).
    #[inline]
    fn to_vertex(&self, v: VertexId) -> [f64; LANDMARK_COUNT] {
        let mut out = [f64::INFINITY; LANDMARK_COUNT];
        for (o, d) in out.iter_mut().zip(&self.dists) {
            *o = d[v.index()];
        }
        out
    }
}

/// Generation-stamped per-thread search scratch: `dist`/`prev` entries are
/// only valid when `stamp[v] == generation`, so starting a new query is O(1)
/// instead of an O(V) clear. Contents never influence results — only reuse.
struct SearchScratch {
    dist: Vec<f64>,
    prev: Vec<u32>,
    stamp: Vec<u32>,
    settled: Vec<u32>,
    generation: u32,
}

impl SearchScratch {
    const fn new() -> Self {
        SearchScratch {
            dist: Vec::new(),
            prev: Vec::new(),
            stamp: Vec::new(),
            settled: Vec::new(),
            generation: 0,
        }
    }

    /// Begin a query over `n` vertices: bump the generation (wrapping safely
    /// by re-zeroing stamps) and grow the columns if the graph is larger
    /// than any seen before on this thread.
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, u32::MAX);
            self.stamp.resize(n, 0);
            self.settled.resize(n, 0);
        }
        if self.generation == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    #[inline]
    fn is_settled(&self, v: usize) -> bool {
        self.settled[v] == self.generation
    }

    #[inline]
    fn settle(&mut self, v: usize) {
        self.settled[v] = self.generation;
    }

    #[inline]
    fn dist(&self, v: usize) -> f64 {
        if self.stamp[v] == self.generation {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: usize, dist: f64, prev: u32) {
        self.dist[v] = dist;
        self.prev[v] = prev;
        self.stamp[v] = self.generation;
    }
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> = const { RefCell::new(SearchScratch::new()) };
}

/// A found path: the vertex chain `from → … → to` and its length in metres.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Vertices along the path, including both endpoints.
    pub vertices: Vec<VertexId>,
    /// Total length in metres.
    pub length: f64,
}

/// Heap entry ordered by ascending cost (f-score for A*).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    cost: f64,
    /// Distance from the source (g-score). Ties on `cost` prefer the larger
    /// `g`: on equal-cost plateaus (ubiquitous on grid maps, where the exact
    /// landmark heuristic puts the whole corridor at `f = C*`) this walks a
    /// single staircase instead of flooding the plateau. Purely a search-
    /// order change — the admissible heuristic keeps the result optimal.
    g: f64,
    vertex: VertexId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.g == other.g && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; ties prefer larger g, then lower vertex id,
        // keeping pop order fully deterministic.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("NaN cost")
            .then_with(|| self.g.partial_cmp(&other.g).expect("NaN g"))
            .then_with(|| other.vertex.0.cmp(&self.vertex.0))
    }
}

fn reconstruct(scratch: &SearchScratch, from: VertexId, to: VertexId) -> Vec<VertexId> {
    let mut chain = vec![to];
    let mut cur = to;
    while cur != from {
        cur = VertexId(scratch.prev[cur.index()]);
        chain.push(cur);
    }
    chain.reverse();
    chain
}

/// Dijkstra's algorithm. Returns `None` when `to` is unreachable from `from`.
pub fn dijkstra(graph: &RoadGraph, from: VertexId, to: VertexId) -> Option<PathResult> {
    search(graph, from, to, |_| 0.0)
}

/// Admissible lower bound on the shortest-path distance `from → to`: the
/// maximum of the Euclidean distance and the ALT landmark bounds — exactly
/// the heuristic [`astar`] evaluates at its start vertex. Never exceeds the
/// true distance (both bounds are admissible), so callers comparing several
/// candidate endpoint pairs can skip the full search for any pair whose
/// bound already reaches the best exact total found so far, without changing
/// which pair wins. On grid-like maps the landmark bound is exact, so the
/// pruning typically leaves a single A* run.
pub fn distance_lower_bound(graph: &RoadGraph, from: VertexId, to: VertexId) -> f64 {
    let n = graph.vertex_count();
    if from.index() >= n || to.index() >= n {
        return f64::INFINITY;
    }
    let mut h = graph.position(from).distance(graph.position(to));
    let lm = graph.landmarks();
    for (a, b) in lm.to_vertex(from).into_iter().zip(lm.to_vertex(to)) {
        if a.is_finite() && b.is_finite() {
            h = h.max((a - b).abs());
        }
    }
    h
}

/// A* with the combined ALT-landmark + Euclidean heuristic. Same results as
/// [`dijkstra`] (both bounds are admissible and consistent), visiting far
/// fewer vertices — on grid maps the landmark bound is exact and the search
/// walks only the optimal corridor.
pub fn astar(graph: &RoadGraph, from: VertexId, to: VertexId) -> Option<PathResult> {
    let n = graph.vertex_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    let goal = graph.position(to);
    let lm = graph.landmarks();
    let lm_goal = lm.to_vertex(to);
    search(graph, from, to, move |v: VertexId| {
        let mut h = graph.position(v).distance(goal);
        let lv = lm.to_vertex(v);
        for (a, b) in lv.into_iter().zip(lm_goal) {
            // Unreachable-from-landmark vertices hold INFINITY; skip them so
            // the bound degrades to Euclidean instead of producing NaN.
            if a.is_finite() && b.is_finite() {
                h = h.max((a - b).abs());
            }
        }
        h
    })
}

fn search(
    graph: &RoadGraph,
    from: VertexId,
    to: VertexId,
    heuristic: impl Fn(VertexId) -> f64,
) -> Option<PathResult> {
    let n = graph.vertex_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some(PathResult {
            vertices: vec![from],
            length: 0.0,
        });
    }
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.begin(n);
        let mut heap = BinaryHeap::with_capacity(64);

        scratch.set(from.index(), 0.0, u32::MAX);
        heap.push(HeapEntry {
            cost: heuristic(from),
            g: 0.0,
            vertex: from,
        });

        while let Some(HeapEntry { vertex, .. }) = heap.pop() {
            if scratch.is_settled(vertex.index()) {
                continue;
            }
            scratch.settle(vertex.index());
            if vertex == to {
                return Some(PathResult {
                    vertices: reconstruct(&scratch, from, to),
                    length: scratch.dist(to.index()),
                });
            }
            let base = scratch.dist(vertex.index());
            for nb in graph.neighbors(vertex) {
                if scratch.is_settled(nb.to.index()) {
                    continue;
                }
                let cand = base + nb.length;
                if cand < scratch.dist(nb.to.index()) {
                    scratch.set(nb.to.index(), cand, vertex.0);
                    heap.push(HeapEntry {
                        cost: cand + heuristic(nb.to),
                        g: cand,
                        vertex: nb.to,
                    });
                }
            }
        }
        None
    })
}

/// Single-source distances to every vertex (plain Dijkstra sweep).
/// Unreachable vertices hold `f64::INFINITY`.
pub fn distances_from(graph: &RoadGraph, from: VertexId) -> Vec<f64> {
    let n = graph.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        g: 0.0,
        vertex: from,
    });
    while let Some(HeapEntry { vertex, .. }) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        let base = dist[vertex.index()];
        for nb in graph.neighbors(vertex) {
            let cand = base + nb.length;
            if cand < dist[nb.to.index()] {
                dist[nb.to.index()] = cand;
                heap.push(HeapEntry {
                    cost: cand,
                    g: cand,
                    vertex: nb.to,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;
    use crate::point::Point;

    /// 3×3 grid with unit spacing; vertex (i,j) at (i*100, j*100).
    fn grid3() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        for i in 0..3 {
            for j in 0..3 {
                let p = Point::new(i as f64 * 100.0, j as f64 * 100.0);
                if i + 1 < 3 {
                    b.add_segment(p, Point::new((i + 1) as f64 * 100.0, j as f64 * 100.0));
                }
                if j + 1 < 3 {
                    b.add_segment(p, Point::new(i as f64 * 100.0, (j + 1) as f64 * 100.0));
                }
            }
        }
        b.build()
    }

    fn vid(g: &RoadGraph, x: f64, y: f64) -> VertexId {
        g.nearest_vertex(Point::new(x, y)).unwrap()
    }

    #[test]
    fn trivial_same_vertex() {
        let g = grid3();
        let v = vid(&g, 0.0, 0.0);
        let r = dijkstra(&g, v, v).unwrap();
        assert_eq!(r.vertices, vec![v]);
        assert_eq!(r.length, 0.0);
    }

    #[test]
    fn straight_line_path() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let to = vid(&g, 200.0, 0.0);
        let r = dijkstra(&g, from, to).unwrap();
        assert_eq!(r.length, 200.0);
        assert_eq!(r.vertices.len(), 3);
    }

    #[test]
    fn manhattan_corner_to_corner() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let to = vid(&g, 200.0, 200.0);
        let r = dijkstra(&g, from, to).unwrap();
        assert_eq!(r.length, 400.0);
        // Path endpoints must match.
        assert_eq!(*r.vertices.first().unwrap(), from);
        assert_eq!(*r.vertices.last().unwrap(), to);
        // Consecutive vertices must be adjacent.
        for w in r.vertices.windows(2) {
            assert!(g.neighbors(w[0]).iter().any(|n| n.to == w[1]));
        }
    }

    #[test]
    fn astar_agrees_with_dijkstra() {
        let g = grid3();
        for a in g.vertex_ids() {
            for b in g.vertex_ids() {
                let d = dijkstra(&g, a, b).unwrap();
                let s = astar(&g, a, b).unwrap();
                assert!(
                    (d.length - s.length).abs() < 1e-9,
                    "mismatch {a:?}->{b:?}: {} vs {}",
                    d.length,
                    s.length
                );
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadGraphBuilder::new();
        b.add_segment(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        b.add_segment(Point::new(100.0, 0.0), Point::new(101.0, 0.0));
        let g = b.build();
        let a = g.nearest_vertex(Point::new(0.0, 0.0)).unwrap();
        let d = g.nearest_vertex(Point::new(101.0, 0.0)).unwrap();
        assert!(dijkstra(&g, a, d).is_none());
        assert!(astar(&g, a, d).is_none());
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let all = distances_from(&g, from);
        for v in g.vertex_ids() {
            let d = dijkstra(&g, from, v).unwrap().length;
            assert!((all[v.index()] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn prefers_shortcut_over_detour() {
        // Triangle with one long and two short edges: direct edge wins.
        let mut b = RoadGraphBuilder::new();
        let a = Point::new(0.0, 0.0);
        let c = Point::new(100.0, 0.0);
        let up = Point::new(50.0, 500.0);
        b.add_segment(a, c);
        b.add_segment(a, up);
        b.add_segment(up, c);
        let g = b.build();
        let va = g.nearest_vertex(a).unwrap();
        let vc = g.nearest_vertex(c).unwrap();
        let r = dijkstra(&g, va, vc).unwrap();
        assert_eq!(r.vertices.len(), 2);
        assert_eq!(r.length, 100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::SyntheticCityGen;
    use proptest::prelude::*;
    use vdtn_sim_core::SimRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// On random synthetic cities: A* == Dijkstra, and both respect the
        /// Euclidean lower bound (weights are Euclidean lengths).
        #[test]
        fn astar_matches_dijkstra_on_random_cities(seed in 0u64..500, a_pick in 0usize..1000, b_pick in 0usize..1000) {
            let g = SyntheticCityGen::default().generate(&mut SimRng::seed_from_u64(seed));
            let a = VertexId((a_pick % g.vertex_count()) as u32);
            let b = VertexId((b_pick % g.vertex_count()) as u32);
            let d = dijkstra(&g, a, b);
            let s = astar(&g, a, b);
            match (d, s) {
                (Some(d), Some(s)) => {
                    prop_assert!((d.length - s.length).abs() < 1e-6);
                    let euclid = g.position(a).distance(g.position(b));
                    prop_assert!(d.length + 1e-9 >= euclid);
                    // Path edges must exist and sum to the reported length.
                    let mut sum = 0.0;
                    for w in d.vertices.windows(2) {
                        let nb = g.neighbors(w[0]).iter().find(|n| n.to == w[1]);
                        prop_assert!(nb.is_some(), "non-adjacent hop");
                        sum += nb.unwrap().length;
                    }
                    prop_assert!((sum - d.length).abs() < 1e-6);
                }
                (None, None) => {} // both agree on unreachability
                (d, s) => prop_assert!(false, "reachability disagreement: {d:?} vs {s:?}"),
            }
        }
    }
}

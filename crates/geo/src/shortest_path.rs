//! Shortest paths over road graphs: Dijkstra and A*.
//!
//! Both return a [`PathResult`] with the vertex sequence and total length.
//! A* uses the Euclidean distance heuristic, which is admissible because
//! edge weights *are* Euclidean segment lengths. The micro benches compare
//! the two on city-scale maps (see `DESIGN.md`, ablation table).

use crate::graph::{RoadGraph, VertexId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A found path: the vertex chain `from → … → to` and its length in metres.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Vertices along the path, including both endpoints.
    pub vertices: Vec<VertexId>,
    /// Total length in metres.
    pub length: f64,
}

/// Heap entry ordered by ascending cost (f-score for A*).
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    cost: f64,
    vertex: VertexId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost; tie-break on vertex id for determinism.
        other
            .cost
            .partial_cmp(&self.cost)
            .expect("NaN cost")
            .then_with(|| other.vertex.0.cmp(&self.vertex.0))
    }
}

fn reconstruct(prev: &[u32], from: VertexId, to: VertexId) -> Vec<VertexId> {
    let mut chain = vec![to];
    let mut cur = to;
    while cur != from {
        cur = VertexId(prev[cur.index()]);
        chain.push(cur);
    }
    chain.reverse();
    chain
}

/// Dijkstra's algorithm. Returns `None` when `to` is unreachable from `from`.
pub fn dijkstra(graph: &RoadGraph, from: VertexId, to: VertexId) -> Option<PathResult> {
    search(graph, from, to, |_| 0.0)
}

/// A* with the Euclidean heuristic. Same results as [`dijkstra`]
/// (the heuristic is admissible and consistent), usually visiting fewer
/// vertices.
pub fn astar(graph: &RoadGraph, from: VertexId, to: VertexId) -> Option<PathResult> {
    let goal = graph.position(to);
    search(graph, from, to, move |g: &VertexCtx| g.pos.distance(goal))
}

/// Context handed to the heuristic.
struct VertexCtx {
    pos: crate::point::Point,
}

fn search(
    graph: &RoadGraph,
    from: VertexId,
    to: VertexId,
    heuristic: impl Fn(&VertexCtx) -> f64,
) -> Option<PathResult> {
    let n = graph.vertex_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some(PathResult {
            vertices: vec![from],
            length: 0.0,
        });
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![u32::MAX; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::with_capacity(64);

    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: heuristic(&VertexCtx {
            pos: graph.position(from),
        }),
        vertex: from,
    });

    while let Some(HeapEntry { vertex, .. }) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        if vertex == to {
            return Some(PathResult {
                vertices: reconstruct(&prev, from, to),
                length: dist[to.index()],
            });
        }
        let base = dist[vertex.index()];
        for nb in graph.neighbors(vertex) {
            if settled[nb.to.index()] {
                continue;
            }
            let cand = base + nb.length;
            if cand < dist[nb.to.index()] {
                dist[nb.to.index()] = cand;
                prev[nb.to.index()] = vertex.0;
                heap.push(HeapEntry {
                    cost: cand
                        + heuristic(&VertexCtx {
                            pos: graph.position(nb.to),
                        }),
                    vertex: nb.to,
                });
            }
        }
    }
    None
}

/// Single-source distances to every vertex (plain Dijkstra sweep).
/// Unreachable vertices hold `f64::INFINITY`.
pub fn distances_from(graph: &RoadGraph, from: VertexId) -> Vec<f64> {
    let n = graph.vertex_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[from.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        vertex: from,
    });
    while let Some(HeapEntry { vertex, .. }) = heap.pop() {
        if settled[vertex.index()] {
            continue;
        }
        settled[vertex.index()] = true;
        let base = dist[vertex.index()];
        for nb in graph.neighbors(vertex) {
            let cand = base + nb.length;
            if cand < dist[nb.to.index()] {
                dist[nb.to.index()] = cand;
                heap.push(HeapEntry {
                    cost: cand,
                    vertex: nb.to,
                });
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraphBuilder;
    use crate::point::Point;

    /// 3×3 grid with unit spacing; vertex (i,j) at (i*100, j*100).
    fn grid3() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        for i in 0..3 {
            for j in 0..3 {
                let p = Point::new(i as f64 * 100.0, j as f64 * 100.0);
                if i + 1 < 3 {
                    b.add_segment(p, Point::new((i + 1) as f64 * 100.0, j as f64 * 100.0));
                }
                if j + 1 < 3 {
                    b.add_segment(p, Point::new(i as f64 * 100.0, (j + 1) as f64 * 100.0));
                }
            }
        }
        b.build()
    }

    fn vid(g: &RoadGraph, x: f64, y: f64) -> VertexId {
        g.nearest_vertex(Point::new(x, y)).unwrap()
    }

    #[test]
    fn trivial_same_vertex() {
        let g = grid3();
        let v = vid(&g, 0.0, 0.0);
        let r = dijkstra(&g, v, v).unwrap();
        assert_eq!(r.vertices, vec![v]);
        assert_eq!(r.length, 0.0);
    }

    #[test]
    fn straight_line_path() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let to = vid(&g, 200.0, 0.0);
        let r = dijkstra(&g, from, to).unwrap();
        assert_eq!(r.length, 200.0);
        assert_eq!(r.vertices.len(), 3);
    }

    #[test]
    fn manhattan_corner_to_corner() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let to = vid(&g, 200.0, 200.0);
        let r = dijkstra(&g, from, to).unwrap();
        assert_eq!(r.length, 400.0);
        // Path endpoints must match.
        assert_eq!(*r.vertices.first().unwrap(), from);
        assert_eq!(*r.vertices.last().unwrap(), to);
        // Consecutive vertices must be adjacent.
        for w in r.vertices.windows(2) {
            assert!(g.neighbors(w[0]).iter().any(|n| n.to == w[1]));
        }
    }

    #[test]
    fn astar_agrees_with_dijkstra() {
        let g = grid3();
        for a in g.vertex_ids() {
            for b in g.vertex_ids() {
                let d = dijkstra(&g, a, b).unwrap();
                let s = astar(&g, a, b).unwrap();
                assert!(
                    (d.length - s.length).abs() < 1e-9,
                    "mismatch {a:?}->{b:?}: {} vs {}",
                    d.length,
                    s.length
                );
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = RoadGraphBuilder::new();
        b.add_segment(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        b.add_segment(Point::new(100.0, 0.0), Point::new(101.0, 0.0));
        let g = b.build();
        let a = g.nearest_vertex(Point::new(0.0, 0.0)).unwrap();
        let d = g.nearest_vertex(Point::new(101.0, 0.0)).unwrap();
        assert!(dijkstra(&g, a, d).is_none());
        assert!(astar(&g, a, d).is_none());
    }

    #[test]
    fn distances_from_matches_pairwise() {
        let g = grid3();
        let from = vid(&g, 0.0, 0.0);
        let all = distances_from(&g, from);
        for v in g.vertex_ids() {
            let d = dijkstra(&g, from, v).unwrap().length;
            assert!((all[v.index()] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn prefers_shortcut_over_detour() {
        // Triangle with one long and two short edges: direct edge wins.
        let mut b = RoadGraphBuilder::new();
        let a = Point::new(0.0, 0.0);
        let c = Point::new(100.0, 0.0);
        let up = Point::new(50.0, 500.0);
        b.add_segment(a, c);
        b.add_segment(a, up);
        b.add_segment(up, c);
        let g = b.build();
        let va = g.nearest_vertex(a).unwrap();
        let vc = g.nearest_vertex(c).unwrap();
        let r = dijkstra(&g, va, vc).unwrap();
        assert_eq!(r.vertices.len(), 2);
        assert_eq!(r.length, 100.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gen::SyntheticCityGen;
    use proptest::prelude::*;
    use vdtn_sim_core::SimRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// On random synthetic cities: A* == Dijkstra, and both respect the
        /// Euclidean lower bound (weights are Euclidean lengths).
        #[test]
        fn astar_matches_dijkstra_on_random_cities(seed in 0u64..500, a_pick in 0usize..1000, b_pick in 0usize..1000) {
            let g = SyntheticCityGen::default().generate(&mut SimRng::seed_from_u64(seed));
            let a = VertexId((a_pick % g.vertex_count()) as u32);
            let b = VertexId((b_pick % g.vertex_count()) as u32);
            let d = dijkstra(&g, a, b);
            let s = astar(&g, a, b);
            match (d, s) {
                (Some(d), Some(s)) => {
                    prop_assert!((d.length - s.length).abs() < 1e-6);
                    let euclid = g.position(a).distance(g.position(b));
                    prop_assert!(d.length + 1e-9 >= euclid);
                    // Path edges must exist and sum to the reported length.
                    let mut sum = 0.0;
                    for w in d.vertices.windows(2) {
                        let nb = g.neighbors(w[0]).iter().find(|n| n.to == w[1]);
                        prop_assert!(nb.is_some(), "non-adjacent hop");
                        sum += nb.unwrap().length;
                    }
                    prop_assert!((sum - d.length).abs() < 1e-6);
                }
                (None, None) => {} // both agree on unreachability
                (d, s) => prop_assert!(false, "reachability disagreement: {d:?} vs {s:?}"),
            }
        }
    }
}

//! Uniform spatial hash grid for radius queries.
//!
//! Used by contact detection in `vdtn-net`: with cell size equal to the
//! radio range, all nodes within range of a point lie in the 3×3 cell
//! neighbourhood, so one pass over `n` nodes finds all contact pairs in
//! O(n + pairs) instead of the naive O(n²) scan. The equivalence of the two
//! is property-tested here and benchmarked in the ablation benches.

use crate::point::Point;
use std::collections::HashMap;

/// A uniform grid over 2-D points, maintained either wholesale or
/// incrementally.
///
/// [`SpatialGrid::rebuild`] refreshes everything from a position slice;
/// [`SpatialGrid::move_point`] relocates a single point, which is what the
/// event-driven contact detector uses when only a few nodes moved in a tick.
/// Internal storage is reused across rebuilds to avoid steady-state
/// allocation.
pub struct SpatialGrid {
    cell_size: f64,
    /// cell coordinates → indices of points in that cell
    cells: HashMap<(i32, i32), Vec<u32>>,
    /// Scratch: cells touched last rebuild, so we can clear cheaply.
    points: Vec<Point>,
}

impl SpatialGrid {
    /// Create a grid with the given cell size (normally the radio range).
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        SpatialGrid {
            cell_size,
            cells: HashMap::new(),
            points: Vec::new(),
        }
    }

    #[inline]
    fn cell_of(&self, p: Point) -> (i32, i32) {
        (
            (p.x / self.cell_size).floor() as i32,
            (p.y / self.cell_size).floor() as i32,
        )
    }

    /// Rebuild the grid from a fresh set of positions.
    pub fn rebuild(&mut self, positions: &[Point]) {
        for v in self.cells.values_mut() {
            v.clear();
        }
        self.points.clear();
        self.points.extend_from_slice(positions);
        for (i, &p) in positions.iter().enumerate() {
            let cell = self.cell_of(p);
            self.cells.entry(cell).or_default().push(i as u32);
        }
    }

    /// Move one stored point to a new position, updating its cell membership.
    ///
    /// This is the incremental counterpart of [`SpatialGrid::rebuild`]: when
    /// only `k` of `n` points moved this tick, `k` calls to `move_point` keep
    /// the grid exact in `O(k)` instead of the `O(n)` rebuild. Queries after
    /// the move see exactly the same state a full rebuild would produce
    /// (bucket order may differ, but all query results are sorted).
    ///
    /// Panics if `i` was not part of the last `rebuild`.
    pub fn move_point(&mut self, i: u32, p: Point) {
        let old = self.points[i as usize];
        let old_cell = self.cell_of(old);
        let new_cell = self.cell_of(p);
        self.points[i as usize] = p;
        if old_cell != new_cell {
            if let Some(bucket) = self.cells.get_mut(&old_cell) {
                if let Some(k) = bucket.iter().position(|&x| x == i) {
                    bucket.swap_remove(k);
                }
            }
            self.cells.entry(new_cell).or_default().push(i);
        }
    }

    /// Number of stored points (as of the last rebuild).
    pub fn point_count(&self) -> usize {
        self.points.len()
    }

    /// Indices of all points within `radius` of `center` (excluding `exclude`
    /// if given). Results are appended to `out` in ascending index order.
    pub fn query_within(
        &self,
        center: Point,
        radius: f64,
        exclude: Option<u32>,
        out: &mut Vec<u32>,
    ) {
        let r_cells = (radius / self.cell_size).ceil() as i32;
        let (cx, cy) = self.cell_of(center);
        let r2 = radius * radius;
        let start = out.len();
        for dx in -r_cells..=r_cells {
            for dy in -r_cells..=r_cells {
                if let Some(bucket) = self.cells.get(&(cx + dx, cy + dy)) {
                    for &i in bucket {
                        if Some(i) == exclude {
                            continue;
                        }
                        if self.points[i as usize].distance_sq(center) <= r2 {
                            out.push(i);
                        }
                    }
                }
            }
        }
        out[start..].sort_unstable();
    }

    /// All unordered pairs `(i, j)` with `i < j` whose points lie within
    /// `radius` of each other. Appended to `out` in lexicographic order.
    ///
    /// This is the contact-detection primitive: with `cell_size >= radius`
    /// each pair is examined once via the "half neighbourhood" scan.
    pub fn pairs_within(&self, radius: f64, out: &mut Vec<(u32, u32)>) {
        let r2 = radius * radius;
        let start = out.len();
        // Half-neighbourhood offsets: same cell plus 4 forward neighbours
        // (valid when cell_size >= radius; fall back to full scan otherwise).
        if self.cell_size >= radius {
            const FORWARD: [(i32, i32); 4] = [(1, 0), (1, -1), (1, 1), (0, 1)];
            for (&(cx, cy), bucket) in &self.cells {
                // In-cell pairs.
                for (k, &i) in bucket.iter().enumerate() {
                    for &j in &bucket[k + 1..] {
                        if self.points[i as usize].distance_sq(self.points[j as usize]) <= r2 {
                            out.push(if i < j { (i, j) } else { (j, i) });
                        }
                    }
                }
                // Cross-cell pairs with forward neighbours.
                for (dx, dy) in FORWARD {
                    if let Some(other) = self.cells.get(&(cx + dx, cy + dy)) {
                        for &i in bucket {
                            for &j in other {
                                if self.points[i as usize].distance_sq(self.points[j as usize])
                                    <= r2
                                {
                                    out.push(if i < j { (i, j) } else { (j, i) });
                                }
                            }
                        }
                    }
                }
            }
        } else {
            // Radius exceeds cell size: reuse query_within per point.
            let mut scratch = Vec::new();
            for i in 0..self.points.len() as u32 {
                scratch.clear();
                self.query_within(self.points[i as usize], radius, Some(i), &mut scratch);
                for &j in &scratch {
                    if j > i {
                        out.push((i, j));
                    }
                }
            }
        }
        out[start..].sort_unstable();
        out.dedup();
    }

    /// Naive O(n²) pair scan over the same stored points — the reference
    /// implementation used by tests and the ablation benchmark.
    pub fn pairs_within_naive(&self, radius: f64, out: &mut Vec<(u32, u32)>) {
        let r2 = radius * radius;
        let n = self.points.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if self.points[i].distance_sq(self.points[j]) <= r2 {
                    out.push((i as u32, j as u32));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(25.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(105.0, 100.0),
            Point::new(-40.0, -40.0),
        ]
    }

    #[test]
    fn query_within_finds_neighbors() {
        let mut g = SpatialGrid::new(30.0);
        g.rebuild(&cluster());
        let mut out = Vec::new();
        g.query_within(Point::new(0.0, 0.0), 30.0, Some(0), &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn pairs_within_matches_naive() {
        let mut g = SpatialGrid::new(30.0);
        g.rebuild(&cluster());
        let mut fast = Vec::new();
        let mut naive = Vec::new();
        g.pairs_within(30.0, &mut fast);
        g.pairs_within_naive(30.0, &mut naive);
        naive.sort_unstable();
        assert_eq!(fast, naive);
        assert!(fast.contains(&(0, 1)));
        assert!(fast.contains(&(3, 4)));
        assert!(!fast.contains(&(0, 3)));
    }

    #[test]
    fn pairs_with_radius_larger_than_cell() {
        let mut g = SpatialGrid::new(10.0);
        g.rebuild(&cluster());
        let mut fast = Vec::new();
        let mut naive = Vec::new();
        g.pairs_within(30.0, &mut fast);
        g.pairs_within_naive(30.0, &mut naive);
        naive.sort_unstable();
        assert_eq!(fast, naive);
    }

    #[test]
    fn rebuild_clears_previous_state() {
        let mut g = SpatialGrid::new(30.0);
        g.rebuild(&cluster());
        g.rebuild(&[Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let mut out = Vec::new();
        g.pairs_within(30.0, &mut out);
        assert_eq!(out, vec![(0, 1)]);
    }

    #[test]
    fn randomised_equivalence_with_naive() {
        // Poor man's property test (proptest covers this in tests/): a fixed
        // pseudo-random cloud across several radii.
        let mut pts = Vec::new();
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..200 {
            pts.push(Point::new(next() * 500.0, next() * 400.0));
        }
        for radius in [5.0, 30.0, 75.0] {
            let mut g = SpatialGrid::new(30.0);
            g.rebuild(&pts);
            let mut fast = Vec::new();
            let mut naive = Vec::new();
            g.pairs_within(radius, &mut fast);
            g.pairs_within_naive(radius, &mut naive);
            naive.sort_unstable();
            assert_eq!(fast, naive, "radius {radius}");
        }
    }

    #[test]
    fn move_point_matches_rebuild() {
        // Random walk: after each batch of moves, an incrementally maintained
        // grid must answer pair queries identically to a rebuilt one.
        let mut state = 777u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pts: Vec<Point> = (0..60)
            .map(|_| Point::new(next() * 400.0, next() * 400.0))
            .collect();
        let mut inc = SpatialGrid::new(30.0);
        inc.rebuild(&pts);
        for _ in 0..40 {
            // Move a random subset, sometimes across cell boundaries.
            for (i, p) in pts.iter_mut().enumerate() {
                if next() < 0.4 {
                    p.x += (next() - 0.5) * 80.0;
                    p.y += (next() - 0.5) * 80.0;
                    inc.move_point(i as u32, *p);
                }
            }
            let mut fresh = SpatialGrid::new(30.0);
            fresh.rebuild(&pts);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            inc.pairs_within(30.0, &mut a);
            fresh.pairs_within(30.0, &mut b);
            assert_eq!(a, b);
            let (mut qa, mut qb) = (Vec::new(), Vec::new());
            inc.query_within(pts[0], 45.0, Some(0), &mut qa);
            fresh.query_within(pts[0], 45.0, Some(0), &mut qb);
            assert_eq!(qa, qb);
        }
        assert_eq!(inc.point_count(), pts.len());
    }

    #[test]
    fn empty_and_single_point() {
        let mut g = SpatialGrid::new(30.0);
        g.rebuild(&[]);
        let mut out = Vec::new();
        g.pairs_within(30.0, &mut out);
        assert!(out.is_empty());
        g.rebuild(&[Point::new(5.0, 5.0)]);
        g.pairs_within(30.0, &mut out);
        assert!(out.is_empty());
    }
}

//! Road-network statistics.
//!
//! Used to validate the synthetic-Helsinki substitution (DESIGN.md §3): the
//! aggregates that matter for mobility — extent, connectivity, degree
//! distribution, edge-length distribution — are exactly what this module
//! measures, for both generated maps and loaded WKT extracts.

use crate::graph::RoadGraph;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a road network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapStats {
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Whether the graph is a single connected component.
    pub connected: bool,
    /// Total street length, metres.
    pub total_length_m: f64,
    /// Mean edge length, metres.
    pub mean_edge_m: f64,
    /// Minimum edge length, metres.
    pub min_edge_m: f64,
    /// Maximum edge length, metres.
    pub max_edge_m: f64,
    /// Map extent, metres.
    pub width_m: f64,
    /// Map extent, metres.
    pub height_m: f64,
    /// Mean vertex degree.
    pub mean_degree: f64,
    /// Histogram of vertex degrees, index = degree (capped at 8).
    pub degree_histogram: Vec<usize>,
    /// Street density: metres of road per square kilometre of extent.
    pub density_m_per_km2: f64,
}

/// Compute [`MapStats`] for a graph.
pub fn map_stats(graph: &RoadGraph) -> MapStats {
    let mut min_edge = f64::INFINITY;
    let mut max_edge: f64 = 0.0;
    for e in 0..graph.edge_count() {
        let len = graph.edge_length(crate::graph::EdgeId(e as u32));
        min_edge = min_edge.min(len);
        max_edge = max_edge.max(len);
    }
    if graph.edge_count() == 0 {
        min_edge = 0.0;
    }
    let mut degree_histogram = vec![0usize; 9];
    let mut degree_sum = 0usize;
    for v in graph.vertex_ids() {
        let d = graph.degree(v);
        degree_sum += d;
        degree_histogram[d.min(8)] += 1;
    }
    let bounds = graph.bounds();
    let area_km2 = (bounds.width() * bounds.height() / 1e6).max(1e-9);
    MapStats {
        vertices: graph.vertex_count(),
        edges: graph.edge_count(),
        connected: graph.is_connected(),
        total_length_m: graph.total_length(),
        mean_edge_m: graph.mean_edge_length(),
        min_edge_m: min_edge,
        max_edge_m: max_edge,
        width_m: bounds.width(),
        height_m: bounds.height(),
        mean_degree: if graph.vertex_count() == 0 {
            0.0
        } else {
            degree_sum as f64 / graph.vertex_count() as f64
        },
        degree_histogram,
        density_m_per_km2: graph.total_length() / area_km2,
    }
}

impl std::fmt::Display for MapStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "map: {} vertices, {} edges, connected = {}",
            self.vertices, self.edges, self.connected
        )?;
        writeln!(
            f,
            "extent: {:.0} m x {:.0} m, {:.1} km of road ({:.0} m/km²)",
            self.width_m,
            self.height_m,
            self.total_length_m / 1000.0,
            self.density_m_per_km2
        )?;
        write!(
            f,
            "edges: mean {:.0} m (min {:.0}, max {:.0}); mean degree {:.2}",
            self.mean_edge_m, self.min_edge_m, self.max_edge_m, self.mean_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GridMapGen, SyntheticCityGen};
    use vdtn_sim_core::SimRng;

    #[test]
    fn grid_stats_exact() {
        let g = GridMapGen {
            cols: 3,
            rows: 3,
            spacing: 100.0,
        }
        .generate();
        let s = map_stats(&g);
        assert_eq!(s.vertices, 9);
        assert_eq!(s.edges, 12);
        assert!(s.connected);
        assert_eq!(s.total_length_m, 1200.0);
        assert_eq!(s.mean_edge_m, 100.0);
        assert_eq!(s.min_edge_m, 100.0);
        assert_eq!(s.max_edge_m, 100.0);
        // Degrees: 4 corners of 2, 4 sides of 3, 1 centre of 4.
        assert_eq!(s.degree_histogram[2], 4);
        assert_eq!(s.degree_histogram[3], 4);
        assert_eq!(s.degree_histogram[4], 1);
        assert!((s.mean_degree - 24.0 / 9.0).abs() < 1e-12);
        // 1200 m over 0.04 km².
        assert!((s.density_m_per_km2 - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn synthetic_city_stats_in_calibrated_band() {
        let g = SyntheticCityGen::default().generate(&mut SimRng::seed_from_u64(1));
        let s = map_stats(&g);
        assert!(s.connected);
        assert!((1000.0..1400.0).contains(&s.width_m));
        assert!((800.0..1100.0).contains(&s.height_m));
        assert!((150.0..500.0).contains(&s.mean_edge_m));
        // Downtown street density: tens of km per km².
        assert!(s.density_m_per_km2 > 3_000.0, "{}", s.density_m_per_km2);
    }

    #[test]
    fn display_renders() {
        let g = GridMapGen::default().generate();
        let s = map_stats(&g);
        let text = format!("{s}");
        assert!(text.contains("vertices"));
        assert!(text.contains("mean degree"));
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::graph::RoadGraphBuilder::new().build();
        let s = map_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.mean_degree, 0.0);
        assert_eq!(s.min_edge_m, 0.0);
    }
}

//! Procedural road-map generators.
//!
//! The paper runs on a WKT extract of downtown Helsinki shipped with the ONE
//! simulator (≈4500 m × 3400 m). That data file is not redistributable here,
//! so [`SyntheticCityGen`] produces a *synthetic* city with the same
//! aggregate properties (extent, block scale, connectivity, mean edge
//! length): an irregular grid with a fraction of streets deleted, a fraction
//! of diagonal shortcut streets added, and jittered intersections. The
//! substitution argument lives in `DESIGN.md`; if you have the original
//! `roads.wkt`, load it through [`crate::wkt`] instead and everything else
//! is unchanged.

use crate::graph::{RoadGraph, RoadGraphBuilder};
use crate::point::Point;
use serde::{Deserialize, Serialize};
use vdtn_sim_core::SimRng;

/// A plain rectangular grid map (every street present, no jitter).
///
/// Useful for tests and for scenarios where analytic expectations are needed
/// (e.g. Manhattan distances).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridMapGen {
    /// Number of intersection columns (≥ 2).
    pub cols: usize,
    /// Number of intersection rows (≥ 2).
    pub rows: usize,
    /// Distance between adjacent intersections, metres.
    pub spacing: f64,
}

impl Default for GridMapGen {
    fn default() -> Self {
        GridMapGen {
            cols: 10,
            rows: 8,
            spacing: 500.0,
        }
    }
}

impl GridMapGen {
    /// Generate the grid graph.
    pub fn generate(&self) -> RoadGraph {
        assert!(self.cols >= 2 && self.rows >= 2, "grid needs at least 2×2");
        assert!(self.spacing > 0.0);
        let mut b = RoadGraphBuilder::new();
        let at = |i: usize, j: usize| Point::new(i as f64 * self.spacing, j as f64 * self.spacing);
        for i in 0..self.cols {
            for j in 0..self.rows {
                if i + 1 < self.cols {
                    b.add_segment(at(i, j), at(i + 1, j));
                }
                if j + 1 < self.rows {
                    b.add_segment(at(i, j), at(i, j + 1));
                }
            }
        }
        b.build()
    }
}

/// Synthetic city generator — the Helsinki-extract substitute.
///
/// Starts from a `cols × rows` grid over `width × height` metres, then:
/// 1. jitters every interior intersection by up to `jitter` metres,
/// 2. deletes `delete_fraction` of the street segments at random,
/// 3. adds `diagonal_fraction` of block diagonals as shortcut streets,
/// 4. keeps the largest connected component (so mobility can always route).
///
/// The defaults are **calibrated to the paper's contact regime**: the paper
/// simulates "a small part of the city of Helsinki" (its Figure 3 shows a
/// downtown sub-area, not ONE's full 4500 m × 3400 m extract), and the
/// policy/protocol effects it reports only arise when 40 vehicles meet
/// frequently enough to exchange most of their buffers. A 1300 m × 1000 m
/// area with ≈330 m blocks reproduces the paper's regime (delivery ratios
/// 0.6–0.98, mean contact ≈30 s; see EXPERIMENTS.md for the calibration
/// evidence). For the full-city extent use [`SyntheticCityGen::full_city`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticCityGen {
    /// Map width in metres.
    pub width: f64,
    /// Map height in metres.
    pub height: f64,
    /// Intersection columns.
    pub cols: usize,
    /// Intersection rows.
    pub rows: usize,
    /// Max jitter applied to interior intersections, metres.
    pub jitter: f64,
    /// Fraction of grid streets deleted (0–1).
    pub delete_fraction: f64,
    /// Fraction of blocks receiving a diagonal street (0–1).
    pub diagonal_fraction: f64,
}

impl Default for SyntheticCityGen {
    /// Defaults sized and calibrated to the paper's "small part of
    /// Helsinki" scenario (see the type docs).
    fn default() -> Self {
        SyntheticCityGen {
            width: 1300.0,
            height: 1000.0,
            cols: 5,
            rows: 4,
            jitter: 40.0,
            delete_fraction: 0.10,
            diagonal_fraction: 0.10,
        }
    }
}

impl SyntheticCityGen {
    /// The full-city extent matching ONE's complete Helsinki extract
    /// (4500 m × 3400 m). Used by the sparse-network ablation.
    pub fn full_city() -> Self {
        SyntheticCityGen {
            width: 4500.0,
            height: 3400.0,
            cols: 16,
            rows: 12,
            jitter: 60.0,
            delete_fraction: 0.12,
            diagonal_fraction: 0.10,
        }
    }
}

impl SyntheticCityGen {
    /// Generate the city graph deterministically from `rng`.
    pub fn generate(&self, rng: &mut SimRng) -> RoadGraph {
        assert!(self.cols >= 2 && self.rows >= 2, "city needs at least 2×2");
        assert!(self.width > 0.0 && self.height > 0.0);
        assert!((0.0..1.0).contains(&self.delete_fraction));
        assert!((0.0..=1.0).contains(&self.diagonal_fraction));

        let dx = self.width / (self.cols - 1) as f64;
        let dy = self.height / (self.rows - 1) as f64;

        // 1. Jittered intersection positions. Border intersections stay put
        //    so the map keeps its full extent.
        let mut pos = vec![Point::ORIGIN; self.cols * self.rows];
        for i in 0..self.cols {
            for j in 0..self.rows {
                let base = Point::new(i as f64 * dx, j as f64 * dy);
                let interior = i > 0 && i + 1 < self.cols && j > 0 && j + 1 < self.rows;
                let p = if interior && self.jitter > 0.0 {
                    Point::new(
                        base.x + rng.range_f64(-self.jitter, self.jitter),
                        base.y + rng.range_f64(-self.jitter, self.jitter),
                    )
                } else {
                    base
                };
                pos[i * self.rows + j] = p;
            }
        }
        let at = |i: usize, j: usize| pos[i * self.rows + j];

        // 2. Grid streets, each kept with probability 1 - delete_fraction.
        let mut b = RoadGraphBuilder::new();
        for i in 0..self.cols {
            for j in 0..self.rows {
                if i + 1 < self.cols && !rng.chance(self.delete_fraction) {
                    b.add_segment(at(i, j), at(i + 1, j));
                }
                if j + 1 < self.rows && !rng.chance(self.delete_fraction) {
                    b.add_segment(at(i, j), at(i, j + 1));
                }
            }
        }

        // 3. Diagonal shortcuts across a fraction of blocks, random direction.
        for i in 0..self.cols - 1 {
            for j in 0..self.rows - 1 {
                if rng.chance(self.diagonal_fraction) {
                    if rng.chance(0.5) {
                        b.add_segment(at(i, j), at(i + 1, j + 1));
                    } else {
                        b.add_segment(at(i + 1, j), at(i, j + 1));
                    }
                }
            }
        }

        // 4. Largest component: guarantees shortest paths exist between any
        //    two vertices that mobility might sample.
        b.build_largest_component()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_map_counts() {
        let g = GridMapGen {
            cols: 4,
            rows: 3,
            spacing: 100.0,
        }
        .generate();
        assert_eq!(g.vertex_count(), 12);
        // Horizontal: 3 per row × 3 rows; vertical: 2 per column × 4 columns.
        assert_eq!(g.edge_count(), 9 + 8);
        assert!(g.is_connected());
        assert_eq!(g.bounds().width(), 300.0);
        assert_eq!(g.bounds().height(), 200.0);
    }

    #[test]
    fn synthetic_city_is_connected_and_sized() {
        let gen = SyntheticCityGen::default();
        let mut rng = SimRng::seed_from_u64(1);
        let g = gen.generate(&mut rng);
        assert!(
            g.is_connected(),
            "largest-component extraction must connect"
        );
        // Retains the large majority of the 5×4 = 20 intersections.
        assert!(g.vertex_count() >= 16, "got {}", g.vertex_count());
        // Extent is preserved by pinned borders (largest component keeps them
        // in practice for these parameters).
        assert!(g.bounds().width() > 1100.0);
        assert!(g.bounds().height() > 850.0);
        // Mean edge length in the right ballpark (grid pitch ≈330 m).
        let mean = g.mean_edge_length();
        assert!((150.0..500.0).contains(&mean), "mean edge {mean}");
    }

    #[test]
    fn full_city_is_connected_and_large() {
        let gen = SyntheticCityGen::full_city();
        let mut rng = SimRng::seed_from_u64(1);
        let g = gen.generate(&mut rng);
        assert!(g.is_connected());
        assert!(g.vertex_count() > 150, "got {}", g.vertex_count());
        assert!(g.bounds().width() > 4000.0);
        assert!(g.bounds().height() > 3000.0);
    }

    #[test]
    fn synthetic_city_deterministic_per_seed() {
        let gen = SyntheticCityGen::default();
        let a = gen.generate(&mut SimRng::seed_from_u64(7));
        let b = gen.generate(&mut SimRng::seed_from_u64(7));
        let c = gen.generate(&mut SimRng::seed_from_u64(8));
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            assert_eq!(pa, pb);
        }
        // Different seed ⇒ (almost surely) different map.
        assert!(
            a.edge_count() != c.edge_count()
                || a.positions().iter().zip(c.positions()).any(|(x, y)| x != y)
        );
    }

    #[test]
    fn no_deletions_no_jitter_reduces_to_grid() {
        let gen = SyntheticCityGen {
            width: 300.0,
            height: 200.0,
            cols: 4,
            rows: 3,
            jitter: 0.0,
            delete_fraction: 0.0,
            diagonal_fraction: 0.0,
        };
        let g = gen.generate(&mut SimRng::seed_from_u64(3));
        assert_eq!(g.vertex_count(), 12);
        assert_eq!(g.edge_count(), 17);
    }

    #[test]
    fn heavy_deletion_still_connected() {
        let gen = SyntheticCityGen {
            delete_fraction: 0.45,
            ..SyntheticCityGen::default()
        };
        for seed in 0..5 {
            let g = gen.generate(&mut SimRng::seed_from_u64(seed));
            assert!(g.is_connected());
            assert!(g.vertex_count() >= 2);
        }
    }
}

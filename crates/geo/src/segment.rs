//! Piecewise-linear motion segments.
//!
//! A [`Segment`] is the unit of the motion-segment protocol (see
//! ARCHITECTURE.md): every movement model exports its current motion as a
//! straight line `origin + velocity · (t − start)` valid for
//! `t ∈ [start, until]`. Both engine disciplines evaluate positions through
//! the *same* closed form — the ticked loop via the model's own step, the
//! event-driven loop via the world's kinematics columns — which is what
//! keeps analytically-computed positions bit-identical to stepped ones.

use crate::point::Point;
use serde::{Deserialize, Serialize};
use vdtn_sim_core::SimTime;

/// One straight-line stretch of a node's trajectory.
///
/// Evaluation clamps to `[start, until]`: before `start` the segment sits at
/// its origin, after `until` it sits at its endpoint (a conservative
/// extrapolation — the owning model replaces the segment at `until`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Position at `start`.
    pub origin: Point,
    /// Velocity in m/s per axis (zero for parked/stationary nodes).
    pub velocity: Point,
    /// Absolute time the segment begins.
    pub start: SimTime,
    /// Absolute time the segment expires (next decision boundary:
    /// waypoint arrival, wait expiry; [`SimTime::MAX`] = forever).
    pub until: SimTime,
}

impl Segment {
    /// A motionless segment holding `pos` over `[start, until]`.
    pub fn stationary(pos: Point, start: SimTime, until: SimTime) -> Segment {
        Segment {
            origin: pos,
            velocity: Point::new(0.0, 0.0),
            start,
            until,
        }
    }

    /// Fold the segment's four canonical fields into a state hash
    /// (origin, velocity, start, until).
    #[inline]
    pub fn hash_into(&self, h: &mut vdtn_sim_core::StateHash) {
        self.origin.hash_into(h);
        self.velocity.hash_into(h);
        h.write_u64(self.start.as_millis());
        h.write_u64(self.until.as_millis());
    }

    /// Closed-form position at absolute time `t`, clamped to the segment's
    /// validity window. This is the one shared evaluation path — every
    /// caller (model stepping, engine columns, contact prediction) must go
    /// through it so identical inputs give bit-identical floats.
    #[inline]
    pub fn position_at(&self, t: SimTime) -> Point {
        let t = t.clamp(self.start, self.until.max(self.start));
        let dt = (t - self.start).as_secs_f64();
        Point::new(
            self.origin.x + self.velocity.x * dt,
            self.origin.y + self.velocity.y * dt,
        )
    }

    /// Scalar speed in m/s.
    #[inline]
    pub fn speed(&self) -> f64 {
        (self.velocity.x * self.velocity.x + self.velocity.y * self.velocity.y).sqrt()
    }

    /// True when the segment carries no motion.
    #[inline]
    pub fn is_parked(&self) -> bool {
        self.velocity.x == 0.0 && self.velocity.y == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn evaluates_linearly_inside_window() {
        let s = Segment {
            origin: Point::new(10.0, 20.0),
            velocity: Point::new(2.0, -1.0),
            start: t(100),
            until: t(110),
        };
        assert_eq!(s.position_at(t(100)), Point::new(10.0, 20.0));
        assert_eq!(s.position_at(t(105)), Point::new(20.0, 15.0));
        assert_eq!(s.position_at(t(110)), Point::new(30.0, 10.0));
    }

    #[test]
    fn clamps_outside_window() {
        let s = Segment {
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(1.0, 0.0),
            start: t(10),
            until: t(20),
        };
        assert_eq!(s.position_at(t(0)), s.position_at(t(10)));
        assert_eq!(s.position_at(t(50)), s.position_at(t(20)));
    }

    #[test]
    fn stationary_never_moves_and_reports_parked() {
        let s = Segment::stationary(Point::new(3.0, 4.0), t(0), SimTime::MAX);
        assert!(s.is_parked());
        assert_eq!(s.speed(), 0.0);
        assert_eq!(s.position_at(t(1_000_000)), Point::new(3.0, 4.0));
    }

    #[test]
    fn speed_is_euclidean_norm() {
        let s = Segment {
            origin: Point::new(0.0, 0.0),
            velocity: Point::new(3.0, 4.0),
            start: t(0),
            until: t(1),
        };
        assert!((s.speed() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_window_holds_origin() {
        // until == start (zero-length leg quantised to the same millisecond):
        // evaluation anywhere returns the origin.
        let s = Segment {
            origin: Point::new(7.0, 7.0),
            velocity: Point::new(5.0, 0.0),
            start: t(5),
            until: t(5),
        };
        assert_eq!(s.position_at(t(4)), Point::new(7.0, 7.0));
        assert_eq!(s.position_at(t(6)), Point::new(7.0, 7.0));
    }
}

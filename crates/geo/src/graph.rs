//! Undirected road graphs.
//!
//! A [`RoadGraph`] is an immutable, validated road network: vertices are
//! street intersections (or bend points) with coordinates, edges are street
//! segments with their Euclidean length as weight. Adjacency is stored in
//! CSR (compressed sparse row) form — one flat `Vec` of neighbour records
//! plus per-vertex offsets — which keeps Dijkstra's inner loop cache-friendly
//! (see the performance-book guidance on flat structures over `Vec<Vec<_>>`).
//!
//! Graphs are constructed through [`RoadGraphBuilder`], which deduplicates
//! coincident vertices (snapping within an epsilon, as map data such as WKT
//! repeats endpoint coordinates per polyline) and can restrict the result to
//! the largest connected component so mobility never strands a vehicle.

use crate::point::{Bounds, Point};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a vertex in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Raw index for slice addressing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of an undirected edge in a [`RoadGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(pub u32);

/// One directed half-edge in CSR storage.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Neighbor {
    /// Target vertex.
    pub to: VertexId,
    /// Edge length in metres (equals Euclidean distance between endpoints).
    pub length: f64,
    /// Undirected edge this half belongs to.
    pub edge: EdgeId,
}

/// An immutable undirected road network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoadGraph {
    positions: Vec<Point>,
    /// CSR offsets: neighbours of vertex `v` live at `adj[offsets[v]..offsets[v+1]]`.
    offsets: Vec<u32>,
    adj: Vec<Neighbor>,
    /// Undirected edge endpoint list, indexed by `EdgeId`.
    edges: Vec<(VertexId, VertexId)>,
    bounds: Bounds,
    total_length: f64,
    /// Lazily-built ALT landmark distances for the A* heuristic. Derived
    /// data, so it is skipped on (de)serialisation and rebuilt on demand.
    #[serde(skip)]
    landmarks: std::sync::OnceLock<crate::shortest_path::Landmarks>,
    /// Lazily-built cumulative edge lengths for length-proportional edge
    /// sampling. Derived data, skipped on (de)serialisation.
    #[serde(skip)]
    length_prefix: std::sync::OnceLock<Vec<f64>>,
}

impl RoadGraph {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Coordinates of a vertex.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// All vertex positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Neighbours of `v` (CSR slice; no allocation).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[Neighbor] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Endpoints of an undirected edge.
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e.0 as usize]
    }

    /// Length of an undirected edge in metres.
    pub fn edge_length(&self, e: EdgeId) -> f64 {
        let (a, b) = self.edge_endpoints(e);
        self.position(a).distance(self.position(b))
    }

    /// Bounding box of all vertices.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Total street length in metres (each undirected edge counted once).
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// Iterator over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.positions.len() as u32).map(VertexId)
    }

    /// The vertex closest to `p` (linear scan; used at setup time only).
    pub fn nearest_vertex(&self, p: Point) -> Option<VertexId> {
        self.positions
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance_sq(p)
                    .partial_cmp(&b.distance_sq(p))
                    .expect("NaN coordinate")
            })
            .map(|(i, _)| VertexId(i as u32))
    }

    /// True if every vertex can reach every other vertex.
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let reachable = self.reachable_from(VertexId(0));
        reachable.iter().all(|&r| r)
    }

    /// BFS reachability mask from `start`.
    pub fn reachable_from(&self, start: VertexId) -> Vec<bool> {
        let mut seen = vec![false; self.vertex_count()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for n in self.neighbors(v) {
                if !seen[n.to.index()] {
                    seen[n.to.index()] = true;
                    queue.push_back(n.to);
                }
            }
        }
        seen
    }

    /// ALT landmark table for goal-directed search, built on first use.
    ///
    /// Four extremal "corner" vertices are chosen deterministically and a
    /// full Dijkstra sweep is run from each; [`crate::shortest_path::astar`]
    /// uses the triangle-inequality bound `|d_L(v) - d_L(goal)|` as its
    /// heuristic, which is exact on grid-like maps and collapses the search
    /// to the optimal corridor.
    pub fn landmarks(&self) -> &crate::shortest_path::Landmarks {
        self.landmarks
            .get_or_init(|| crate::shortest_path::Landmarks::build(self))
    }

    /// The first edge whose cumulative length (edges accumulated in id
    /// order, left-to-right f64 additions) reaches `target` — i.e. the edge
    /// a length-proportional uniform draw over `[0, total_length]` lands
    /// on. Bit-for-bit the edge a sequential `acc += edge_length(e)` scan
    /// with an `acc >= target` stop would choose, including the rounding
    /// fallback to the last edge when `target` exceeds every partial sum,
    /// but answered in O(log E) from a cached prefix table. Panics on
    /// edgeless graphs.
    pub fn edge_at_accumulated_length(&self, target: f64) -> EdgeId {
        assert!(!self.edges.is_empty(), "edgeless graph");
        let prefix = self.length_prefix.get_or_init(|| {
            let mut acc = 0.0;
            (0..self.edges.len())
                .map(|e| {
                    acc += self.edge_length(EdgeId(e as u32));
                    acc
                })
                .collect()
        });
        let i = prefix.partition_point(|&p| p < target);
        EdgeId(i.min(self.edges.len() - 1) as u32)
    }

    /// Mean undirected edge length in metres (0 for edgeless graphs).
    pub fn mean_edge_length(&self) -> f64 {
        if self.edges.is_empty() {
            0.0
        } else {
            self.total_length / self.edges.len() as f64
        }
    }
}

/// Builder for [`RoadGraph`]: accepts raw segments, snaps coincident
/// endpoints, deduplicates parallel edges, and validates the result.
pub struct RoadGraphBuilder {
    snap_eps: f64,
    positions: Vec<Point>,
    /// Map from quantised coordinates to vertex id, for snapping.
    index: HashMap<(i64, i64), Vec<u32>>,
    edges: Vec<(u32, u32)>,
}

impl Default for RoadGraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RoadGraphBuilder {
    /// Builder with the default snap epsilon (0.01 m).
    pub fn new() -> Self {
        Self::with_snap_epsilon(0.01)
    }

    /// Builder with an explicit snapping tolerance in metres.
    pub fn with_snap_epsilon(snap_eps: f64) -> Self {
        assert!(snap_eps >= 0.0);
        RoadGraphBuilder {
            snap_eps,
            positions: Vec::new(),
            index: HashMap::new(),
            edges: Vec::new(),
        }
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        let scale = 1.0 / self.snap_eps.max(1e-9);
        ((p.x * scale).round() as i64, (p.y * scale).round() as i64)
    }

    /// Add (or find) a vertex at `p`, snapping to any existing vertex within
    /// the epsilon.
    pub fn add_vertex(&mut self, p: Point) -> VertexId {
        let cell = self.cell_of(p);
        // Check the 3×3 cell neighbourhood for an existing vertex within eps.
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(ids) = self.index.get(&(cell.0 + dx, cell.1 + dy)) {
                    for &id in ids {
                        if self.positions[id as usize].distance(p) <= self.snap_eps {
                            return VertexId(id);
                        }
                    }
                }
            }
        }
        let id = self.positions.len() as u32;
        self.positions.push(p);
        self.index.entry(cell).or_default().push(id);
        VertexId(id)
    }

    /// Add an undirected street segment between two points.
    pub fn add_segment(&mut self, a: Point, b: Point) {
        let va = self.add_vertex(a);
        let vb = self.add_vertex(b);
        self.add_edge(va, vb);
    }

    /// Add an undirected edge between existing vertices. Self-loops are ignored.
    pub fn add_edge(&mut self, a: VertexId, b: VertexId) {
        if a == b {
            return;
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        self.edges.push((lo, hi));
    }

    /// Add a polyline: consecutive points become chained segments.
    pub fn add_polyline(&mut self, pts: &[Point]) {
        for w in pts.windows(2) {
            self.add_segment(w[0], w[1]);
        }
    }

    /// Number of vertices added so far.
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Finalise into a validated [`RoadGraph`].
    ///
    /// Deduplicates parallel edges and computes CSR adjacency. Use
    /// [`RoadGraphBuilder::build_largest_component`] when the input may be
    /// disconnected.
    pub fn build(mut self) -> RoadGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.positions.len();
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![
            Neighbor {
                to: VertexId(0),
                length: 0.0,
                edge: EdgeId(0)
            };
            acc as usize
        ];
        let mut total_length = 0.0;
        let mut edges = Vec::with_capacity(self.edges.len());
        for (eidx, &(a, b)) in self.edges.iter().enumerate() {
            let pa = self.positions[a as usize];
            let pb = self.positions[b as usize];
            let len = pa.distance(pb);
            total_length += len;
            let e = EdgeId(eidx as u32);
            adj[cursor[a as usize] as usize] = Neighbor {
                to: VertexId(b),
                length: len,
                edge: e,
            };
            cursor[a as usize] += 1;
            adj[cursor[b as usize] as usize] = Neighbor {
                to: VertexId(a),
                length: len,
                edge: e,
            };
            cursor[b as usize] += 1;
            edges.push((VertexId(a), VertexId(b)));
        }

        let mut bounds = Bounds::empty();
        for &p in &self.positions {
            bounds.expand(p);
        }

        RoadGraph {
            positions: self.positions,
            offsets,
            adj,
            edges,
            bounds,
            total_length,
            landmarks: Default::default(),
            length_prefix: Default::default(),
        }
    }

    /// Build, then restrict to the largest connected component, remapping
    /// vertex ids densely. Guarantees [`RoadGraph::is_connected`].
    pub fn build_largest_component(self) -> RoadGraph {
        let full = self.build();
        if full.vertex_count() == 0 || full.is_connected() {
            return full;
        }
        // Label components.
        let n = full.vertex_count();
        let mut comp = vec![u32::MAX; n];
        let mut sizes: Vec<u32> = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            let label = sizes.len() as u32;
            let mut size = 0u32;
            let mut stack = vec![start];
            comp[start] = label;
            while let Some(v) = stack.pop() {
                size += 1;
                for nb in full.neighbors(VertexId(v as u32)) {
                    let t = nb.to.index();
                    if comp[t] == u32::MAX {
                        comp[t] = label;
                        stack.push(t);
                    }
                }
            }
            sizes.push(size);
        }
        let best = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .map(|(i, _)| i as u32)
            .expect("at least one component");

        let mut rebuilt = RoadGraphBuilder::with_snap_epsilon(0.0);
        let mut remap = vec![u32::MAX; n];
        for v in 0..n {
            if comp[v] == best {
                remap[v] = rebuilt.add_vertex(full.position(VertexId(v as u32))).0;
            }
        }
        for &(a, b) in &full.edges {
            if comp[a.index()] == best {
                rebuilt.add_edge(VertexId(remap[a.index()]), VertexId(remap[b.index()]));
            }
        }
        rebuilt.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> RoadGraph {
        let mut b = RoadGraphBuilder::new();
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(0.0, 100.0),
        ];
        b.add_segment(pts[0], pts[1]);
        b.add_segment(pts[1], pts[2]);
        b.add_segment(pts[2], pts[3]);
        b.add_segment(pts[3], pts[0]);
        b.build()
    }

    #[test]
    fn builds_square() {
        let g = square();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.is_connected());
        assert_eq!(g.total_length(), 400.0);
        assert_eq!(g.mean_edge_length(), 100.0);
        for v in g.vertex_ids() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn snapping_merges_coincident_endpoints() {
        let mut b = RoadGraphBuilder::with_snap_epsilon(0.5);
        b.add_segment(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        // Endpoint nearly identical to (10,0): must snap to the same vertex.
        b.add_segment(Point::new(10.2, 0.1), Point::new(20.0, 0.0));
        let g = b.build();
        assert_eq!(g.vertex_count(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn parallel_edges_are_deduplicated() {
        let mut b = RoadGraphBuilder::new();
        b.add_segment(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        b.add_segment(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        b.add_segment(Point::new(5.0, 0.0), Point::new(0.0, 0.0));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = RoadGraphBuilder::new();
        let v = b.add_vertex(Point::new(1.0, 1.0));
        b.add_edge(v, v);
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn nearest_vertex_finds_closest() {
        let g = square();
        let v = g.nearest_vertex(Point::new(90.0, 10.0)).unwrap();
        assert_eq!(g.position(v), Point::new(100.0, 0.0));
        assert!(RoadGraphBuilder::new()
            .build()
            .nearest_vertex(Point::ORIGIN)
            .is_none());
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = RoadGraphBuilder::new();
        // Component A: triangle (3 vertices).
        b.add_segment(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        b.add_segment(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
        b.add_segment(Point::new(0.0, 1.0), Point::new(0.0, 0.0));
        // Component B: single far-away segment (2 vertices).
        b.add_segment(Point::new(100.0, 100.0), Point::new(101.0, 100.0));
        let g = b.build_largest_component();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_connected());
    }

    #[test]
    fn reachability_mask() {
        let mut b = RoadGraphBuilder::new();
        b.add_segment(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        b.add_segment(Point::new(50.0, 0.0), Point::new(51.0, 0.0));
        let g = b.build();
        let mask = g.reachable_from(VertexId(0));
        assert_eq!(mask.iter().filter(|&&m| m).count(), 2);
        assert!(!g.is_connected());
    }

    #[test]
    fn polyline_chains_segments() {
        let mut b = RoadGraphBuilder::new();
        b.add_polyline(&[
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ]);
        let g = b.build();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn csr_neighbors_consistent_with_edges() {
        let g = square();
        for v in g.vertex_ids() {
            for n in g.neighbors(v) {
                let (a, b) = g.edge_endpoints(n.edge);
                assert!(a == v || b == v);
                assert!((n.length - g.position(v).distance(g.position(n.to))).abs() < 1e-9);
            }
        }
    }
}

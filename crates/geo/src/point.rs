//! 2-D points and segment geometry (metres).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the simulation plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Construct from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Fold both coordinates into a canonical state hash (IEEE bit
    /// patterns, x before y).
    #[inline]
    pub fn hash_into(self, h: &mut vdtn_sim_core::StateHash) {
        h.write_f64(self.x);
        h.write_f64(self.y);
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared distance — avoids the sqrt on hot comparison paths
    /// (contact detection compares against range²).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// The point `dist` metres from `self` towards `target`.
    /// If the points coincide, returns `self`.
    pub fn advance_towards(self, target: Point, dist: f64) -> Point {
        let total = self.distance(target);
        if total <= f64::EPSILON {
            return self;
        }
        self.lerp(target, (dist / total).min(1.0))
    }

    /// Shortest distance from this point to the segment `a`–`b`.
    pub fn distance_to_segment(self, a: Point, b: Point) -> f64 {
        let len_sq = a.distance_sq(b);
        if len_sq <= f64::EPSILON {
            return self.distance(a);
        }
        let t = (((self.x - a.x) * (b.x - a.x) + (self.y - a.y) * (b.y - a.y)) / len_sq)
            .clamp(0.0, 1.0);
        self.distance(a.lerp(b, t))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Bounds {
    /// The empty bounds (inverted extremes), ready for [`Bounds::expand`].
    pub fn empty() -> Self {
        Bounds {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Grow to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Width (x extent); 0 for empty bounds.
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent); 0 for empty bounds.
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// True if `p` lies inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_squared_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn advance_towards_clamps_at_target() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.advance_towards(b, 4.0), Point::new(4.0, 0.0));
        assert_eq!(a.advance_towards(b, 40.0), b);
        assert_eq!(a.advance_towards(a, 5.0), a);
    }

    #[test]
    fn segment_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(Point::new(5.0, 3.0).distance_to_segment(a, b), 3.0);
        assert_eq!(Point::new(-4.0, 0.0).distance_to_segment(a, b), 4.0);
        assert_eq!(Point::new(13.0, 4.0).distance_to_segment(a, b), 5.0);
        // Degenerate segment.
        assert_eq!(Point::new(3.0, 4.0).distance_to_segment(a, a), 5.0);
    }

    #[test]
    fn bounds_expand_contains() {
        let mut b = Bounds::empty();
        b.expand(Point::new(1.0, 2.0));
        b.expand(Point::new(-3.0, 7.0));
        assert!(b.contains(Point::new(0.0, 5.0)));
        assert!(!b.contains(Point::new(2.0, 5.0)));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 5.0);
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!((b - a).norm(), (13.0f64).sqrt());
    }
}

//! Traffic generation.
//!
//! The paper's workload: messages are created with an inter-creation
//! interval uniform in \[15, 30\] s, sizes uniform in \[500 kB, 2 MB\], with
//! source and destination drawn uniformly among the *vehicles* (relay nodes
//! only store and forward; they never originate traffic).

use crate::message::{Message, MessageId};
use serde::{Deserialize, Serialize};
use vdtn_sim_core::{NodeId, SimDuration, SimRng, SimTime};

/// Workload parameters. Defaults are the paper's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Minimum inter-creation interval, seconds.
    pub interval_lo: f64,
    /// Maximum inter-creation interval, seconds.
    pub interval_hi: f64,
    /// Minimum message size, bytes.
    pub size_lo: u64,
    /// Maximum message size, bytes.
    pub size_hi: u64,
    /// Message time-to-live.
    pub ttl: SimDuration,
    /// Nodes eligible as sources and destinations (the scenario's vehicles).
    pub endpoints: Vec<NodeId>,
}

impl TrafficConfig {
    /// Paper defaults for the given endpoint set and TTL.
    pub fn paper(endpoints: Vec<NodeId>, ttl: SimDuration) -> Self {
        TrafficConfig {
            interval_lo: 15.0,
            interval_hi: 30.0,
            size_lo: 500_000,
            size_hi: 2_000_000,
            ttl,
            endpoints,
        }
    }

    /// Validate parameters; panics with a descriptive message on nonsense.
    pub fn validate(&self) {
        assert!(
            self.interval_lo > 0.0 && self.interval_hi >= self.interval_lo,
            "invalid interval range [{}, {}]",
            self.interval_lo,
            self.interval_hi
        );
        assert!(
            self.size_lo > 0 && self.size_hi >= self.size_lo,
            "invalid size range [{}, {}]",
            self.size_lo,
            self.size_hi
        );
        assert!(
            self.endpoints.len() >= 2,
            "traffic needs at least two endpoints"
        );
        assert!(
            !self.ttl.is_zero(),
            "zero TTL would expire messages at birth"
        );
    }

    /// Expected messages created over `horizon` (mean-interval estimate).
    pub fn expected_messages(&self, horizon: SimDuration) -> f64 {
        horizon.as_secs_f64() / ((self.interval_lo + self.interval_hi) / 2.0)
    }
}

/// Deterministic message-creation stream.
///
/// Acts as an iterator of messages tagged with creation times; the engine
/// feeds them into its event queue. Ids are assigned sequentially from 0.
pub struct TrafficGenerator {
    cfg: TrafficConfig,
    rng: SimRng,
    next_time: SimTime,
    next_id: u64,
}

impl TrafficGenerator {
    /// Create a generator; the first message appears one interval after t=0.
    pub fn new(cfg: TrafficConfig, mut rng: SimRng) -> Self {
        cfg.validate();
        let first = SimDuration::from_secs_f64(rng.range_f64(cfg.interval_lo, cfg.interval_hi));
        TrafficGenerator {
            cfg,
            rng,
            next_time: SimTime::ZERO + first,
            next_id: 0,
        }
    }

    /// Time of the next message creation.
    pub fn peek_time(&self) -> SimTime {
        self.next_time
    }

    /// Produce the next message (advancing the internal clock).
    pub fn next_message(&mut self) -> Message {
        let (si, di) = self.rng.choose_two_distinct(self.cfg.endpoints.len());
        let src = self.cfg.endpoints[si];
        let dst = self.cfg.endpoints[di];
        let size = self.rng.range_u64(self.cfg.size_lo, self.cfg.size_hi);
        let msg = Message::new(
            MessageId(self.next_id),
            src,
            dst,
            size,
            self.next_time,
            self.cfg.ttl,
        );
        self.next_id += 1;
        let gap = self
            .rng
            .range_f64(self.cfg.interval_lo, self.cfg.interval_hi);
        self.next_time += SimDuration::from_secs_f64(gap);
        msg
    }

    /// Drain every message due at or before `now`.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<Message> {
        let mut out = Vec::new();
        while self.next_time <= now {
            out.push(self.next_message());
        }
        out
    }

    /// Messages created so far.
    pub fn created_count(&self) -> u64 {
        self.next_id
    }

    /// The workload parameters this generator draws from.
    pub fn config(&self) -> &TrafficConfig {
        &self.cfg
    }

    /// Dynamic state for snapshotting: (RNG, next creation time, next id).
    /// The config is not included — restore re-supplies it from the scenario.
    pub fn snapshot_state(&self) -> (SimRng, SimTime, u64) {
        (self.rng.clone(), self.next_time, self.next_id)
    }

    /// Rebuild a generator mid-stream from snapshotted state. Unlike
    /// [`TrafficGenerator::new`] this draws nothing: the first interval was
    /// already consumed by the original generator.
    pub fn restore(cfg: TrafficConfig, rng: SimRng, next_time: SimTime, next_id: u64) -> Self {
        cfg.validate();
        TrafficGenerator {
            cfg,
            rng,
            next_time,
            next_id,
        }
    }

    /// Fold the generator's dynamic state into a canonical state hash.
    pub fn hash_into(&self, h: &mut vdtn_sim_core::StateHash) {
        for w in self.rng.state_words() {
            h.write_u64(w);
        }
        h.write_u64(self.next_time.as_millis());
        h.write_u64(self.next_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TrafficConfig {
        TrafficConfig::paper((0..40).map(NodeId).collect(), SimDuration::from_mins(60))
    }

    #[test]
    fn intervals_within_range() {
        let mut g = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(1));
        let mut prev = SimTime::ZERO;
        for _ in 0..1_000 {
            let t = g.peek_time();
            let gap = t.since(prev).as_secs_f64();
            assert!(
                (15.0..=30.0).contains(&gap),
                "inter-creation gap {gap} outside [15, 30]"
            );
            prev = t;
            g.next_message();
        }
    }

    #[test]
    fn sizes_within_range_and_endpoints_distinct() {
        let mut g = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(2));
        for _ in 0..1_000 {
            let m = g.next_message();
            assert!((500_000..=2_000_000).contains(&m.size));
            assert_ne!(m.src, m.dst);
            assert!(m.src.0 < 40 && m.dst.0 < 40);
            assert_eq!(m.ttl, SimDuration::from_mins(60));
            assert_eq!(m.hops, 0);
        }
    }

    #[test]
    fn ids_sequential_and_unique() {
        let mut g = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(3));
        for i in 0..100 {
            assert_eq!(g.next_message().id, MessageId(i));
        }
        assert_eq!(g.created_count(), 100);
    }

    #[test]
    fn drain_due_respects_clock() {
        let mut g = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(4));
        let first = g.peek_time();
        assert!(g.drain_due(first - SimDuration::from_millis(1)).is_empty());
        let batch = g.drain_due(first + SimDuration::from_secs(120));
        // 120 s window with gaps of 15–30 s: between 4 and 9 messages.
        assert!(
            (4..=9).contains(&batch.len()),
            "unexpected batch size {}",
            batch.len()
        );
        for m in &batch {
            assert!(m.created <= first + SimDuration::from_secs(120));
        }
    }

    #[test]
    fn rate_matches_expectation_over_long_horizon() {
        let mut g = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(5));
        let horizon = SimDuration::from_hours(12);
        let batch = g.drain_due(SimTime::ZERO + horizon);
        let expected = cfg().expected_messages(horizon); // 43200 / 22.5 = 1920
        let actual = batch.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "created {actual}, expected ≈{expected}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(6));
        let mut b = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(6));
        for _ in 0..200 {
            assert_eq!(a.next_message(), b.next_message());
        }
    }

    #[test]
    fn restore_resumes_identical_stream() {
        let mut a = TrafficGenerator::new(cfg(), SimRng::seed_from_u64(7));
        for _ in 0..50 {
            a.next_message();
        }
        let (rng, t, id) = a.snapshot_state();
        let mut b = TrafficGenerator::restore(cfg(), rng, t, id);
        for _ in 0..50 {
            assert_eq!(a.next_message(), b.next_message());
        }
    }

    #[test]
    #[should_panic(expected = "at least two endpoints")]
    fn rejects_single_endpoint() {
        TrafficConfig::paper(vec![NodeId(0)], SimDuration::from_mins(60)).validate();
    }

    #[test]
    #[should_panic(expected = "invalid interval range")]
    fn rejects_bad_interval() {
        let mut c = cfg();
        c.interval_hi = 1.0;
        c.validate();
    }
}

//! The DTN bundle layer: messages, buffers, and the paper's policies.
//!
//! This crate is the heart of the reproduction. The paper's contribution is
//! not a routing protocol but a pair of *buffer policies*:
//!
//! * a **scheduling policy** ([`SchedulingPolicy`]) decides the order in
//!   which stored messages are offered to a peer at a contact, and
//! * a **dropping policy** ([`DropPolicy`]) decides which stored message is
//!   evicted when an incoming message does not fit in the buffer.
//!
//! The paper's combinations (its Table I): `FIFO–FIFO`, `Random–FIFO`, and
//! `LifetimeDesc–LifetimeAsc`. Extensions beyond the paper (ascending
//! lifetime scheduling, size-based policies, random drop) are provided for
//! the ablation benches.
//!
//! # Example
//!
//! ```
//! use vdtn_bundle::{Buffer, Message, MessageId, SchedulingPolicy};
//! use vdtn_sim_core::{NodeId, SimDuration, SimRng, SimTime};
//!
//! let mut buffer = Buffer::new(1_000);
//! for (id, ttl_mins) in [(1, 30), (2, 90), (3, 60)] {
//!     buffer
//!         .insert(Message::new(
//!             MessageId(id),
//!             NodeId(0),
//!             NodeId(1),
//!             100,
//!             SimTime::ZERO,
//!             SimDuration::from_mins(ttl_mins),
//!         ))
//!         .unwrap();
//! }
//! // The paper's winning policy offers the longest remaining lifetime first.
//! let mut rng = SimRng::seed_from_u64(1);
//! let order = SchedulingPolicy::LifetimeDesc.order(&buffer, SimTime::ZERO, &mut rng);
//! assert_eq!(order, vec![MessageId(2), MessageId(3), MessageId(1)]);
//! ```

pub mod arena;
pub mod buffer;
pub mod message;
pub mod policy;
pub mod schedule;
pub mod traffic;

pub use arena::{MessageArena, MsgHandle, MsgMeta};
pub use buffer::{Buffer, BufferDelta, BufferError, DeltaKind, RankMeta};
pub use message::{Message, MessageId};
pub use policy::{DropPolicy, PolicyCombo, SchedulingPolicy};
pub use schedule::ScheduleCache;
pub use traffic::{TrafficConfig, TrafficGenerator};

//! The DTN bundle layer: messages, buffers, and the paper's policies.
//!
//! This crate is the heart of the reproduction. The paper's contribution is
//! not a routing protocol but a pair of *buffer policies*:
//!
//! * a **scheduling policy** ([`SchedulingPolicy`]) decides the order in
//!   which stored messages are offered to a peer at a contact, and
//! * a **dropping policy** ([`DropPolicy`]) decides which stored message is
//!   evicted when an incoming message does not fit in the buffer.
//!
//! The paper's combinations (its Table I): `FIFO–FIFO`, `Random–FIFO`, and
//! `LifetimeDesc–LifetimeAsc`. Extensions beyond the paper (ascending
//! lifetime scheduling, size-based policies, random drop) are provided for
//! the ablation benches.

pub mod buffer;
pub mod message;
pub mod policy;
pub mod traffic;

pub use buffer::{Buffer, BufferError};
pub use message::{Message, MessageId};
pub use policy::{DropPolicy, PolicyCombo, SchedulingPolicy};
pub use traffic::{TrafficConfig, TrafficGenerator};

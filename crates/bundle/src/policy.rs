//! Scheduling and dropping policies — the paper's contribution.
//!
//! *Scheduling* orders the messages a node offers to a peer at a contact
//! opportunity; *dropping* selects eviction victims on buffer overflow.
//! Figure 2 of the paper illustrates both; its Table I lists the evaluated
//! combinations, exposed here as [`PolicyCombo`] presets.
//!
//! The key idea being reproduced: ordering transmissions by **descending
//! remaining lifetime** spreads copies that will live long enough to be
//! relayed again, while dropping by **ascending remaining lifetime** evicts
//! copies that were about to die anyway — together cutting average delivery
//! delay sharply and even *raising* delivery probability.

use crate::buffer::Buffer;
use crate::message::MessageId;
use serde::{Deserialize, Serialize};
use vdtn_sim_core::{SimRng, SimTime};

/// Transmission-order policy at a contact opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-come, first-served by reception time (paper baseline).
    Fifo,
    /// Uniform random order, re-drawn at every contact (paper's middle policy).
    Random,
    /// Longest remaining TTL first (the paper's winning policy).
    LifetimeDesc,
    /// Shortest remaining TTL first (extension; the mirror image, included
    /// for the ablation benches).
    LifetimeAsc,
    /// Smallest message first (extension: maximises messages-per-contact).
    SmallestFirst,
    /// Newest created first (extension).
    YoungestFirst,
    /// Fewest hops first (extension: MaxProp-style head start for young
    /// copies, without the adaptive threshold).
    FewestHops,
}

impl SchedulingPolicy {
    /// Order the buffer's message ids for transmission, most-preferred first.
    ///
    /// Ties (identical keys) preserve reception order, so results are fully
    /// deterministic given the RNG stream.
    ///
    /// Every policy except [`SchedulingPolicy::Random`] keys on **immutable**
    /// message fields, so the result is a pure function of the buffer's
    /// membership state and can be cached across ticks (see
    /// [`crate::ScheduleCache`]). In particular the lifetime policies sort by
    /// *absolute expiry* rather than remaining TTL: at any fixed `now` the
    /// two keys induce the same ranking over non-expired messages (expiry =
    /// now + remaining), and expired messages — where the saturating
    /// remaining-TTL key would tie at zero — are filtered out by every
    /// scheduling consumer before use.
    pub fn order(&self, buffer: &Buffer, _now: SimTime, rng: &mut SimRng) -> Vec<MessageId> {
        let mut ids: Vec<MessageId> = buffer.ids_in_order().collect();
        match self {
            SchedulingPolicy::Fifo => {} // reception order already
            SchedulingPolicy::Random => rng.shuffle(&mut ids),
            SchedulingPolicy::LifetimeDesc => {
                ids.sort_by_key(|&id| {
                    std::cmp::Reverse(buffer.get(id).expect("listed id").expiry())
                });
            }
            SchedulingPolicy::LifetimeAsc => {
                ids.sort_by_key(|&id| buffer.get(id).expect("listed id").expiry());
            }
            SchedulingPolicy::SmallestFirst => {
                ids.sort_by_key(|&id| buffer.get(id).expect("listed id").size);
            }
            SchedulingPolicy::YoungestFirst => {
                ids.sort_by_key(|&id| {
                    std::cmp::Reverse(buffer.get(id).expect("listed id").created)
                });
            }
            SchedulingPolicy::FewestHops => {
                ids.sort_by_key(|&id| buffer.get(id).expect("listed id").hops);
            }
        }
        ids
    }

    /// Short label used in reports and figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulingPolicy::Fifo => "FIFO",
            SchedulingPolicy::Random => "Random",
            SchedulingPolicy::LifetimeDesc => "Lifetime DESC",
            SchedulingPolicy::LifetimeAsc => "Lifetime ASC",
            SchedulingPolicy::SmallestFirst => "Smallest First",
            SchedulingPolicy::YoungestFirst => "Youngest First",
            SchedulingPolicy::FewestHops => "Fewest Hops",
        }
    }
}

/// Buffer-overflow eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropPolicy {
    /// Drop the head of the reception queue ("drop head", paper baseline).
    Fifo,
    /// Drop the message whose remaining TTL expires soonest (paper's
    /// winning policy).
    LifetimeAsc,
    /// Drop a uniformly random message (extension).
    Random,
    /// Drop the largest message (extension: frees the most space per drop).
    LargestFirst,
    /// Drop the youngest-received message ("drop tail", extension).
    Tail,
    /// Drop the copy that has travelled the most hops (extension: MaxProp-
    /// style — well-travelled copies are likely already replicated).
    MostHops,
}

impl DropPolicy {
    /// Choose the eviction victim among stored messages for which
    /// `protected` returns false. Returns `None` when every stored message
    /// is protected (or the buffer is empty).
    pub fn select_victim(
        &self,
        buffer: &Buffer,
        now: SimTime,
        rng: &mut SimRng,
        protected: impl Fn(MessageId) -> bool,
    ) -> Option<MessageId> {
        let candidates: Vec<MessageId> =
            buffer.ids_in_order().filter(|&id| !protected(id)).collect();
        if candidates.is_empty() {
            return None;
        }
        let victim = match self {
            DropPolicy::Fifo => candidates[0],
            DropPolicy::Tail => *candidates.last().expect("non-empty"),
            DropPolicy::Random => *rng.choose(&candidates),
            DropPolicy::LifetimeAsc => candidates
                .into_iter()
                .min_by_key(|&id| buffer.get(id).expect("listed id").remaining_ttl(now))
                .expect("non-empty"),
            DropPolicy::LargestFirst => candidates
                .into_iter()
                .max_by_key(|&id| buffer.get(id).expect("listed id").size)
                .expect("non-empty"),
            DropPolicy::MostHops => candidates
                .into_iter()
                .max_by_key(|&id| buffer.get(id).expect("listed id").hops)
                .expect("non-empty"),
        };
        Some(victim)
    }

    /// Short label used in reports and figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            DropPolicy::Fifo => "FIFO",
            DropPolicy::LifetimeAsc => "Lifetime ASC",
            DropPolicy::Random => "Random",
            DropPolicy::LargestFirst => "Largest First",
            DropPolicy::Tail => "Tail",
            DropPolicy::MostHops => "Most Hops",
        }
    }
}

/// A scheduling–dropping pair, as evaluated in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PolicyCombo {
    /// Transmission ordering.
    pub scheduling: SchedulingPolicy,
    /// Overflow eviction.
    pub dropping: DropPolicy,
}

impl PolicyCombo {
    /// Paper combination 1: FIFO scheduling, FIFO (drop-head) dropping.
    pub const FIFO_FIFO: PolicyCombo = PolicyCombo {
        scheduling: SchedulingPolicy::Fifo,
        dropping: DropPolicy::Fifo,
    };
    /// Paper combination 2: Random scheduling, FIFO dropping.
    pub const RANDOM_FIFO: PolicyCombo = PolicyCombo {
        scheduling: SchedulingPolicy::Random,
        dropping: DropPolicy::Fifo,
    };
    /// Paper combination 3 (the winner): Lifetime DESC scheduling,
    /// Lifetime ASC dropping.
    pub const LIFETIME: PolicyCombo = PolicyCombo {
        scheduling: SchedulingPolicy::LifetimeDesc,
        dropping: DropPolicy::LifetimeAsc,
    };

    /// The paper's Table I, in presentation order.
    pub fn paper_table() -> [PolicyCombo; 3] {
        [Self::FIFO_FIFO, Self::RANDOM_FIFO, Self::LIFETIME]
    }

    /// Legend label, e.g. `"Lifetime DESC-Lifetime ASC"`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.scheduling.label(), self.dropping.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use vdtn_sim_core::{NodeId, SimDuration};

    /// Buffer with messages: id 1 (TTL rem 10 min, 100 B), id 2 (rem 30 min,
    /// 300 B), id 3 (rem 20 min, 200 B), received in id order.
    fn setup() -> (Buffer, SimTime) {
        let mut b = Buffer::new(10_000);
        let now = SimTime::from_secs_f64(0.0);
        for (id, ttl_min, size) in [(1u64, 10u64, 100u64), (2, 30, 300), (3, 20, 200)] {
            let mut m = Message::new(
                MessageId(id),
                NodeId(0),
                NodeId(9),
                size,
                now,
                SimDuration::from_mins(ttl_min),
            );
            m.received = now + SimDuration::from_secs(id);
            b.insert(m).unwrap();
        }
        (b, now)
    }

    fn ids(v: &[MessageId]) -> Vec<u64> {
        v.iter().map(|m| m.0).collect()
    }

    #[test]
    fn fifo_preserves_reception_order() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            ids(&SchedulingPolicy::Fifo.order(&b, now, &mut rng)),
            [1, 2, 3]
        );
    }

    #[test]
    fn lifetime_desc_puts_longest_ttl_first() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            ids(&SchedulingPolicy::LifetimeDesc.order(&b, now, &mut rng)),
            [2, 3, 1]
        );
    }

    #[test]
    fn lifetime_asc_is_the_mirror() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            ids(&SchedulingPolicy::LifetimeAsc.order(&b, now, &mut rng)),
            [1, 3, 2]
        );
    }

    #[test]
    fn smallest_and_youngest() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            ids(&SchedulingPolicy::SmallestFirst.order(&b, now, &mut rng)),
            [1, 3, 2]
        );
        // All created at the same instant: YoungestFirst falls back to
        // reception order (stable sort).
        assert_eq!(
            ids(&SchedulingPolicy::YoungestFirst.order(&b, now, &mut rng)),
            [1, 2, 3]
        );
    }

    #[test]
    fn random_is_permutation_and_seed_deterministic() {
        let (b, now) = setup();
        let mut rng1 = SimRng::seed_from_u64(42);
        let mut rng2 = SimRng::seed_from_u64(42);
        let o1 = SchedulingPolicy::Random.order(&b, now, &mut rng1);
        let o2 = SchedulingPolicy::Random.order(&b, now, &mut rng2);
        assert_eq!(o1, o2);
        let mut sorted = ids(&o1);
        sorted.sort_unstable();
        assert_eq!(sorted, [1, 2, 3]);
    }

    #[test]
    fn drop_fifo_picks_head_lifetime_picks_soonest() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            DropPolicy::Fifo.select_victim(&b, now, &mut rng, |_| false),
            Some(MessageId(1))
        );
        assert_eq!(
            DropPolicy::LifetimeAsc.select_victim(&b, now, &mut rng, |_| false),
            Some(MessageId(1))
        );
        assert_eq!(
            DropPolicy::LargestFirst.select_victim(&b, now, &mut rng, |_| false),
            Some(MessageId(2))
        );
        assert_eq!(
            DropPolicy::Tail.select_victim(&b, now, &mut rng, |_| false),
            Some(MessageId(3))
        );
    }

    #[test]
    fn lifetime_drop_tracks_time() {
        // Later in the run, message 3 (20 min TTL) may expire sooner than
        // message 1 if 1 was already dropped; here check the key uses *now*.
        let (b, _) = setup();
        let later = SimTime::from_secs_f64(9.0 * 60.0); // 9 min in
        let mut rng = SimRng::seed_from_u64(1);
        // Remaining: id1 = 1 min, id3 = 11 min, id2 = 21 min → still id 1.
        assert_eq!(
            DropPolicy::LifetimeAsc.select_victim(&b, later, &mut rng, |_| false),
            Some(MessageId(1))
        );
    }

    #[test]
    fn protection_filters_victims() {
        let (b, now) = setup();
        let mut rng = SimRng::seed_from_u64(1);
        let victim = DropPolicy::Fifo.select_victim(&b, now, &mut rng, |id| id == MessageId(1));
        assert_eq!(victim, Some(MessageId(2)));
        let none = DropPolicy::LifetimeAsc.select_victim(&b, now, &mut rng, |_| true);
        assert_eq!(none, None);
    }

    #[test]
    fn empty_buffer_yields_no_victim() {
        let b = Buffer::new(100);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            DropPolicy::Random.select_victim(&b, SimTime::ZERO, &mut rng, |_| false),
            None
        );
    }

    #[test]
    fn hop_based_policies() {
        let mut b = Buffer::new(10_000);
        let now = SimTime::ZERO;
        for (id, hops) in [(1u64, 3u32), (2, 0), (3, 7)] {
            let mut m = Message::new(
                MessageId(id),
                NodeId(0),
                NodeId(9),
                100,
                now,
                SimDuration::from_mins(60),
            );
            m.hops = hops;
            b.insert(m).unwrap();
        }
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            ids(&SchedulingPolicy::FewestHops.order(&b, now, &mut rng)),
            [2, 1, 3]
        );
        assert_eq!(
            DropPolicy::MostHops.select_victim(&b, now, &mut rng, |_| false),
            Some(MessageId(3))
        );
        assert_eq!(SchedulingPolicy::FewestHops.label(), "Fewest Hops");
        assert_eq!(DropPolicy::MostHops.label(), "Most Hops");
    }

    #[test]
    fn combo_labels() {
        assert_eq!(PolicyCombo::FIFO_FIFO.label(), "FIFO-FIFO");
        assert_eq!(PolicyCombo::RANDOM_FIFO.label(), "Random-FIFO");
        assert_eq!(PolicyCombo::LIFETIME.label(), "Lifetime DESC-Lifetime ASC");
        assert_eq!(PolicyCombo::paper_table().len(), 3);
    }
}

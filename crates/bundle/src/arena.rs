//! Interned message metadata — one record per *logical* message.
//!
//! Under flooding protocols a single logical message is replicated into
//! hundreds of node buffers, and before this arena existed every replica
//! stored the full [`Message`] struct. The immutable identity of a message
//! (`src`, `dst`, `size`, `created`, `ttl`) is the bulk of that struct and
//! is the same in every replica, so a world now interns it **once** in a
//! shared [`MessageArena`] and buffers keep only a dense [`MsgHandle`]
//! (u32) plus the genuinely per-copy fields (hop count, spray quota,
//! reception time).
//!
//! # Concurrency contract
//!
//! The arena is shared as `Arc<MessageArena>` across every buffer of a
//! world. Interning happens only in the serial phases of the engine
//! (traffic generation, transfer commit), but **resolution is lock-free**
//! so the parallel shard scan can reconstruct messages from any number of
//! threads: metadata lives in a fixed directory of power-of-two-sized
//! chunks whose slots are write-once [`OnceLock`]s, published before the
//! handle is handed out. Chunks are never reallocated, so a published
//! handle stays valid (and its record immutable) for the arena's lifetime.
//!
//! # Handle lifetimes
//!
//! Message ids are never reused by the traffic generator, so an id maps to
//! one handle for a whole simulation. The buffer unit tests *do* reuse ids
//! with changed metadata (a "fresh copy" of a dead message); interning the
//! same id with different metadata allocates a fresh handle and repoints
//! the id, while interning identical metadata returns the existing handle.
//! Handles are never freed — the arena is an append-only log whose size is
//! bounded by the number of logical messages ever created, not by replica
//! count.

use crate::message::{Message, MessageId};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// Dense index of an interned logical message within its [`MessageArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgHandle(pub u32);

/// The immutable metadata of a logical message, shared by all replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Logical message identity.
    pub id: MessageId,
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Size in bytes.
    pub size: u64,
    /// Creation timestamp at the source.
    pub created: SimTime,
    /// Time-to-live measured from `created`.
    pub ttl: SimDuration,
}

impl MsgMeta {
    /// The immutable slice of a message copy.
    pub fn of(msg: &Message) -> Self {
        MsgMeta {
            id: msg.id,
            src: msg.src,
            dst: msg.dst,
            size: msg.size,
            created: msg.created,
            ttl: msg.ttl,
        }
    }

    /// Absolute expiry instant (`created + ttl`, saturating).
    pub fn expiry(&self) -> SimTime {
        self.created.saturating_add(self.ttl)
    }
}

/// Size of the first chunk; each subsequent chunk doubles. Must be a power
/// of two so handle→(chunk, slot) resolution is pure bit arithmetic.
const CHUNK0: usize = 1024;
/// Directory size: `CHUNK0 * (2^CHUNKS - 1)` slots covers the full u32
/// handle space.
const CHUNKS: usize = 23;

type Chunk = Box<[OnceLock<MsgMeta>]>;

/// Handle → (chunk, slot-within-chunk).
fn locate(handle: u32) -> (usize, usize) {
    let k = handle as usize / CHUNK0 + 1;
    let chunk = k.ilog2() as usize;
    let slot = handle as usize - CHUNK0 * ((1usize << chunk) - 1);
    (chunk, slot)
}

/// Intern-side state, only touched while holding the mutex.
#[derive(Debug, Default)]
struct InternState {
    /// Latest handle per message id.
    by_id: HashMap<MessageId, MsgHandle>,
    /// Next free handle.
    len: u32,
}

/// Append-only interner for logical-message metadata (see module docs).
#[derive(Debug)]
pub struct MessageArena {
    /// Fixed directory of lazily allocated chunks; slots are write-once.
    chunks: [OnceLock<Chunk>; CHUNKS],
    intern: Mutex<InternState>,
}

impl Default for MessageArena {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageArena {
    /// Fresh, empty arena.
    pub fn new() -> Self {
        MessageArena {
            chunks: std::array::from_fn(|_| OnceLock::new()),
            intern: Mutex::new(InternState::default()),
        }
    }

    /// Intern a message copy's immutable metadata, returning its handle.
    ///
    /// Idempotent per (id, metadata) pair: re-interning an id with equal
    /// metadata returns the existing handle; changed metadata (an id reused
    /// for a genuinely new message) allocates a fresh handle and repoints
    /// the id to it. Takes the intern mutex — callers are the engine's
    /// serial phases, never the parallel scan.
    pub fn intern(&self, msg: &Message) -> MsgHandle {
        let meta = MsgMeta::of(msg);
        let mut state = self.intern.lock().expect("arena intern lock");
        if let Some(&h) = state.by_id.get(&msg.id) {
            if self.resolve(h) == meta {
                return h;
            }
        }
        // `u32::MAX` is never handed out: buffers use it as their in-place
        // tombstone sentinel.
        assert!(state.len < u32::MAX, "message arena exhausted");
        let h = MsgHandle(state.len);
        state.len += 1;
        let (chunk, slot) = locate(h.0);
        let chunk = self.chunks[chunk].get_or_init(|| {
            (0..(CHUNK0 << chunk))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        chunk[slot].set(meta).expect("fresh handle slot is empty");
        state.by_id.insert(msg.id, h);
        h
    }

    /// Resolve a handle to its metadata. Lock-free; callable concurrently
    /// with interning from other threads.
    ///
    /// Panics on a handle that was never returned by [`MessageArena::intern`]
    /// on this arena.
    pub fn resolve(&self, handle: MsgHandle) -> MsgMeta {
        let (chunk, slot) = locate(handle.0);
        *self.chunks[chunk]
            .get()
            .expect("handle's chunk is allocated")[slot]
            .get()
            .expect("handle was interned")
    }

    /// Current handle for a message id, if any copy was ever interned.
    pub fn lookup(&self, id: MessageId) -> Option<MsgHandle> {
        self.intern
            .lock()
            .expect("arena intern lock")
            .by_id
            .get(&id)
            .copied()
    }

    /// Number of interned records (distinct handles, not distinct ids).
    pub fn len(&self) -> usize {
        self.intern.lock().expect("arena intern lock").len as usize
    }

    /// True when nothing was interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, size: u64, created_s: f64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(3),
            NodeId(7),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(60),
        )
    }

    #[test]
    fn intern_resolve_round_trip() {
        let arena = MessageArena::new();
        let m = msg(1, 500, 10.0);
        let h = arena.intern(&m);
        assert_eq!(arena.resolve(h), MsgMeta::of(&m));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.lookup(MessageId(1)), Some(h));
        assert_eq!(arena.lookup(MessageId(2)), None);
    }

    #[test]
    fn equal_meta_reuses_handle_changed_meta_allocates() {
        let arena = MessageArena::new();
        let m = msg(1, 500, 10.0);
        let h1 = arena.intern(&m);
        // A relayed copy differs only in per-copy fields — same record.
        let relayed = m.relayed_copy(SimTime::from_secs_f64(20.0));
        assert_eq!(arena.intern(&relayed), h1);
        // A fresh message reusing the id gets a new record.
        let fresh = msg(1, 500, 99.0);
        let h2 = arena.intern(&fresh);
        assert_ne!(h1, h2);
        assert_eq!(arena.lookup(MessageId(1)), Some(h2));
        // The old record stays resolvable for holders of the old handle.
        assert_eq!(arena.resolve(h1), MsgMeta::of(&m));
        assert_eq!(arena.resolve(h2), MsgMeta::of(&fresh));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn handles_are_dense_and_stable_across_chunk_growth() {
        let arena = MessageArena::new();
        // Cross the first two chunk boundaries (1024, 3072).
        let n = 4000u64;
        let handles: Vec<MsgHandle> = (0..n).map(|i| arena.intern(&msg(i, i + 1, 0.0))).collect();
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.0 as usize, i, "handles allocate densely");
            assert_eq!(arena.resolve(*h).size, i as u64 + 1);
        }
        assert_eq!(arena.len(), n as usize);
    }

    #[test]
    fn locate_maps_chunk_boundaries() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(u32::MAX), {
            let (c, s) = locate(u32::MAX);
            assert!(c < CHUNKS && s < CHUNK0 << c);
            (c, s)
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every interned record resolves back exactly, handles stay dense,
        /// and the id map always points at the latest record for an id.
        #[test]
        fn intern_resolve_round_trips(
            entries in proptest::collection::vec((0u64..40, 1u64..10_000, 0u64..1000), 1..300)
        ) {
            let arena = MessageArena::new();
            let mut expected: Vec<MsgMeta> = Vec::new();
            let mut latest: HashMap<MessageId, MsgHandle> = HashMap::new();
            for (id, size, created_ms) in entries {
                let m = Message::new(
                    MessageId(id),
                    NodeId((id % 7) as u32),
                    NodeId((id % 11) as u32),
                    size,
                    SimTime::from_millis(created_ms),
                    SimDuration::from_mins(30),
                );
                let h = arena.intern(&m);
                if h.0 as usize == expected.len() {
                    expected.push(MsgMeta::of(&m)); // fresh record
                } else {
                    prop_assert_eq!(expected[h.0 as usize], MsgMeta::of(&m), "reused handle");
                }
                latest.insert(m.id, h);
                prop_assert_eq!(arena.lookup(m.id), Some(h));
            }
            prop_assert_eq!(arena.len(), expected.len());
            for (i, meta) in expected.iter().enumerate() {
                prop_assert_eq!(arena.resolve(MsgHandle(i as u32)), *meta);
            }
            for (id, h) in latest {
                prop_assert_eq!(arena.lookup(id), Some(h));
            }
        }
    }
}

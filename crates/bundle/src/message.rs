//! Messages (DTN bundles).
//!
//! A [`Message`] is metadata only — the simulator never materialises
//! payloads. Copies of the same logical message share a [`MessageId`];
//! per-copy state (hop count, remaining spray copies) lives in each node's
//! stored copy.

use serde::{Deserialize, Serialize};
use std::fmt;
use vdtn_sim_core::{NodeId, SimDuration, SimTime};

/// Globally unique identifier of a logical message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// One copy of a message as stored in a node buffer or in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Logical message identity (shared by all replicas).
    pub id: MessageId,
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Size in bytes (the simulator is payload-free; size drives transfer
    /// time and buffer occupancy).
    pub size: u64,
    /// Creation timestamp at the source.
    pub created: SimTime,
    /// Time-to-live measured from `created`.
    pub ttl: SimDuration,
    /// Hops this copy has taken from the source (0 at the source).
    pub hops: u32,
    /// Remaining logical copies for quota-based protocols (Spray and Wait).
    /// Flooding protocols leave this at 1.
    pub copies: u32,
    /// Timestamp this copy was received by the current holder (equals
    /// `created` at the source). Drives FIFO ordering.
    pub received: SimTime,
}

impl Message {
    /// Create a fresh message at its source.
    pub fn new(
        id: MessageId,
        src: NodeId,
        dst: NodeId,
        size: u64,
        created: SimTime,
        ttl: SimDuration,
    ) -> Self {
        Message {
            id,
            src,
            dst,
            size,
            created,
            ttl,
            hops: 0,
            copies: 1,
            received: created,
        }
    }

    /// Absolute time at which this message expires.
    pub fn expiry(&self) -> SimTime {
        self.created.saturating_add(self.ttl)
    }

    /// Remaining lifetime at `now` (zero once expired).
    pub fn remaining_ttl(&self, now: SimTime) -> SimDuration {
        self.expiry().since(now)
    }

    /// True if the TTL has elapsed at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expiry()
    }

    /// The copy that a receiving node stores after a relay hop at `now`.
    pub fn relayed_copy(&self, now: SimTime) -> Message {
        Message {
            hops: self.hops + 1,
            received: now,
            ..*self
        }
    }

    /// Age of the logical message at `now`.
    pub fn age(&self, now: SimTime) -> SimDuration {
        now.since(self.created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> Message {
        Message::new(
            MessageId(1),
            NodeId(0),
            NodeId(5),
            1_000_000,
            SimTime::from_secs_f64(100.0),
            SimDuration::from_mins(60),
        )
    }

    #[test]
    fn expiry_arithmetic() {
        let m = msg();
        assert_eq!(m.expiry(), SimTime::from_secs_f64(3700.0));
        let now = SimTime::from_secs_f64(1000.0);
        assert_eq!(m.remaining_ttl(now), SimDuration::from_secs(2700));
        assert!(!m.is_expired(now));
        assert!(m.is_expired(SimTime::from_secs_f64(3700.0)));
        assert!(m.is_expired(SimTime::from_secs_f64(9999.0)));
    }

    #[test]
    fn remaining_ttl_saturates_after_expiry() {
        let m = msg();
        assert_eq!(
            m.remaining_ttl(SimTime::from_secs_f64(10_000.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn relayed_copy_bumps_hops_and_received() {
        let m = msg();
        let now = SimTime::from_secs_f64(500.0);
        let c = m.relayed_copy(now);
        assert_eq!(c.hops, 1);
        assert_eq!(c.received, now);
        // Identity, TTL and creation stamp are preserved.
        assert_eq!(c.id, m.id);
        assert_eq!(c.created, m.created);
        assert_eq!(c.expiry(), m.expiry());
        let c2 = c.relayed_copy(SimTime::from_secs_f64(600.0));
        assert_eq!(c2.hops, 2);
    }

    #[test]
    fn age_tracks_creation() {
        let m = msg();
        assert_eq!(
            m.age(SimTime::from_secs_f64(160.0)),
            SimDuration::from_secs(60)
        );
        // Before creation (shouldn't happen, but must not underflow).
        assert_eq!(m.age(SimTime::ZERO), SimDuration::ZERO);
    }
}

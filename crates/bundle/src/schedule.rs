//! Generation-validated caching of scheduling-policy orders.
//!
//! Every routing round asks the scheduling policy for the buffer's
//! transmission order. Recomputing that order per idle connection per tick
//! is O(B log B) allocation + sort even when nothing changed — the dominant
//! cost of dense-contact scenarios once movement and contact detection are
//! event-driven. [`ScheduleCache`] materialises the order once and
//! revalidates it against [`Buffer::generation`], which changes exactly
//! when buffer membership does.
//!
//! Soundness rests on two facts:
//!
//! * every policy except [`SchedulingPolicy::Random`] keys on immutable
//!   message fields (reception position, absolute expiry, size, creation
//!   time, the stored copy's hop count), so the order is a pure function of
//!   membership — time- and RNG-independent, valid across ticks;
//! * [`SchedulingPolicy::Random`] re-draws its permutation on every call by
//!   contract, so the cache never retains it and the RNG stream is
//!   bit-identical to the uncached path.

use crate::buffer::Buffer;
use crate::message::MessageId;
use crate::policy::SchedulingPolicy;
use vdtn_sim_core::{SimRng, SimTime};

/// A memoised [`SchedulingPolicy::order`] result, revalidated by buffer
/// generation.
///
/// **Contract: one cache serves one buffer for its whole life** (routers
/// embed one next to their node's buffer). Generations are per-buffer
/// counters, so feeding the same cache two different buffers can collide
/// and return an order that does not match the buffer at all — the length
/// cross-check below catches most such misuse, but equal-length collisions
/// are undetectable by design.
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    order: Vec<MessageId>,
    generation: u64,
    valid: bool,
}

impl ScheduleCache {
    fn is_fresh(&self, buffer: &Buffer) -> bool {
        self.valid && self.generation == buffer.generation() && self.order.len() == buffer.len()
    }
}

impl ScheduleCache {
    /// Empty cache; the first [`ScheduleCache::refresh`] always computes.
    pub fn new() -> Self {
        Self::default()
    }

    /// The transmission order for `buffer` under `policy`, recomputed only
    /// when the buffer's generation moved (or on every call for `Random`).
    ///
    /// The second return value is the **cursor token**: `Some(generation)`
    /// when the returned slice is stable for that buffer generation (so
    /// per-contact scan cursors into it stay meaningful), `None` when the
    /// order is ephemeral (`Random`) and any saved cursor must not be used.
    pub fn refresh(
        &mut self,
        policy: SchedulingPolicy,
        buffer: &Buffer,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (&[MessageId], Option<u64>) {
        if policy == SchedulingPolicy::Random {
            // Never cached: the permutation (and its RNG draws) belongs to
            // this call alone.
            self.valid = false;
            self.order = policy.order(buffer, now, rng);
            return (&self.order, None);
        }
        if !self.is_fresh(buffer) {
            self.order = policy.order(buffer, now, rng);
            self.generation = buffer.generation();
            self.valid = true;
        }
        (&self.order, Some(self.generation))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(9),
            size,
            SimTime::ZERO,
            SimDuration::from_mins(ttl_min),
        )
    }

    #[test]
    fn cache_hits_until_membership_changes() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 100, 10)).unwrap();
        b.insert(msg(2, 100, 30)).unwrap();
        let mut cache = ScheduleCache::new();
        let mut rng = SimRng::seed_from_u64(1);

        let (order, token) =
            cache.refresh(SchedulingPolicy::LifetimeDesc, &b, SimTime::ZERO, &mut rng);
        assert_eq!(order, [MessageId(2), MessageId(1)]);
        let token = token.expect("sorted policies are cacheable");

        // Same generation ⇒ same token, later `now` irrelevant.
        let later = SimTime::from_secs_f64(120.0);
        let (order, token2) = cache.refresh(SchedulingPolicy::LifetimeDesc, &b, later, &mut rng);
        assert_eq!(order, [MessageId(2), MessageId(1)]);
        assert_eq!(token2, Some(token));

        // Membership change ⇒ new token, fresh order.
        b.insert(msg(3, 100, 60)).unwrap();
        let (order, token3) = cache.refresh(SchedulingPolicy::LifetimeDesc, &b, later, &mut rng);
        assert_eq!(order, [MessageId(3), MessageId(2), MessageId(1)]);
        assert_ne!(token3, Some(token));
    }

    #[test]
    fn random_is_uncached_and_stream_identical() {
        let mut b = Buffer::new(10_000);
        for id in 1..=5u64 {
            b.insert(msg(id, 100, 30)).unwrap();
        }
        let mut cache = ScheduleCache::new();
        let mut cached_rng = SimRng::seed_from_u64(9);
        let mut fresh_rng = SimRng::seed_from_u64(9);
        for _ in 0..4 {
            let (order, token) =
                cache.refresh(SchedulingPolicy::Random, &b, SimTime::ZERO, &mut cached_rng);
            assert_eq!(token, None, "Random must never hand out a cursor token");
            let fresh = SchedulingPolicy::Random.order(&b, SimTime::ZERO, &mut fresh_rng);
            assert_eq!(order, &fresh[..], "identical RNG stream call by call");
        }
        assert_eq!(cached_rng, fresh_rng);
    }

    #[test]
    fn remove_invalidates() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 100, 10)).unwrap();
        b.insert(msg(2, 100, 30)).unwrap();
        let mut cache = ScheduleCache::new();
        let mut rng = SimRng::seed_from_u64(1);
        cache.refresh(SchedulingPolicy::Fifo, &b, SimTime::ZERO, &mut rng);
        b.remove(MessageId(1)).unwrap();
        let (order, _) = cache.refresh(SchedulingPolicy::Fifo, &b, SimTime::ZERO, &mut rng);
        assert_eq!(order, [MessageId(2)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::message::Message;
    use crate::policy::SchedulingPolicy::*;
    use proptest::prelude::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    /// All scheduling policies, cacheable and not.
    const POLICIES: [SchedulingPolicy; 7] = [
        Fifo,
        Random,
        LifetimeDesc,
        LifetimeAsc,
        SmallestFirst,
        YoungestFirst,
        FewestHops,
    ];

    proptest! {
        /// Issue satellite: across random buffers and mutation sequences,
        /// the cached order equals a freshly computed
        /// `SchedulingPolicy::order` for every policy — at every step, with
        /// interleaved inserts, removes and time advances.
        #[test]
        fn cached_order_matches_fresh_order(
            policy_idx in 0usize..POLICIES.len(),
            ops in proptest::collection::vec(
                (0u64..25, 1u64..400, 0u64..90, 0u64..3),
                1..120,
            ),
        ) {
            let policy = POLICIES[policy_idx];
            let mut b = Buffer::new(20_000);
            let mut cache = ScheduleCache::new();
            // Twin RNG lanes: the cached and fresh paths must consume
            // identical draws (only Random draws at all).
            let mut cached_rng = SimRng::seed_from_u64(7);
            let mut fresh_rng = SimRng::seed_from_u64(7);
            let mut now = SimTime::ZERO;
            for (id, size, ttl_min, action) in ops {
                match action {
                    0 => {
                        let mut m = Message::new(
                            MessageId(id),
                            NodeId(0),
                            NodeId(1),
                            size,
                            now,
                            SimDuration::from_mins(ttl_min + 1),
                        );
                        m.hops = (size % 5) as u32;
                        m.received = now;
                        let _ = b.insert(m);
                    }
                    1 => {
                        b.remove(MessageId(id));
                    }
                    _ => {
                        now += SimDuration::from_secs(ttl_min);
                    }
                }
                let fresh = policy.order(&b, now, &mut fresh_rng);
                let (cached, token) = cache.refresh(policy, &b, now, &mut cached_rng);
                prop_assert_eq!(cached, &fresh[..]);
                prop_assert_eq!(token.is_none(), policy == Random);
                prop_assert_eq!(&cached_rng, &fresh_rng);
            }
        }
    }
}

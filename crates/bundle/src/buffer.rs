//! Byte-capacity message buffers.
//!
//! A [`Buffer`] stores message copies up to a byte capacity, preserving
//! insertion (reception) order — the order FIFO policies rely on — while
//! providing O(1) id lookups through a hash index. Iteration always follows
//! insertion order so every traversal is deterministic.

use crate::message::{Message, MessageId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vdtn_sim_core::SimTime;

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The message alone exceeds the total capacity — no eviction can help.
    TooLarge {
        /// Size of the rejected message.
        size: u64,
        /// Total buffer capacity.
        capacity: u64,
    },
    /// Free space is insufficient; the caller should evict via the drop
    /// policy and retry.
    NoSpace {
        /// Bytes missing.
        missing: u64,
    },
    /// A copy of this message is already stored.
    Duplicate(MessageId),
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::TooLarge { size, capacity } => {
                write!(
                    f,
                    "message of {size} B exceeds buffer capacity {capacity} B"
                )
            }
            BufferError::NoSpace { missing } => write!(f, "buffer lacks {missing} B"),
            BufferError::Duplicate(id) => write!(f, "duplicate message {id}"),
        }
    }
}

impl std::error::Error for BufferError {}

/// A node's message store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    /// Reception order (front = oldest). Drives FIFO semantics.
    order: Vec<MessageId>,
    /// Id → message copy.
    store: HashMap<MessageId, Message>,
}

impl Buffer {
    /// Create a buffer with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            used: 0,
            order: Vec::new(),
            store: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Number of stored messages.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True if a copy of `id` is stored.
    pub fn contains(&self, id: MessageId) -> bool {
        self.store.contains_key(&id)
    }

    /// Read access to a stored copy.
    pub fn get(&self, id: MessageId) -> Option<&Message> {
        self.store.get(&id)
    }

    /// Mutable access to a stored copy (e.g. Spray-and-Wait halving).
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut Message> {
        self.store.get_mut(&id)
    }

    /// Insert a message copy. Fails without modifying the buffer if the
    /// message cannot fit or is already present.
    pub fn insert(&mut self, msg: Message) -> Result<(), BufferError> {
        if self.store.contains_key(&msg.id) {
            return Err(BufferError::Duplicate(msg.id));
        }
        if msg.size > self.capacity {
            return Err(BufferError::TooLarge {
                size: msg.size,
                capacity: self.capacity,
            });
        }
        if msg.size > self.free() {
            return Err(BufferError::NoSpace {
                missing: msg.size - self.free(),
            });
        }
        self.used += msg.size;
        self.order.push(msg.id);
        self.store.insert(msg.id, msg);
        Ok(())
    }

    /// Remove and return a copy.
    pub fn remove(&mut self, id: MessageId) -> Option<Message> {
        let msg = self.store.remove(&id)?;
        self.used -= msg.size;
        // Linear removal keeps `order` exact; buffers hold at most a few
        // hundred messages in the paper's scenario, and the hash index keeps
        // lookups O(1) (see `buffer_ops` bench for the ablation).
        let pos = self
            .order
            .iter()
            .position(|&m| m == id)
            .expect("order and store must agree");
        self.order.remove(pos);
        Some(msg)
    }

    /// Oldest-received message id (FIFO head).
    pub fn head(&self) -> Option<MessageId> {
        self.order.first().copied()
    }

    /// Ids in reception order (front = oldest).
    pub fn ids_in_order(&self) -> &[MessageId] {
        &self.order
    }

    /// Iterate stored messages in reception order.
    pub fn iter(&self) -> impl Iterator<Item = &Message> + '_ {
        self.order.iter().map(move |id| &self.store[id])
    }

    /// Remove every expired message, returning them (for stats recording).
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<Message> {
        let expired: Vec<MessageId> = self
            .iter()
            .filter(|m| m.is_expired(now))
            .map(|m| m.id)
            .collect();
        expired
            .into_iter()
            .map(|id| self.remove(id).expect("id just listed"))
            .collect()
    }

    /// True if `size` bytes could ever fit (possibly after evictions).
    pub fn could_fit(&self, size: u64) -> bool {
        size <= self.capacity
    }

    /// True if `size` bytes fit right now without eviction.
    pub fn fits_now(&self, size: u64) -> bool {
        size <= self.free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, created_s: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(1),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(ttl_min),
        )
    }

    #[test]
    fn insert_and_accounting() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 400, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        assert_eq!(b.used(), 700);
        assert_eq!(b.free(), 300);
        assert_eq!(b.len(), 2);
        assert!((b.occupancy() - 0.7).abs() < 1e-12);
        assert!(b.contains(MessageId(1)));
        assert_eq!(b.head(), Some(MessageId(1)));
    }

    #[test]
    fn rejects_duplicate() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 100, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(1, 100, 5.0, 60)),
            Err(BufferError::Duplicate(MessageId(1)))
        );
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn rejects_oversized_and_full() {
        let mut b = Buffer::new(1000);
        assert_eq!(
            b.insert(msg(1, 2000, 0.0, 60)),
            Err(BufferError::TooLarge {
                size: 2000,
                capacity: 1000
            })
        );
        b.insert(msg(2, 800, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(3, 400, 0.0, 60)),
            Err(BufferError::NoSpace { missing: 200 })
        );
        // Failure must not corrupt accounting.
        assert_eq!(b.used(), 800);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_restores_space_and_order() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 300, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        b.insert(msg(3, 300, 2.0, 60)).unwrap();
        let removed = b.remove(MessageId(2)).unwrap();
        assert_eq!(removed.size, 300);
        assert_eq!(b.used(), 600);
        assert_eq!(b.ids_in_order(), &[MessageId(1), MessageId(3)]);
        assert!(b.remove(MessageId(2)).is_none());
    }

    #[test]
    fn iteration_follows_reception_order() {
        let mut b = Buffer::new(10_000);
        for i in 0..10 {
            b.insert(msg(i, 10, i as f64, 60)).unwrap();
        }
        let ids: Vec<u64> = b.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_expired_removes_only_expired() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 10, 0.0, 1)).unwrap(); // expires at 60 s
        b.insert(msg(2, 10, 0.0, 60)).unwrap(); // expires at 3600 s
        b.insert(msg(3, 10, 30.0, 1)).unwrap(); // expires at 90 s
        let dead = b.drain_expired(SimTime::from_secs_f64(61.0));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, MessageId(1));
        assert_eq!(b.len(), 2);
        let dead = b.drain_expired(SimTime::from_secs_f64(10_000.0));
        assert_eq!(dead.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn zero_capacity_buffer() {
        let mut b = Buffer::new(0);
        assert!(!b.could_fit(1));
        assert_eq!(b.occupancy(), 1.0);
        assert!(matches!(
            b.insert(msg(1, 1, 0.0, 60)),
            Err(BufferError::TooLarge { .. })
        ));
    }

    #[test]
    fn fits_now_vs_could_fit() {
        let mut b = Buffer::new(100);
        b.insert(msg(1, 80, 0.0, 60)).unwrap();
        assert!(b.could_fit(100));
        assert!(!b.fits_now(30));
        assert!(b.fits_now(20));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    proptest! {
        /// Arbitrary insert/remove sequences keep byte accounting exact and
        /// order/store views consistent.
        #[test]
        fn accounting_under_random_ops(ops in proptest::collection::vec((0u64..30, 1u64..500, any::<bool>()), 1..200)) {
            let mut b = Buffer::new(5_000);
            let mut expected_used = 0u64;
            for (id, size, remove) in ops {
                if remove {
                    if let Some(m) = b.remove(MessageId(id)) {
                        expected_used -= m.size;
                    }
                } else if !b.contains(MessageId(id)) && b.fits_now(size) {
                    b.insert(Message::new(
                        MessageId(id),
                        NodeId(0),
                        NodeId(1),
                        size,
                        SimTime::ZERO,
                        SimDuration::from_mins(10),
                    ))
                    .unwrap();
                    expected_used += size;
                }
                prop_assert_eq!(b.used(), expected_used);
                prop_assert!(b.used() <= b.capacity());
                prop_assert_eq!(b.ids_in_order().len(), b.len());
                let sum: u64 = b.iter().map(|m| m.size).sum();
                prop_assert_eq!(sum, b.used());
            }
        }

        /// Insertion order is exactly the reception order of surviving ids.
        #[test]
        fn order_is_subsequence_of_insertions(ids in proptest::collection::vec(0u64..50, 1..60)) {
            let mut b = Buffer::new(u64::MAX);
            let mut inserted = Vec::new();
            for id in ids {
                if b.insert(Message::new(
                    MessageId(id),
                    NodeId(0),
                    NodeId(1),
                    1,
                    SimTime::ZERO,
                    SimDuration::from_mins(10),
                ))
                .is_ok()
                {
                    inserted.push(MessageId(id));
                }
            }
            prop_assert_eq!(b.ids_in_order(), inserted.as_slice());
        }
    }
}

//! Byte-capacity message buffers.
//!
//! A [`Buffer`] stores message copies up to a byte capacity, preserving
//! insertion (reception) order — the order FIFO policies rely on — while
//! providing O(1) id lookups through a hash index. Iteration always follows
//! insertion order so every traversal is deterministic.
//!
//! Internally three structures cooperate:
//!
//! * `store` — id → message copy (the source of truth for membership);
//! * `order` + `index` — reception order with an id → position map.
//!   Removal tombstones the `order` entry in O(1) (the entry is *live* iff
//!   `index` maps its id back to its position) and compacts once tombstones
//!   outnumber live entries, so eviction storms are amortised O(1) per
//!   removal instead of the former O(n) scan-and-shift;
//! * `expiry` — a min-heap of `(expiry time, id)` with lazy deletion, so
//!   TTL housekeeping ([`Buffer::next_expiry`], [`Buffer::drain_expired`])
//!   costs O(1) when nothing is due instead of a full-buffer scan. This is
//!   the heap the engine's TTL-expiry events are scheduled from;
//! * `deltas` — an optional bounded membership-change log (see
//!   [`Buffer::watch`]). Once a subscriber opts in, every insert, removal
//!   and TTL expiry is recorded as a [`BufferDelta`] stamped with the
//!   post-operation generation, and [`Buffer::deltas_since`] replays the
//!   changes between two observed generations so downstream candidate
//!   indexes can patch themselves in O(changes) instead of rescanning the
//!   buffer. The log is a bounded ring (compacted in amortised O(1), like
//!   the tombstoned `order` vector): consumers that fall too far behind get
//!   `None` and must rebuild — staleness degrades to a rescan, never to a
//!   wrong answer.

use crate::message::{Message, MessageId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vdtn_sim_core::SimTime;

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The message alone exceeds the total capacity — no eviction can help.
    TooLarge {
        /// Size of the rejected message.
        size: u64,
        /// Total buffer capacity.
        capacity: u64,
    },
    /// Free space is insufficient; the caller should evict via the drop
    /// policy and retry.
    NoSpace {
        /// Bytes missing.
        missing: u64,
    },
    /// A copy of this message is already stored.
    Duplicate(MessageId),
    /// The id `u64::MAX` is reserved as the internal tombstone sentinel and
    /// can never be stored.
    ReservedId,
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::TooLarge { size, capacity } => {
                write!(
                    f,
                    "message of {size} B exceeds buffer capacity {capacity} B"
                )
            }
            BufferError::NoSpace { missing } => write!(f, "buffer lacks {missing} B"),
            BufferError::Duplicate(id) => write!(f, "duplicate message {id}"),
            BufferError::ReservedId => write!(f, "message id u64::MAX is reserved"),
        }
    }
}

impl std::error::Error for BufferError {}

/// In-place marker for removed `order` entries. `u64::MAX` can never be a
/// real message id: [`Buffer::insert`] rejects it with
/// [`BufferError::ReservedId`] (the traffic generator allocates ids
/// sequentially from zero and never reaches it).
const TOMBSTONE: MessageId = MessageId(u64::MAX);

/// One entry of the lazy expiry min-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
struct ExpiryEntry {
    at: SimTime,
    id: MessageId,
}

/// Per-message bookkeeping in the id index: position in `order` plus the
/// buffer-lifetime insertion sequence number (the scheduling tie-break —
/// reception order survives compaction through it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    pos: u32,
    seq: u64,
}

/// The immutable fields every [`crate::SchedulingPolicy`] ranks by, snapshot
/// at insertion time. Carried inside [`DeltaKind::Insert`] so a consumer can
/// key a candidate entry even after the message has left the buffer again
/// (insert-then-remove inside one replayed batch), plus the insertion
/// sequence number `seq` that encodes reception order for tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMeta {
    /// Absolute expiry instant (`created + ttl`).
    pub expiry: SimTime,
    /// Message size in bytes.
    pub size: u64,
    /// Creation timestamp at the source.
    pub created: SimTime,
    /// Hop count of the stored copy (immutable while stored).
    pub hops: u32,
    /// Buffer-lifetime insertion sequence number; strictly increasing with
    /// reception order, never reused.
    pub seq: u64,
}

/// What a [`BufferDelta`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaKind {
    /// A message entered the buffer; the meta snapshot is everything a
    /// scheduling rank needs.
    Insert(RankMeta),
    /// A message was removed (forwarding hand-off, delivery discard,
    /// drop-policy eviction).
    Remove,
    /// A message was removed by the TTL sweep ([`Buffer::drain_expired`]).
    /// Consumers treat it like [`DeltaKind::Remove`]; the distinction is
    /// kept for diagnostics and the invalidation tables in ARCHITECTURE.md.
    Expire,
}

/// One membership change, stamped with the generation the buffer reached
/// *after* the operation. Generations move by exactly one per change, so a
/// contiguous log slice replays a generation interval exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferDelta {
    /// `Buffer::generation()` immediately after this change.
    pub generation: u64,
    /// The message the change concerns.
    pub id: MessageId,
    /// What happened.
    pub kind: DeltaKind,
}

/// Ring bound for the delta log: once more than `2 * DELTA_LOG_CAP` entries
/// accumulate the oldest `DELTA_LOG_CAP` are dropped in one amortised-O(1)
/// batch. Consumers further behind than the retained window rebuild instead
/// of patching.
const DELTA_LOG_CAP: usize = 512;

/// A node's message store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    /// Reception order (front = oldest), possibly holding tombstoned
    /// entries. Removal overwrites the entry with the `TOMBSTONE` sentinel
    /// in place, so liveness checks during iteration are a plain compare —
    /// no hash lookups on the hot traversal paths.
    order: Vec<MessageId>,
    /// Id → `order` position and insertion sequence for every *stored*
    /// message.
    index: HashMap<MessageId, Slot>,
    /// Tombstoned entries currently in `order`.
    stale: usize,
    /// Id → message copy.
    store: HashMap<MessageId, Message>,
    /// Min-heap (array layout) of expiry times with lazy deletion: entries
    /// whose id is gone, or whose stored copy has a different expiry (id
    /// re-inserted), are discarded when they surface.
    expiry: Vec<ExpiryEntry>,
    /// Monotone membership-change counter: bumped on every successful
    /// insert and remove (and therefore on eviction and TTL drain, which go
    /// through `remove`). [`crate::ScheduleCache`] revalidates against it.
    /// In-place mutation via [`Buffer::get_mut`] does *not* bump it — see
    /// `generation()` for the contract.
    generation: u64,
    /// Count of successful inserts over the buffer's lifetime. Doubles as
    /// the next insertion sequence number and as the "delta summary" the
    /// engine's silent-round memo keys on (removals never make a silent
    /// direction loud, so the memo can ignore them — see
    /// [`Buffer::insert_count`]).
    inserts: u64,
    /// True once a consumer called [`Buffer::watch`]; membership changes
    /// are recorded from that point on.
    log_on: bool,
    /// The delta log covers generations `(log_base, generation]`.
    log_base: u64,
    /// The recorded deltas, oldest first (bounded; see `DELTA_LOG_CAP`).
    deltas: Vec<BufferDelta>,
}

impl Buffer {
    /// Create a buffer with the given byte capacity.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            used: 0,
            order: Vec::new(),
            index: HashMap::new(),
            stale: 0,
            store: HashMap::new(),
            expiry: Vec::new(),
            generation: 0,
            inserts: 0,
            log_on: false,
            log_base: 0,
            deltas: Vec::new(),
        }
    }

    /// Monotone counter distinguishing buffer *membership* states: any
    /// successful [`Buffer::insert`] or [`Buffer::remove`] bumps it, so two
    /// observations with equal generations hold exactly the same message
    /// set in the same reception order.
    ///
    /// [`Buffer::get_mut`] deliberately does **not** bump it: the fields
    /// protocols mutate in place (spray quotas) are not scheduling keys —
    /// every [`crate::SchedulingPolicy`] orders by immutable message fields
    /// (reception position, absolute expiry, size, creation time, the
    /// stored copy's hop count), which is what makes generation-keyed
    /// schedule caching sound.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of successful inserts over this buffer's lifetime, monotone
    /// and unchanged by removals.
    ///
    /// This is the buffer's **delta summary** for silence reasoning: a
    /// routing direction whose `None` verdict was recorded at some sender
    /// insert-count stays `None` while that count is unchanged, because
    /// removals only shrink the sender's candidate set and every surviving
    /// candidate was already rejected (the engine's `SilenceKey` keys on
    /// this instead of the full generation since PR 5).
    pub fn insert_count(&self) -> u64 {
        self.inserts
    }

    /// Start recording membership deltas. Idempotent; recording stays on
    /// for the buffer's life. The log starts empty at the current
    /// generation, so `deltas_since(generation())` is `Some(&[])`
    /// immediately after.
    pub fn watch(&mut self) {
        if !self.log_on {
            self.log_on = true;
            self.log_base = self.generation;
            self.deltas.clear();
        }
    }

    /// True once [`Buffer::watch`] has been called.
    pub fn is_watched(&self) -> bool {
        self.log_on
    }

    /// The membership changes between the observed generation `gen` and the
    /// current one, oldest first, or `None` when the log cannot prove the
    /// interval (never watched, consumer older than the retained window, or
    /// `gen` from a different buffer) — the caller must then rebuild from
    /// the buffer itself. `Some(&[])` whenever `gen` is current, watched or
    /// not.
    pub fn deltas_since(&self, gen: u64) -> Option<&[BufferDelta]> {
        if gen == self.generation {
            return Some(&[]);
        }
        if !self.log_on || gen > self.generation || gen < self.log_base {
            return None;
        }
        debug_assert_eq!(
            self.deltas.len() as u64,
            self.generation - self.log_base,
            "every generation bump since watch() is logged"
        );
        Some(&self.deltas[(gen - self.log_base) as usize..])
    }

    /// The scheduling-rank snapshot of a stored message (see [`RankMeta`]).
    pub fn rank_meta(&self, id: MessageId) -> Option<RankMeta> {
        let slot = self.index.get(&id)?;
        let m = self.store.get(&id)?;
        Some(RankMeta {
            expiry: m.expiry(),
            size: m.size,
            created: m.created,
            hops: m.hops,
            seq: slot.seq,
        })
    }

    fn push_delta(&mut self, id: MessageId, kind: DeltaKind) {
        if !self.log_on {
            return;
        }
        self.deltas.push(BufferDelta {
            generation: self.generation,
            id,
            kind,
        });
        if self.deltas.len() > 2 * DELTA_LOG_CAP {
            self.log_base = self.deltas[DELTA_LOG_CAP - 1].generation;
            self.deltas.drain(..DELTA_LOG_CAP);
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Number of stored messages.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// True if a copy of `id` is stored.
    pub fn contains(&self, id: MessageId) -> bool {
        self.store.contains_key(&id)
    }

    /// Read access to a stored copy.
    pub fn get(&self, id: MessageId) -> Option<&Message> {
        self.store.get(&id)
    }

    /// Mutable access to a stored copy (e.g. Spray-and-Wait halving).
    pub fn get_mut(&mut self, id: MessageId) -> Option<&mut Message> {
        self.store.get_mut(&id)
    }

    /// Insert a message copy. Fails without modifying the buffer if the
    /// message cannot fit or is already present.
    pub fn insert(&mut self, msg: Message) -> Result<(), BufferError> {
        if msg.id == TOMBSTONE {
            return Err(BufferError::ReservedId);
        }
        if self.store.contains_key(&msg.id) {
            return Err(BufferError::Duplicate(msg.id));
        }
        if msg.size > self.capacity {
            return Err(BufferError::TooLarge {
                size: msg.size,
                capacity: self.capacity,
            });
        }
        if msg.size > self.free() {
            return Err(BufferError::NoSpace {
                missing: msg.size - self.free(),
            });
        }
        self.used += msg.size;
        self.generation += 1;
        let seq = self.inserts;
        self.inserts += 1;
        self.index.insert(
            msg.id,
            Slot {
                pos: self.order.len() as u32,
                seq,
            },
        );
        self.order.push(msg.id);
        self.heap_push(ExpiryEntry {
            at: msg.expiry(),
            id: msg.id,
        });
        self.push_delta(
            msg.id,
            DeltaKind::Insert(RankMeta {
                expiry: msg.expiry(),
                size: msg.size,
                created: msg.created,
                hops: msg.hops,
                seq,
            }),
        );
        self.store.insert(msg.id, msg);
        Ok(())
    }

    /// Remove and return a copy. Amortised O(1): the `order` entry is
    /// overwritten with the `TOMBSTONE` sentinel and reclaimed by a later
    /// compaction;
    /// the expiry-heap entry is discarded lazily.
    pub fn remove(&mut self, id: MessageId) -> Option<Message> {
        self.remove_with(id, DeltaKind::Remove)
    }

    fn remove_with(&mut self, id: MessageId, kind: DeltaKind) -> Option<Message> {
        let msg = self.store.remove(&id)?;
        self.used -= msg.size;
        self.generation += 1;
        let slot = self.index.remove(&id).expect("stored ids are indexed");
        self.order[slot.pos as usize] = TOMBSTONE;
        self.stale += 1;
        if self.stale * 2 > self.order.len() {
            self.compact();
        }
        self.push_delta(id, kind);
        Some(msg)
    }

    /// Rewrite `order` without tombstones, preserving relative order.
    fn compact(&mut self) {
        let mut w = 0usize;
        for r in 0..self.order.len() {
            let id = self.order[r];
            if id != TOMBSTONE {
                self.order[w] = id;
                self.index.get_mut(&id).expect("live ids are indexed").pos = w as u32;
                w += 1;
            }
        }
        self.order.truncate(w);
        self.stale = 0;
    }

    /// Oldest-received message id (FIFO head).
    pub fn head(&self) -> Option<MessageId> {
        self.ids_in_order().next()
    }

    /// Ids in reception order (front = oldest). A plain filtered slice
    /// walk — tombstones are in-place sentinels, so no hashing is needed.
    pub fn ids_in_order(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.order.iter().copied().filter(|&id| id != TOMBSTONE)
    }

    /// Iterate stored messages in reception order.
    pub fn iter(&self) -> impl Iterator<Item = &Message> + '_ {
        self.ids_in_order().map(move |id| &self.store[&id])
    }

    /// Earliest expiry time among stored messages, or `None` when empty.
    ///
    /// O(1) amortised (lazily discards heap entries for removed copies).
    /// The engine schedules its per-node TTL events from this value: no
    /// stored message can expire before it.
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        while let Some(&top) = self.expiry.first() {
            match self.store.get(&top.id) {
                Some(m) if m.expiry() == top.at => return Some(top.at),
                _ => {
                    self.heap_pop();
                }
            }
        }
        None
    }

    /// Remove every expired message, returning them in reception order (for
    /// stats recording). Driven by the expiry heap: O(1) when nothing is
    /// due, O(expired · log n) otherwise — never a full-buffer scan.
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<Message> {
        if self.expiry.first().map_or(true, |top| top.at > now) {
            return Vec::new();
        }
        // Collect due live ids with their reception positions first; the
        // removals below may compact `order` and shuffle positions.
        let mut due: Vec<(u32, MessageId)> = Vec::new();
        while let Some(&top) = self.expiry.first() {
            if top.at > now {
                break;
            }
            self.heap_pop();
            if let Some(m) = self.store.get(&top.id) {
                if m.expiry() == top.at {
                    due.push((self.index[&top.id].pos, top.id));
                }
            }
        }
        due.sort_unstable();
        due.dedup_by_key(|e| e.1);
        due.into_iter()
            .map(|(_, id)| {
                self.remove_with(id, DeltaKind::Expire)
                    .expect("live id collected above")
            })
            .collect()
    }

    /// True if `size` bytes could ever fit (possibly after evictions).
    pub fn could_fit(&self, size: u64) -> bool {
        size <= self.capacity
    }

    /// True if `size` bytes fit right now without eviction.
    pub fn fits_now(&self, size: u64) -> bool {
        size <= self.free()
    }

    // --- expiry min-heap primitives (array layout, lazy deletion) ---

    fn heap_push(&mut self, e: ExpiryEntry) {
        self.expiry.push(e);
        let mut i = self.expiry.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.expiry[i] < self.expiry[parent] {
                self.expiry.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<ExpiryEntry> {
        if self.expiry.is_empty() {
            return None;
        }
        let top = self.expiry.swap_remove(0);
        let mut i = 0usize;
        let n = self.expiry.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.expiry[l] < self.expiry[smallest] {
                smallest = l;
            }
            if r < n && self.expiry[r] < self.expiry[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.expiry.swap(i, smallest);
            i = smallest;
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, created_s: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(1),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(ttl_min),
        )
    }

    fn order_ids(b: &Buffer) -> Vec<MessageId> {
        b.ids_in_order().collect()
    }

    #[test]
    fn insert_and_accounting() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 400, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        assert_eq!(b.used(), 700);
        assert_eq!(b.free(), 300);
        assert_eq!(b.len(), 2);
        assert!((b.occupancy() - 0.7).abs() < 1e-12);
        assert!(b.contains(MessageId(1)));
        assert_eq!(b.head(), Some(MessageId(1)));
    }

    #[test]
    fn rejects_duplicate() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 100, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(1, 100, 5.0, 60)),
            Err(BufferError::Duplicate(MessageId(1)))
        );
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn rejects_oversized_and_full() {
        let mut b = Buffer::new(1000);
        assert_eq!(
            b.insert(msg(1, 2000, 0.0, 60)),
            Err(BufferError::TooLarge {
                size: 2000,
                capacity: 1000
            })
        );
        b.insert(msg(2, 800, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(3, 400, 0.0, 60)),
            Err(BufferError::NoSpace { missing: 200 })
        );
        // Failure must not corrupt accounting.
        assert_eq!(b.used(), 800);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_restores_space_and_order() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 300, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        b.insert(msg(3, 300, 2.0, 60)).unwrap();
        let removed = b.remove(MessageId(2)).unwrap();
        assert_eq!(removed.size, 300);
        assert_eq!(b.used(), 600);
        assert_eq!(order_ids(&b), vec![MessageId(1), MessageId(3)]);
        assert!(b.remove(MessageId(2)).is_none());
    }

    #[test]
    fn iteration_follows_reception_order() {
        let mut b = Buffer::new(10_000);
        for i in 0..10 {
            b.insert(msg(i, 10, i as f64, 60)).unwrap();
        }
        let ids: Vec<u64> = b.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_expired_removes_only_expired() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 10, 0.0, 1)).unwrap(); // expires at 60 s
        b.insert(msg(2, 10, 0.0, 60)).unwrap(); // expires at 3600 s
        b.insert(msg(3, 10, 30.0, 1)).unwrap(); // expires at 90 s
        let dead = b.drain_expired(SimTime::from_secs_f64(61.0));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, MessageId(1));
        assert_eq!(b.len(), 2);
        let dead = b.drain_expired(SimTime::from_secs_f64(10_000.0));
        assert_eq!(dead.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn drain_expired_returns_reception_order() {
        let mut b = Buffer::new(10_000);
        // Reception order 5, 4, 3 — all expiring together.
        for id in [5u64, 4, 3] {
            b.insert(msg(id, 10, 0.0, 1)).unwrap();
        }
        let dead = b.drain_expired(SimTime::from_secs_f64(60.0));
        let ids: Vec<u64> = dead.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![5, 4, 3]);
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let mut b = Buffer::new(10_000);
        assert_eq!(b.next_expiry(), None);
        b.insert(msg(1, 10, 0.0, 60)).unwrap(); // 3600 s
        b.insert(msg(2, 10, 0.0, 1)).unwrap(); // 60 s
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(60.0)));
        // Removing the earliest rolls the minimum forward (lazily).
        b.remove(MessageId(2)).unwrap();
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(3600.0)));
        b.remove(MessageId(1)).unwrap();
        assert_eq!(b.next_expiry(), None);
    }

    #[test]
    fn reinserted_id_with_new_expiry_is_tracked_exactly() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(7, 10, 0.0, 1)).unwrap(); // would expire at 60 s
        b.remove(MessageId(7)).unwrap();
        // Same id re-received later with a later expiry (fresh copy).
        b.insert(msg(7, 10, 100.0, 1)).unwrap(); // expires at 160 s
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(160.0)));
        assert!(b.drain_expired(SimTime::from_secs_f64(60.0)).is_empty());
        let dead = b.drain_expired(SimTime::from_secs_f64(160.0));
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn eviction_storm_keeps_views_consistent() {
        // Tombstone + compaction stress: interleave inserts and removals far
        // past the compaction threshold and re-check every view.
        let mut b = Buffer::new(u64::MAX);
        for i in 0..100u64 {
            b.insert(msg(i, 1, i as f64, 60)).unwrap();
        }
        // Evict from the head, like a FIFO drop policy under pressure.
        for i in 0..90u64 {
            assert_eq!(b.head(), Some(MessageId(i)));
            b.remove(MessageId(i)).unwrap();
        }
        assert_eq!(b.len(), 10);
        assert_eq!(order_ids(&b), (90..100).map(MessageId).collect::<Vec<_>>());
        // Insert after heavy removal: order still appends at the back.
        b.insert(msg(200, 1, 200.0, 60)).unwrap();
        assert_eq!(order_ids(&b).last(), Some(&MessageId(200)));
        assert_eq!(b.used(), 11);
    }

    #[test]
    fn reserved_tombstone_id_rejected() {
        let mut b = Buffer::new(1000);
        assert_eq!(
            b.insert(msg(u64::MAX, 10, 0.0, 60)),
            Err(BufferError::ReservedId)
        );
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn zero_capacity_buffer() {
        let mut b = Buffer::new(0);
        assert!(!b.could_fit(1));
        assert_eq!(b.occupancy(), 1.0);
        assert!(matches!(
            b.insert(msg(1, 1, 0.0, 60)),
            Err(BufferError::TooLarge { .. })
        ));
    }

    #[test]
    fn delta_log_replays_membership_changes() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 10, 0.0, 60)).unwrap(); // before watch: unlogged
        b.watch();
        let base = b.generation();
        assert_eq!(b.deltas_since(base), Some(&[][..]));

        b.insert(msg(2, 10, 1.0, 60)).unwrap();
        b.remove(MessageId(1)).unwrap();
        let deltas = b.deltas_since(base).expect("within the window");
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].id, MessageId(2));
        assert!(matches!(deltas[0].kind, DeltaKind::Insert(m) if m.size == 10 && m.seq == 1));
        assert_eq!(deltas[0].generation, base + 1);
        assert_eq!(deltas[1].id, MessageId(1));
        assert_eq!(deltas[1].kind, DeltaKind::Remove);
        // Mid-window replay: only the tail.
        let tail = b.deltas_since(base + 1).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].kind, DeltaKind::Remove);
        // A generation the log cannot prove (pre-watch, or foreign).
        assert_eq!(b.deltas_since(base.wrapping_sub(1)), None);
        assert_eq!(b.deltas_since(b.generation() + 7), None);
    }

    #[test]
    fn delta_log_tags_ttl_expiry() {
        let mut b = Buffer::new(10_000);
        b.watch();
        b.insert(msg(1, 10, 0.0, 1)).unwrap();
        let gen = b.generation();
        let dead = b.drain_expired(SimTime::from_secs_f64(61.0));
        assert_eq!(dead.len(), 1);
        let deltas = b.deltas_since(gen).unwrap();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].kind, DeltaKind::Expire);
    }

    #[test]
    fn delta_log_overflow_forces_rebuild() {
        let mut b = Buffer::new(u64::MAX);
        b.watch();
        let base = b.generation();
        // Far more churn than the retained window holds.
        for i in 0..2_000u64 {
            b.insert(msg(i, 1, 0.0, 60)).unwrap();
            b.remove(MessageId(i)).unwrap();
        }
        assert_eq!(b.deltas_since(base), None, "fell out of the ring");
        // Recent generations still replay exactly.
        let recent = b.generation() - 10;
        let deltas = b.deltas_since(recent).unwrap();
        assert_eq!(deltas.len(), 10);
        assert!(deltas
            .windows(2)
            .all(|w| w[1].generation == w[0].generation + 1));
    }

    #[test]
    fn unwatched_buffer_only_proves_the_current_generation() {
        let mut b = Buffer::new(10_000);
        let g0 = b.generation();
        assert_eq!(b.deltas_since(g0), Some(&[][..]));
        b.insert(msg(1, 10, 0.0, 60)).unwrap();
        assert_eq!(b.deltas_since(g0), None);
        assert_eq!(b.deltas_since(b.generation()), Some(&[][..]));
    }

    #[test]
    fn insert_count_and_seq_survive_removals_and_compaction() {
        let mut b = Buffer::new(u64::MAX);
        for i in 0..10u64 {
            b.insert(msg(i, 1, i as f64, 60)).unwrap();
        }
        assert_eq!(b.insert_count(), 10);
        for i in 0..8u64 {
            b.remove(MessageId(i)).unwrap(); // crosses the compaction threshold
        }
        assert_eq!(b.insert_count(), 10, "removals leave the count alone");
        assert_eq!(b.rank_meta(MessageId(8)).unwrap().seq, 8);
        assert_eq!(b.rank_meta(MessageId(9)).unwrap().seq, 9);
        // Re-insertion gets a fresh, larger seq (reception order restarts at
        // the back).
        b.insert(msg(3, 1, 99.0, 60)).unwrap();
        assert_eq!(b.rank_meta(MessageId(3)).unwrap().seq, 10);
        assert_eq!(b.insert_count(), 11);
        assert_eq!(b.rank_meta(MessageId(42)), None);
    }

    #[test]
    fn fits_now_vs_could_fit() {
        let mut b = Buffer::new(100);
        b.insert(msg(1, 80, 0.0, 60)).unwrap();
        assert!(b.could_fit(100));
        assert!(!b.fits_now(30));
        assert!(b.fits_now(20));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    proptest! {
        /// Arbitrary insert/remove sequences keep byte accounting exact and
        /// order/store views consistent.
        #[test]
        fn accounting_under_random_ops(ops in proptest::collection::vec((0u64..30, 1u64..500, any::<bool>()), 1..200)) {
            let mut b = Buffer::new(5_000);
            let mut expected_used = 0u64;
            for (id, size, remove) in ops {
                if remove {
                    if let Some(m) = b.remove(MessageId(id)) {
                        expected_used -= m.size;
                    }
                } else if !b.contains(MessageId(id)) && b.fits_now(size) {
                    b.insert(Message::new(
                        MessageId(id),
                        NodeId(0),
                        NodeId(1),
                        size,
                        SimTime::ZERO,
                        SimDuration::from_mins(10),
                    ))
                    .unwrap();
                    expected_used += size;
                }
                prop_assert_eq!(b.used(), expected_used);
                prop_assert!(b.used() <= b.capacity());
                prop_assert_eq!(b.ids_in_order().count(), b.len());
                let sum: u64 = b.iter().map(|m| m.size).sum();
                prop_assert_eq!(sum, b.used());
            }
        }

        /// Insertion order is exactly the reception order of surviving ids.
        #[test]
        fn order_is_subsequence_of_insertions(ids in proptest::collection::vec(0u64..50, 1..60)) {
            let mut b = Buffer::new(u64::MAX);
            let mut inserted = Vec::new();
            for id in ids {
                if b.insert(Message::new(
                    MessageId(id),
                    NodeId(0),
                    NodeId(1),
                    1,
                    SimTime::ZERO,
                    SimDuration::from_mins(10),
                ))
                .is_ok()
                {
                    inserted.push(MessageId(id));
                }
            }
            prop_assert_eq!(b.ids_in_order().collect::<Vec<_>>(), inserted);
        }

        /// Heap-driven expiry drains exactly what a full scan would, in
        /// reception order, across random insert/remove/advance sequences.
        #[test]
        fn drain_matches_full_scan_reference(
            ops in proptest::collection::vec((0u64..20, 1u64..30, 0u64..3), 1..150)
        ) {
            let mut b = Buffer::new(u64::MAX);
            let mut now = SimTime::ZERO;
            for (id, ttl_min, action) in ops {
                match action {
                    0 => {
                        let _ = b.insert(Message::new(
                            MessageId(id),
                            NodeId(0),
                            NodeId(1),
                            1,
                            now,
                            SimDuration::from_mins(ttl_min),
                        ));
                    }
                    1 => { b.remove(MessageId(id)); }
                    _ => {
                        now += SimDuration::from_mins(ttl_min);
                        // Reference: what a full scan would drain, in
                        // reception order.
                        let expected: Vec<MessageId> = b
                            .iter()
                            .filter(|m| m.is_expired(now))
                            .map(|m| m.id)
                            .collect();
                        let drained: Vec<MessageId> =
                            b.drain_expired(now).iter().map(|m| m.id).collect();
                        prop_assert_eq!(drained, expected);
                        // Nothing expired may remain.
                        prop_assert!(b.iter().all(|m| !m.is_expired(now)));
                        if let Some(e) = b.next_expiry() {
                            prop_assert!(e > now);
                        }
                    }
                }
            }
        }
    }
}

//! Byte-capacity message buffers.
//!
//! A [`Buffer`] stores message copies up to a byte capacity, preserving
//! insertion (reception) order — the order FIFO policies rely on — while
//! providing O(log n) id lookups through a sorted index. Iteration always
//! follows insertion order so every traversal is deterministic.
//!
//! Since the arena refactor a buffer does **not** store full [`Message`]
//! structs. The immutable metadata of each logical message lives once per
//! world in a shared [`MessageArena`]; the buffer keeps a single flat
//! reception-ordered `Vec` of `CopyEntry` records — the arena handle plus
//! the genuinely per-copy fields (hop count, spray quota, reception time,
//! insertion sequence) — and reconstructs `Message` values on demand.
//! Accessors therefore return messages **by value** (`Message` is `Copy`).
//!
//! Internally four structures cooperate:
//!
//! * `copies` — reception order (front = oldest) and per-copy state in one
//!   contiguous vector. Removal tombstones the entry in O(1) (sentinel
//!   handle) and compacts once tombstones outnumber live entries, so
//!   eviction storms are amortised O(1) per removal;
//! * `ids`/`slots` — two parallel sorted columns mapping id → position in
//!   `copies` for every stored message (the membership source of truth).
//!   A sorted pair of flat vectors instead of a hash map: 12 bytes per
//!   stored copy with zero per-instance table overhead, which matters
//!   because there is one buffer per node and lookups stay O(log n) on
//!   buffers that hold at most a few thousand copies;
//! * `expiry` — a min-heap of `(expiry time, id)` with lazy deletion, so
//!   TTL housekeeping ([`Buffer::next_expiry`], [`Buffer::drain_expired`])
//!   costs O(1) when nothing is due instead of a full-buffer scan. This is
//!   the heap the engine's TTL-expiry events are scheduled from;
//! * `deltas` — an optional bounded membership-change log (see
//!   [`Buffer::watch`]). Once a subscriber opts in, every insert, removal
//!   and TTL expiry is recorded as a [`BufferDelta`] (its generation stamp
//!   is implicit in its log position), and [`Buffer::deltas_since`] replays the
//!   changes between two observed generations so downstream candidate
//!   indexes can patch themselves in O(changes) instead of rescanning the
//!   buffer. Removal deltas carry the removed copy's [`RankMeta`] so
//!   consumers can locate rank-keyed entries without any id→rank side
//!   table of their own. The log is a bounded ring (compacted in amortised
//!   O(1), like the tombstoned `copies` vector): consumers that fall too
//!   far behind get `None` and must rebuild — staleness degrades to a
//!   rescan, never to a wrong answer.

use crate::arena::{MessageArena, MsgHandle};
use crate::message::{Message, MessageId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use vdtn_sim_core::SimTime;

/// Why an insertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferError {
    /// The message alone exceeds the total capacity — no eviction can help.
    TooLarge {
        /// Size of the rejected message.
        size: u64,
        /// Total buffer capacity.
        capacity: u64,
    },
    /// Free space is insufficient; the caller should evict via the drop
    /// policy and retry.
    NoSpace {
        /// Bytes missing.
        missing: u64,
    },
    /// A copy of this message is already stored.
    Duplicate(MessageId),
    /// The id `u64::MAX` is reserved as a sentinel and can never be stored
    /// (the traffic generator allocates ids sequentially from zero and
    /// never reaches it).
    ReservedId,
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::TooLarge { size, capacity } => {
                write!(
                    f,
                    "message of {size} B exceeds buffer capacity {capacity} B"
                )
            }
            BufferError::NoSpace { missing } => write!(f, "buffer lacks {missing} B"),
            BufferError::Duplicate(id) => write!(f, "duplicate message {id}"),
            BufferError::ReservedId => write!(f, "message id u64::MAX is reserved"),
        }
    }
}

impl std::error::Error for BufferError {}

/// Reserved message id, kept un-storable for API stability (it was the
/// in-place tombstone before the copy vector switched to handle sentinels).
const RESERVED_ID: MessageId = MessageId(u64::MAX);

/// In-place marker for removed `copies` entries. `u32::MAX` can never be a
/// real handle: [`MessageArena::intern`] refuses to allocate it.
const TOMBSTONE: MsgHandle = MsgHandle(u32::MAX);

/// One entry of the lazy expiry min-heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ExpiryEntry {
    at: SimTime,
    id: MessageId,
}

/// One stored copy: the arena handle of its logical message plus every
/// per-copy field. 24 bytes, stored inline in the reception-order vector —
/// the whole buffer scan is one contiguous walk. The message id is *not*
/// duplicated here: the interned [`crate::MsgMeta`] record carries it, so
/// identity costs one lock-free arena resolve instead of 8 bytes per copy.
#[derive(Debug, Clone, Copy)]
struct CopyEntry {
    /// Interned immutable metadata (id, src, dst, size, created, ttl), or
    /// `TOMBSTONE` when the slot was removed.
    handle: MsgHandle,
    /// Hops this copy has taken from the source.
    hops: u32,
    /// Remaining logical copies for quota-based protocols.
    copies: u32,
    /// Buffer-lifetime insertion sequence number (scheduling tie-break —
    /// reception order survives compaction through it). `u32` suffices: a
    /// buffer would need four billion inserts to wrap, and
    /// [`Buffer::insert`] debug-asserts the bound.
    seq: u32,
    /// Reception timestamp at the current holder.
    received: SimTime,
}

/// The immutable fields every [`crate::SchedulingPolicy`] ranks by, snapshot
/// at insertion time. Carried inside every [`DeltaKind`] so a consumer can
/// key a candidate entry even after the message has left the buffer again
/// (insert-then-remove inside one replayed batch), plus the insertion
/// sequence number `seq` that encodes reception order for tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMeta {
    /// Absolute expiry instant (`created + ttl`).
    pub expiry: SimTime,
    /// Message size in bytes.
    pub size: u64,
    /// Creation timestamp at the source.
    pub created: SimTime,
    /// Hop count of the stored copy (immutable while stored).
    pub hops: u32,
    /// Buffer-lifetime insertion sequence number; strictly increasing with
    /// reception order, never reused. `u32` like the stored copy's — the
    /// packing keeps the whole snapshot at 32 bytes, which matters because
    /// one lives inside every retained [`BufferDelta`].
    pub seq: u32,
}

/// What a [`BufferDelta`] records. Removal variants carry the affected
/// copy's [`RankMeta`] snapshot — the meta the copy was *inserted* with —
/// which lets delta consumers compute the exact rank key of the entry to
/// delete instead of keeping their own id→rank map. Inserts carry **no**
/// snapshot: an inserted copy's rank meta is immutable while stored, so a
/// consumer reads it from the live buffer ([`Buffer::rank_meta`]); if the
/// copy was removed again inside the same replayed batch, skipping the
/// insert is exact because the paired removal delta then matches nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaKind {
    /// A message entered the buffer.
    Insert,
    /// A message was removed (forwarding hand-off, delivery discard,
    /// drop-policy eviction).
    Remove(RankMeta),
    /// A message was removed by the TTL sweep ([`Buffer::drain_expired`]).
    /// Consumers treat it like [`DeltaKind::Remove`]; the distinction is
    /// kept for diagnostics and the invalidation tables in ARCHITECTURE.md.
    Expire(RankMeta),
}

/// One membership change. Generations move by exactly one per change and
/// the log is contiguous, so the generation an entry was stamped with is
/// implicit in its position (`log_base + index + 1`) — it is not stored.
///
/// This is the *iteration item* of [`DeltaReplay`]; the retained ring is
/// column-structured (id column, 1-byte tag column, and a meta column
/// populated only for removals — at steady state mostly inserts, ~9 bytes
/// per retained change instead of the 64 of the former array-of-structs
/// log), and entries are reassembled by value on replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferDelta {
    /// The message the change concerns.
    pub id: MessageId,
    /// What happened.
    pub kind: DeltaKind,
}

/// A replayable slice of the delta log, as returned by
/// [`Buffer::deltas_since`]: the membership changes between two observed
/// generations, oldest first.
#[derive(Debug, Clone, Copy)]
pub struct DeltaReplay<'a> {
    ids: &'a [MessageId],
    tags: &'a [u8],
    /// Removal metas for this slice, front-aligned: the first removal tag
    /// in `tags` pairs with `metas[0]`, and so on.
    metas: &'a [RankMeta],
}

/// Ring tag values (`u8` column entries).
const TAG_INSERT: u8 = 0;
const TAG_REMOVE: u8 = 1;
const TAG_EXPIRE: u8 = 2;

impl<'a> DeltaReplay<'a> {
    /// Number of changes in the slice.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the slice replays nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The changes, oldest first, reassembled by value.
    pub fn iter(&self) -> impl Iterator<Item = BufferDelta> + 'a {
        let (ids, tags, metas) = (self.ids, self.tags, self.metas);
        let mut next_meta = 0usize;
        ids.iter().zip(tags).map(move |(&id, &tag)| {
            let kind = match tag {
                TAG_INSERT => DeltaKind::Insert,
                _ => {
                    let meta = metas[next_meta];
                    next_meta += 1;
                    if tag == TAG_REMOVE {
                        DeltaKind::Remove(meta)
                    } else {
                        DeltaKind::Expire(meta)
                    }
                }
            };
            BufferDelta { id, kind }
        })
    }
}

/// Ring bound for the delta log: once more than `2 * DELTA_LOG_CAP` entries
/// accumulate the oldest `DELTA_LOG_CAP` are dropped in one amortised-O(1)
/// batch. Consumers further behind than the retained window rebuild instead
/// of patching.
const DELTA_LOG_CAP: usize = 512;

/// A node's message store.
#[derive(Debug, Clone)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    /// Immutable logical-message metadata, shared across the world's
    /// buffers (or private to this buffer when built via [`Buffer::new`]).
    arena: Arc<MessageArena>,
    /// Reception order (front = oldest) and per-copy state, possibly
    /// holding tombstoned entries. Removal overwrites the entry's handle
    /// with the `TOMBSTONE` sentinel in place, so liveness checks during
    /// iteration are a plain compare — no id lookups on the hot traversal
    /// paths.
    copies: Vec<CopyEntry>,
    /// Sorted ids of every *stored* message, parallel to `slots`.
    ids: Vec<MessageId>,
    /// `copies` position of each stored id, parallel to `ids`.
    slots: Vec<u32>,
    /// Tombstoned entries currently in `copies`.
    stale: usize,
    /// Min-heap (array layout) of expiry times with lazy deletion: entries
    /// whose id is gone, or whose stored copy has a different expiry (id
    /// re-inserted), are discarded when they surface.
    expiry: Vec<ExpiryEntry>,
    /// Monotone membership-change counter: bumped on every successful
    /// insert and remove (and therefore on eviction and TTL drain, which go
    /// through `remove`). [`crate::ScheduleCache`] revalidates against it.
    /// In-place mutation via [`Buffer::copies_mut`] does *not* bump it —
    /// see `generation()` for the contract.
    generation: u64,
    /// Count of successful inserts over the buffer's lifetime. Doubles as
    /// the next insertion sequence number and as the "delta summary" the
    /// engine's silent-round memo keys on (removals never make a silent
    /// direction loud, so the memo can ignore them — see
    /// [`Buffer::insert_count`]).
    inserts: u64,
    /// True once a consumer called [`Buffer::watch`]; membership changes
    /// are recorded from that point on.
    log_on: bool,
    /// The delta log covers generations `(log_base, generation]`.
    log_base: u64,
    /// Delta-log id column, oldest first (bounded; see `DELTA_LOG_CAP`).
    delta_ids: Vec<MessageId>,
    /// Delta-log tag column, parallel to `delta_ids` (`TAG_*` values).
    delta_tags: Vec<u8>,
    /// Removal-meta column: one snapshot per `TAG_REMOVE`/`TAG_EXPIRE`
    /// entry, in tag order. Inserts store nothing here.
    delta_metas: Vec<RankMeta>,
}

impl Buffer {
    /// Create a buffer with the given byte capacity and a private metadata
    /// arena. World buffers share one arena instead — see
    /// [`Buffer::with_arena`].
    pub fn new(capacity: u64) -> Self {
        Self::with_arena(capacity, Arc::new(MessageArena::new()))
    }

    /// Create a buffer backed by a shared metadata arena.
    pub fn with_arena(capacity: u64, arena: Arc<MessageArena>) -> Self {
        Buffer {
            capacity,
            used: 0,
            arena,
            copies: Vec::new(),
            ids: Vec::new(),
            slots: Vec::new(),
            stale: 0,
            expiry: Vec::new(),
            generation: 0,
            inserts: 0,
            log_on: false,
            log_base: 0,
            delta_ids: Vec::new(),
            delta_tags: Vec::new(),
            delta_metas: Vec::new(),
        }
    }

    /// The metadata arena backing this buffer.
    pub fn arena(&self) -> &Arc<MessageArena> {
        &self.arena
    }

    /// Monotone counter distinguishing buffer *membership* states: any
    /// successful [`Buffer::insert`] or [`Buffer::remove`] bumps it, so two
    /// observations with equal generations hold exactly the same message
    /// set in the same reception order.
    ///
    /// [`Buffer::copies_mut`] deliberately does **not** bump it: the spray
    /// quotas protocols mutate in place are not scheduling keys — every
    /// [`crate::SchedulingPolicy`] orders by immutable message fields
    /// (reception position, absolute expiry, size, creation time, the
    /// stored copy's hop count), which is what makes generation-keyed
    /// schedule caching sound.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of successful inserts over this buffer's lifetime, monotone
    /// and unchanged by removals.
    ///
    /// This is the buffer's **delta summary** for silence reasoning: a
    /// routing direction whose `None` verdict was recorded at some sender
    /// insert-count stays `None` while that count is unchanged, because
    /// removals only shrink the sender's candidate set and every surviving
    /// candidate was already rejected (the engine's `SilenceKey` keys on
    /// this instead of the full generation since PR 5).
    pub fn insert_count(&self) -> u64 {
        self.inserts
    }

    /// Start recording membership deltas. Idempotent; recording stays on
    /// for the buffer's life. The log starts empty at the current
    /// generation, so `deltas_since(generation())` is `Some(&[])`
    /// immediately after.
    pub fn watch(&mut self) {
        if !self.log_on {
            self.log_on = true;
            self.log_base = self.generation;
            self.delta_ids.clear();
            self.delta_tags.clear();
            self.delta_metas.clear();
        }
    }

    /// True once [`Buffer::watch`] has been called.
    pub fn is_watched(&self) -> bool {
        self.log_on
    }

    /// The membership changes between the observed generation `gen` and the
    /// current one, oldest first, or `None` when the log cannot prove the
    /// interval (never watched, consumer older than the retained window, or
    /// `gen` from a different buffer) — the caller must then rebuild from
    /// the buffer itself. `Some` of an empty replay whenever `gen` is
    /// current, watched or not.
    pub fn deltas_since(&self, gen: u64) -> Option<DeltaReplay<'_>> {
        if gen == self.generation {
            return Some(DeltaReplay {
                ids: &[],
                tags: &[],
                metas: &[],
            });
        }
        if !self.log_on || gen > self.generation || gen < self.log_base {
            return None;
        }
        debug_assert_eq!(
            self.delta_ids.len() as u64,
            self.generation - self.log_base,
            "every generation bump since watch() is logged"
        );
        let start = (gen - self.log_base) as usize;
        // Removal metas before the slice start are skipped by count — tags
        // are a flat byte column, so this is one cheap bounded scan.
        let meta_start = self.delta_tags[..start]
            .iter()
            .filter(|&&t| t != TAG_INSERT)
            .count();
        Some(DeltaReplay {
            ids: &self.delta_ids[start..],
            tags: &self.delta_tags[start..],
            metas: &self.delta_metas[meta_start..],
        })
    }

    /// `copies` position of a stored id (binary search of the sorted
    /// id column).
    fn slot_of(&self, id: MessageId) -> Option<u32> {
        let i = self.ids.binary_search(&id).ok()?;
        Some(self.slots[i])
    }

    /// The scheduling-rank snapshot of a stored message (see [`RankMeta`]).
    pub fn rank_meta(&self, id: MessageId) -> Option<RankMeta> {
        let pos = self.slot_of(id)?;
        Some(self.rank_meta_at(pos as usize))
    }

    /// The arena handle of a stored message's interned metadata. Lets
    /// rank-keyed consumers (the routing candidate index) store 4-byte
    /// handles instead of 8-byte ids and resolve lock-free.
    pub fn handle_of(&self, id: MessageId) -> Option<MsgHandle> {
        let pos = self.slot_of(id)?;
        Some(self.copies[pos as usize].handle)
    }

    /// Every stored copy as `(id, arena handle, rank snapshot)`, in
    /// reception order — one contiguous pass for consumers that rebuild a
    /// rank-keyed view of the whole buffer.
    pub fn rank_entries(&self) -> impl Iterator<Item = (MessageId, MsgHandle, RankMeta)> + '_ {
        self.copies
            .iter()
            .filter(|e| e.handle != TOMBSTONE)
            .map(move |e| {
                let meta = self.arena.resolve(e.handle);
                (
                    meta.id,
                    e.handle,
                    RankMeta {
                        expiry: meta.expiry(),
                        size: meta.size,
                        created: meta.created,
                        hops: e.hops,
                        seq: e.seq,
                    },
                )
            })
    }

    fn rank_meta_at(&self, pos: usize) -> RankMeta {
        let e = &self.copies[pos];
        let meta = self.arena.resolve(e.handle);
        RankMeta {
            expiry: meta.expiry(),
            size: meta.size,
            created: meta.created,
            hops: e.hops,
            seq: e.seq,
        }
    }

    /// Reconstruct the full message copy stored at `pos`.
    fn reify(&self, e: &CopyEntry) -> Message {
        let meta = self.arena.resolve(e.handle);
        Message {
            id: meta.id,
            src: meta.src,
            dst: meta.dst,
            size: meta.size,
            created: meta.created,
            ttl: meta.ttl,
            hops: e.hops,
            copies: e.copies,
            received: e.received,
        }
    }

    fn push_delta(&mut self, id: MessageId, kind: DeltaKind) {
        if !self.log_on {
            return;
        }
        let tag = match kind {
            DeltaKind::Insert => TAG_INSERT,
            DeltaKind::Remove(meta) => {
                self.delta_metas.push(meta);
                TAG_REMOVE
            }
            DeltaKind::Expire(meta) => {
                self.delta_metas.push(meta);
                TAG_EXPIRE
            }
        };
        self.delta_ids.push(id);
        self.delta_tags.push(tag);
        if self.delta_ids.len() > 2 * DELTA_LOG_CAP {
            // Entry `i` covers generation `log_base + i + 1`; dropping the
            // oldest `DELTA_LOG_CAP` advances the base by exactly that much.
            self.log_base += DELTA_LOG_CAP as u64;
            let dropped_metas = self.delta_tags[..DELTA_LOG_CAP]
                .iter()
                .filter(|&&t| t != TAG_INSERT)
                .count();
            self.delta_ids.drain(..DELTA_LOG_CAP);
            self.delta_tags.drain(..DELTA_LOG_CAP);
            self.delta_metas.drain(..dropped_metas);
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            1.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }

    /// Number of stored messages.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True if a copy of `id` is stored.
    pub fn contains(&self, id: MessageId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// A stored copy, reconstructed by value from the arena record and the
    /// per-copy fields (`Message` is `Copy`; there is no stored struct to
    /// borrow).
    pub fn get(&self, id: MessageId) -> Option<Message> {
        let pos = self.slot_of(id)?;
        Some(self.reify(&self.copies[pos as usize]))
    }

    /// Mutable access to a stored copy's remaining-copies quota (the only
    /// per-copy field protocols mutate in place — Spray-and-Wait halving).
    pub fn copies_mut(&mut self, id: MessageId) -> Option<&mut u32> {
        let pos = self.slot_of(id)?;
        Some(&mut self.copies[pos as usize].copies)
    }

    /// Insert a message copy. Fails without modifying the buffer if the
    /// message cannot fit or is already present.
    pub fn insert(&mut self, msg: Message) -> Result<(), BufferError> {
        if msg.id == RESERVED_ID {
            return Err(BufferError::ReservedId);
        }
        let at = match self.ids.binary_search(&msg.id) {
            Ok(_) => return Err(BufferError::Duplicate(msg.id)),
            Err(at) => at,
        };
        if msg.size > self.capacity {
            return Err(BufferError::TooLarge {
                size: msg.size,
                capacity: self.capacity,
            });
        }
        if msg.size > self.free() {
            return Err(BufferError::NoSpace {
                missing: msg.size - self.free(),
            });
        }
        let handle = self.arena.intern(&msg);
        self.used += msg.size;
        self.generation += 1;
        debug_assert!(self.inserts <= u32::MAX as u64, "insert seq wrapped");
        let seq = self.inserts as u32;
        self.inserts += 1;
        self.ids.insert(at, msg.id);
        self.slots.insert(at, self.copies.len() as u32);
        self.copies.push(CopyEntry {
            handle,
            hops: msg.hops,
            copies: msg.copies,
            seq,
            received: msg.received,
        });
        self.heap_push(ExpiryEntry {
            at: msg.expiry(),
            id: msg.id,
        });
        self.push_delta(msg.id, DeltaKind::Insert);
        Ok(())
    }

    /// Remove and return a copy. Amortised O(1): the `copies` entry is
    /// overwritten with the `TOMBSTONE` sentinel and reclaimed by a later
    /// compaction; the expiry-heap entry is discarded lazily.
    pub fn remove(&mut self, id: MessageId) -> Option<Message> {
        self.remove_with(id, false)
    }

    fn remove_with(&mut self, id: MessageId, expired: bool) -> Option<Message> {
        let i = self.ids.binary_search(&id).ok()?;
        self.ids.remove(i);
        let pos = self.slots.remove(i) as usize;
        let msg = self.reify(&self.copies[pos]);
        let meta = self.rank_meta_at(pos);
        self.used -= msg.size;
        self.generation += 1;
        self.copies[pos].handle = TOMBSTONE;
        self.stale += 1;
        if self.stale * 2 > self.copies.len() {
            self.compact();
        }
        let kind = if expired {
            DeltaKind::Expire(meta)
        } else {
            DeltaKind::Remove(meta)
        };
        self.push_delta(id, kind);
        Some(msg)
    }

    /// Rewrite `copies` without tombstones, preserving relative order.
    fn compact(&mut self) {
        let mut w = 0usize;
        for r in 0..self.copies.len() {
            let e = self.copies[r];
            if e.handle != TOMBSTONE {
                self.copies[w] = e;
                let id = self.arena.resolve(e.handle).id;
                let i = self.ids.binary_search(&id).expect("live ids are indexed");
                self.slots[i] = w as u32;
                w += 1;
            }
        }
        self.copies.truncate(w);
        self.stale = 0;
    }

    /// Oldest-received message id (FIFO head).
    pub fn head(&self) -> Option<MessageId> {
        self.ids_in_order().next()
    }

    /// Ids in reception order (front = oldest). A plain filtered slice
    /// walk — tombstones are in-place sentinels — plus one lock-free arena
    /// resolve per live entry for the id.
    pub fn ids_in_order(&self) -> impl Iterator<Item = MessageId> + '_ {
        self.copies
            .iter()
            .filter(|e| e.handle != TOMBSTONE)
            .map(|e| self.arena.resolve(e.handle).id)
    }

    /// Iterate stored messages in reception order, reconstructed by value.
    pub fn iter(&self) -> impl Iterator<Item = Message> + '_ {
        self.copies
            .iter()
            .filter(|e| e.handle != TOMBSTONE)
            .map(move |e| self.reify(e))
    }

    /// Absolute expiry of the copy at `pos` (arena lookup).
    fn expiry_at(&self, pos: usize) -> SimTime {
        self.arena.resolve(self.copies[pos].handle).expiry()
    }

    /// Earliest expiry time among stored messages, or `None` when empty.
    ///
    /// O(1) amortised (lazily discards heap entries for removed copies).
    /// The engine schedules its per-node TTL events from this value: no
    /// stored message can expire before it.
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        while let Some(&top) = self.expiry.first() {
            match self.slot_of(top.id) {
                Some(pos) if self.expiry_at(pos as usize) == top.at => return Some(top.at),
                _ => {
                    self.heap_pop();
                }
            }
        }
        None
    }

    /// Remove every expired message, returning them in reception order (for
    /// stats recording). Driven by the expiry heap: O(1) when nothing is
    /// due, O(expired · log n) otherwise — never a full-buffer scan.
    pub fn drain_expired(&mut self, now: SimTime) -> Vec<Message> {
        if self.expiry.first().map_or(true, |top| top.at > now) {
            return Vec::new();
        }
        // Collect due live ids with their reception positions first; the
        // removals below may compact `copies` and shuffle positions.
        let mut due: Vec<(u32, MessageId)> = Vec::new();
        while let Some(&top) = self.expiry.first() {
            if top.at > now {
                break;
            }
            self.heap_pop();
            if let Some(pos) = self.slot_of(top.id) {
                if self.expiry_at(pos as usize) == top.at {
                    due.push((pos, top.id));
                }
            }
        }
        due.sort_unstable();
        due.dedup_by_key(|e| e.1);
        due.into_iter()
            .map(|(_, id)| self.remove_with(id, true).expect("live id collected above"))
            .collect()
    }

    /// True if `size` bytes could ever fit (possibly after evictions).
    pub fn could_fit(&self, size: u64) -> bool {
        size <= self.capacity
    }

    /// True if `size` bytes fit right now without eviction.
    pub fn fits_now(&self, size: u64) -> bool {
        size <= self.free()
    }

    // --- expiry min-heap primitives (array layout, lazy deletion) ---

    fn heap_push(&mut self, e: ExpiryEntry) {
        self.expiry.push(e);
        let mut i = self.expiry.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.expiry[i] < self.expiry[parent] {
                self.expiry.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<ExpiryEntry> {
        if self.expiry.is_empty() {
            return None;
        }
        let top = self.expiry.swap_remove(0);
        let mut i = 0usize;
        let n = self.expiry.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.expiry[l] < self.expiry[smallest] {
                smallest = l;
            }
            if r < n && self.expiry[r] < self.expiry[smallest] {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.expiry.swap(i, smallest);
            i = smallest;
        }
        Some(top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    fn msg(id: u64, size: u64, created_s: f64, ttl_min: u64) -> Message {
        Message::new(
            MessageId(id),
            NodeId(0),
            NodeId(1),
            size,
            SimTime::from_secs_f64(created_s),
            SimDuration::from_mins(ttl_min),
        )
    }

    fn order_ids(b: &Buffer) -> Vec<MessageId> {
        b.ids_in_order().collect()
    }

    #[test]
    fn insert_and_accounting() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 400, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        assert_eq!(b.used(), 700);
        assert_eq!(b.free(), 300);
        assert_eq!(b.len(), 2);
        assert!((b.occupancy() - 0.7).abs() < 1e-12);
        assert!(b.contains(MessageId(1)));
        assert_eq!(b.head(), Some(MessageId(1)));
    }

    #[test]
    fn get_reconstructs_the_inserted_copy_exactly() {
        let mut b = Buffer::new(1000);
        let mut m = msg(1, 400, 5.0, 60);
        m.hops = 3;
        m.copies = 8;
        m.received = SimTime::from_secs_f64(9.0);
        b.insert(m).unwrap();
        assert_eq!(b.get(MessageId(1)), Some(m));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![m]);
        assert_eq!(b.get(MessageId(2)), None);
    }

    #[test]
    fn shared_arena_interns_once_across_buffers() {
        let arena = Arc::new(MessageArena::new());
        let mut b1 = Buffer::with_arena(1000, arena.clone());
        let mut b2 = Buffer::with_arena(1000, arena.clone());
        let m = msg(1, 100, 0.0, 60);
        b1.insert(m).unwrap();
        b2.insert(m.relayed_copy(SimTime::from_secs_f64(5.0)))
            .unwrap();
        assert_eq!(arena.len(), 1, "replicas share one metadata record");
        assert_eq!(b1.get(MessageId(1)).unwrap().hops, 0);
        assert_eq!(b2.get(MessageId(1)).unwrap().hops, 1);
    }

    #[test]
    fn copies_mut_updates_quota_without_generation_bump() {
        let mut b = Buffer::new(1000);
        let mut m = msg(1, 100, 0.0, 60);
        m.copies = 8;
        b.insert(m).unwrap();
        let gen = b.generation();
        *b.copies_mut(MessageId(1)).unwrap() = 4;
        assert_eq!(b.get(MessageId(1)).unwrap().copies, 4);
        assert_eq!(
            b.generation(),
            gen,
            "in-place quota edits are not membership changes"
        );
        assert!(b.copies_mut(MessageId(9)).is_none());
    }

    #[test]
    fn rejects_duplicate() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 100, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(1, 100, 5.0, 60)),
            Err(BufferError::Duplicate(MessageId(1)))
        );
        assert_eq!(b.used(), 100);
    }

    #[test]
    fn rejects_oversized_and_full() {
        let mut b = Buffer::new(1000);
        assert_eq!(
            b.insert(msg(1, 2000, 0.0, 60)),
            Err(BufferError::TooLarge {
                size: 2000,
                capacity: 1000
            })
        );
        b.insert(msg(2, 800, 0.0, 60)).unwrap();
        assert_eq!(
            b.insert(msg(3, 400, 0.0, 60)),
            Err(BufferError::NoSpace { missing: 200 })
        );
        // Failure must not corrupt accounting.
        assert_eq!(b.used(), 800);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_restores_space_and_order() {
        let mut b = Buffer::new(1000);
        b.insert(msg(1, 300, 0.0, 60)).unwrap();
        b.insert(msg(2, 300, 1.0, 60)).unwrap();
        b.insert(msg(3, 300, 2.0, 60)).unwrap();
        let removed = b.remove(MessageId(2)).unwrap();
        assert_eq!(removed.size, 300);
        assert_eq!(b.used(), 600);
        assert_eq!(order_ids(&b), vec![MessageId(1), MessageId(3)]);
        assert!(b.remove(MessageId(2)).is_none());
    }

    #[test]
    fn iteration_follows_reception_order() {
        let mut b = Buffer::new(10_000);
        for i in 0..10 {
            b.insert(msg(i, 10, i as f64, 60)).unwrap();
        }
        let ids: Vec<u64> = b.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_expired_removes_only_expired() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 10, 0.0, 1)).unwrap(); // expires at 60 s
        b.insert(msg(2, 10, 0.0, 60)).unwrap(); // expires at 3600 s
        b.insert(msg(3, 10, 30.0, 1)).unwrap(); // expires at 90 s
        let dead = b.drain_expired(SimTime::from_secs_f64(61.0));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].id, MessageId(1));
        assert_eq!(b.len(), 2);
        let dead = b.drain_expired(SimTime::from_secs_f64(10_000.0));
        assert_eq!(dead.len(), 2);
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn drain_expired_returns_reception_order() {
        let mut b = Buffer::new(10_000);
        // Reception order 5, 4, 3 — all expiring together.
        for id in [5u64, 4, 3] {
            b.insert(msg(id, 10, 0.0, 1)).unwrap();
        }
        let dead = b.drain_expired(SimTime::from_secs_f64(60.0));
        let ids: Vec<u64> = dead.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, vec![5, 4, 3]);
    }

    #[test]
    fn next_expiry_tracks_minimum() {
        let mut b = Buffer::new(10_000);
        assert_eq!(b.next_expiry(), None);
        b.insert(msg(1, 10, 0.0, 60)).unwrap(); // 3600 s
        b.insert(msg(2, 10, 0.0, 1)).unwrap(); // 60 s
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(60.0)));
        // Removing the earliest rolls the minimum forward (lazily).
        b.remove(MessageId(2)).unwrap();
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(3600.0)));
        b.remove(MessageId(1)).unwrap();
        assert_eq!(b.next_expiry(), None);
    }

    #[test]
    fn reinserted_id_with_new_expiry_is_tracked_exactly() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(7, 10, 0.0, 1)).unwrap(); // would expire at 60 s
        b.remove(MessageId(7)).unwrap();
        // Same id re-received later with a later expiry (fresh copy).
        b.insert(msg(7, 10, 100.0, 1)).unwrap(); // expires at 160 s
        assert_eq!(b.next_expiry(), Some(SimTime::from_secs_f64(160.0)));
        assert!(b.drain_expired(SimTime::from_secs_f64(60.0)).is_empty());
        let dead = b.drain_expired(SimTime::from_secs_f64(160.0));
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn eviction_storm_keeps_views_consistent() {
        // Tombstone + compaction stress: interleave inserts and removals far
        // past the compaction threshold and re-check every view.
        let mut b = Buffer::new(u64::MAX);
        for i in 0..100u64 {
            b.insert(msg(i, 1, i as f64, 60)).unwrap();
        }
        // Evict from the head, like a FIFO drop policy under pressure.
        for i in 0..90u64 {
            assert_eq!(b.head(), Some(MessageId(i)));
            b.remove(MessageId(i)).unwrap();
        }
        assert_eq!(b.len(), 10);
        assert_eq!(order_ids(&b), (90..100).map(MessageId).collect::<Vec<_>>());
        // Insert after heavy removal: order still appends at the back.
        b.insert(msg(200, 1, 200.0, 60)).unwrap();
        assert_eq!(order_ids(&b).last(), Some(&MessageId(200)));
        assert_eq!(b.used(), 11);
    }

    #[test]
    fn reserved_tombstone_id_rejected() {
        let mut b = Buffer::new(1000);
        assert_eq!(
            b.insert(msg(u64::MAX, 10, 0.0, 60)),
            Err(BufferError::ReservedId)
        );
        assert!(b.is_empty());
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn zero_capacity_buffer() {
        let mut b = Buffer::new(0);
        assert!(!b.could_fit(1));
        assert_eq!(b.occupancy(), 1.0);
        assert!(matches!(
            b.insert(msg(1, 1, 0.0, 60)),
            Err(BufferError::TooLarge { .. })
        ));
    }

    #[test]
    fn delta_log_replays_membership_changes() {
        let mut b = Buffer::new(10_000);
        b.insert(msg(1, 10, 0.0, 60)).unwrap(); // before watch: unlogged
        b.watch();
        let base = b.generation();
        assert!(b.deltas_since(base).unwrap().is_empty());

        b.insert(msg(2, 10, 1.0, 60)).unwrap();
        b.remove(MessageId(1)).unwrap();
        let deltas: Vec<BufferDelta> = b
            .deltas_since(base)
            .expect("within the window")
            .iter()
            .collect();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].id, MessageId(2));
        assert_eq!(deltas[0].kind, DeltaKind::Insert);
        assert_eq!(deltas[1].id, MessageId(1));
        // The removal carries the *insertion-time* meta of the removed copy.
        assert!(matches!(deltas[1].kind, DeltaKind::Remove(m) if m.size == 10 && m.seq == 0));
        // Mid-window replay: only the tail (its meta column realigns too).
        let tail: Vec<BufferDelta> = b.deltas_since(base + 1).unwrap().iter().collect();
        assert_eq!(tail.len(), 1);
        assert!(matches!(tail[0].kind, DeltaKind::Remove(m) if m.seq == 0));
        // A generation the log cannot prove (pre-watch, or foreign).
        assert!(b.deltas_since(base.wrapping_sub(1)).is_none());
        assert!(b.deltas_since(b.generation() + 7).is_none());
    }

    #[test]
    fn delta_log_tags_ttl_expiry() {
        let mut b = Buffer::new(10_000);
        b.watch();
        b.insert(msg(1, 10, 0.0, 1)).unwrap();
        let gen = b.generation();
        let dead = b.drain_expired(SimTime::from_secs_f64(61.0));
        assert_eq!(dead.len(), 1);
        let deltas: Vec<BufferDelta> = b.deltas_since(gen).unwrap().iter().collect();
        assert_eq!(deltas.len(), 1);
        assert!(matches!(deltas[0].kind, DeltaKind::Expire(m) if m.seq == 0));
    }

    #[test]
    fn delta_log_overflow_forces_rebuild() {
        let mut b = Buffer::new(u64::MAX);
        b.watch();
        let base = b.generation();
        // Far more churn than the retained window holds.
        for i in 0..2_000u64 {
            b.insert(msg(i, 1, 0.0, 60)).unwrap();
            b.remove(MessageId(i)).unwrap();
        }
        assert!(b.deltas_since(base).is_none(), "fell out of the ring");
        // Recent generations still replay exactly, alternating the paired
        // insert/remove churn above.
        let recent = b.generation() - 10;
        let deltas: Vec<BufferDelta> = b.deltas_since(recent).unwrap().iter().collect();
        assert_eq!(deltas.len(), 10);
        assert!(deltas
            .chunks(2)
            .all(|c| c[0].kind == DeltaKind::Insert && matches!(c[1].kind, DeltaKind::Remove(_))));
    }

    #[test]
    fn unwatched_buffer_only_proves_the_current_generation() {
        let mut b = Buffer::new(10_000);
        let g0 = b.generation();
        assert!(b.deltas_since(g0).unwrap().is_empty());
        b.insert(msg(1, 10, 0.0, 60)).unwrap();
        assert!(b.deltas_since(g0).is_none());
        assert!(b.deltas_since(b.generation()).unwrap().is_empty());
    }

    #[test]
    fn insert_count_and_seq_survive_removals_and_compaction() {
        let mut b = Buffer::new(u64::MAX);
        for i in 0..10u64 {
            b.insert(msg(i, 1, i as f64, 60)).unwrap();
        }
        assert_eq!(b.insert_count(), 10);
        for i in 0..8u64 {
            b.remove(MessageId(i)).unwrap(); // crosses the compaction threshold
        }
        assert_eq!(b.insert_count(), 10, "removals leave the count alone");
        assert_eq!(b.rank_meta(MessageId(8)).unwrap().seq, 8);
        assert_eq!(b.rank_meta(MessageId(9)).unwrap().seq, 9);
        // Re-insertion gets a fresh, larger seq (reception order restarts at
        // the back).
        b.insert(msg(3, 1, 99.0, 60)).unwrap();
        assert_eq!(b.rank_meta(MessageId(3)).unwrap().seq, 10);
        assert_eq!(b.insert_count(), 11);
        assert_eq!(b.rank_meta(MessageId(42)), None);
    }

    #[test]
    fn fits_now_vs_could_fit() {
        let mut b = Buffer::new(100);
        b.insert(msg(1, 80, 0.0, 60)).unwrap();
        assert!(b.could_fit(100));
        assert!(!b.fits_now(30));
        assert!(b.fits_now(20));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use vdtn_sim_core::{NodeId, SimDuration};

    proptest! {
        /// Arbitrary insert/remove sequences keep byte accounting exact and
        /// order/store views consistent.
        #[test]
        fn accounting_under_random_ops(ops in proptest::collection::vec((0u64..30, 1u64..500, any::<bool>()), 1..200)) {
            let mut b = Buffer::new(5_000);
            let mut expected_used = 0u64;
            for (id, size, remove) in ops {
                if remove {
                    if let Some(m) = b.remove(MessageId(id)) {
                        expected_used -= m.size;
                    }
                } else if !b.contains(MessageId(id)) && b.fits_now(size) {
                    b.insert(Message::new(
                        MessageId(id),
                        NodeId(0),
                        NodeId(1),
                        size,
                        SimTime::ZERO,
                        SimDuration::from_mins(10),
                    ))
                    .unwrap();
                    expected_used += size;
                }
                prop_assert_eq!(b.used(), expected_used);
                prop_assert!(b.used() <= b.capacity());
                prop_assert_eq!(b.ids_in_order().count(), b.len());
                let sum: u64 = b.iter().map(|m| m.size).sum();
                prop_assert_eq!(sum, b.used());
            }
        }

        /// Insertion order is exactly the reception order of surviving ids.
        #[test]
        fn order_is_subsequence_of_insertions(ids in proptest::collection::vec(0u64..50, 1..60)) {
            let mut b = Buffer::new(u64::MAX);
            let mut inserted = Vec::new();
            for id in ids {
                if b.insert(Message::new(
                    MessageId(id),
                    NodeId(0),
                    NodeId(1),
                    1,
                    SimTime::ZERO,
                    SimDuration::from_mins(10),
                ))
                .is_ok()
                {
                    inserted.push(MessageId(id));
                }
            }
            prop_assert_eq!(b.ids_in_order().collect::<Vec<_>>(), inserted);
        }

        /// Heap-driven expiry drains exactly what a full scan would, in
        /// reception order, across random insert/remove/advance sequences.
        #[test]
        fn drain_matches_full_scan_reference(
            ops in proptest::collection::vec((0u64..20, 1u64..30, 0u64..3), 1..150)
        ) {
            let mut b = Buffer::new(u64::MAX);
            let mut now = SimTime::ZERO;
            for (id, ttl_min, action) in ops {
                match action {
                    0 => {
                        let _ = b.insert(Message::new(
                            MessageId(id),
                            NodeId(0),
                            NodeId(1),
                            1,
                            now,
                            SimDuration::from_mins(ttl_min),
                        ));
                    }
                    1 => { b.remove(MessageId(id)); }
                    _ => {
                        now += SimDuration::from_mins(ttl_min);
                        // Reference: what a full scan would drain, in
                        // reception order.
                        let expected: Vec<MessageId> = b
                            .iter()
                            .filter(|m| m.is_expired(now))
                            .map(|m| m.id)
                            .collect();
                        let drained: Vec<MessageId> =
                            b.drain_expired(now).iter().map(|m| m.id).collect();
                        prop_assert_eq!(drained, expected);
                        // Nothing expired may remain.
                        prop_assert!(b.iter().all(|m| !m.is_expired(now)));
                        if let Some(e) = b.next_expiry() {
                            prop_assert!(e > now);
                        }
                    }
                }
            }
        }

        /// The handle-indexed buffer is observationally equal to a naive
        /// map-backed reference model (the pre-arena implementation) under
        /// random insert/remove/expire/quota-edit sequences: same accept/
        /// reject verdicts, same reconstructed messages in the same
        /// reception order, same drain results, same generation arithmetic.
        #[test]
        fn matches_map_backed_reference_model(
            ops in proptest::collection::vec((0u64..25, 1u64..400, 1u64..40, 0u64..5), 1..250)
        ) {
            const CAP: u64 = 4_000;
            let mut b = Buffer::new(CAP);
            // Reference: messages in reception order plus byte accounting —
            // the observable state of the former HashMap<MessageId, Message>
            // + order-vector implementation.
            let mut model: Vec<Message> = Vec::new();
            let mut model_used = 0u64;
            let mut now = SimTime::ZERO;
            for (id, size, ttl_min, action) in ops {
                match action {
                    0 | 1 => {
                        let m = Message::new(
                            MessageId(id),
                            NodeId((id % 5) as u32),
                            NodeId((id % 3) as u32 + 5),
                            size,
                            now,
                            SimDuration::from_mins(ttl_min),
                        );
                        let verdict = b.insert(m);
                        let model_verdict = if model.iter().any(|x| x.id == m.id) {
                            Err(BufferError::Duplicate(m.id))
                        } else if m.size > CAP {
                            Err(BufferError::TooLarge { size: m.size, capacity: CAP })
                        } else if m.size > CAP - model_used {
                            Err(BufferError::NoSpace { missing: m.size - (CAP - model_used) })
                        } else {
                            model.push(m);
                            model_used += m.size;
                            Ok(())
                        };
                        prop_assert_eq!(verdict, model_verdict);
                    }
                    2 => {
                        let got = b.remove(MessageId(id));
                        let want = model
                            .iter()
                            .position(|m| m.id == MessageId(id))
                            .map(|i| model.remove(i));
                        if let Some(m) = &want {
                            model_used -= m.size;
                        }
                        prop_assert_eq!(got, want);
                    }
                    3 => {
                        now += SimDuration::from_mins(ttl_min);
                        let drained = b.drain_expired(now);
                        let want: Vec<Message> =
                            model.iter().filter(|m| m.is_expired(now)).copied().collect();
                        model.retain(|m| !m.is_expired(now));
                        model_used = model.iter().map(|m| m.size).sum();
                        prop_assert_eq!(drained, want);
                    }
                    _ => {
                        let got = b.copies_mut(MessageId(id)).map(|c| {
                            *c += 1;
                            *c
                        });
                        let want = model.iter_mut().find(|m| m.id == MessageId(id)).map(|m| {
                            m.copies += 1;
                            m.copies
                        });
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(b.used(), model_used);
                prop_assert_eq!(b.len(), model.len());
                prop_assert_eq!(b.iter().collect::<Vec<_>>(), model.clone());
                for m in &model {
                    prop_assert_eq!(b.get(m.id), Some(*m));
                    let meta = b.rank_meta(m.id).unwrap();
                    prop_assert_eq!(meta.expiry, m.expiry());
                    prop_assert_eq!(meta.size, m.size);
                    prop_assert_eq!(meta.created, m.created);
                    prop_assert_eq!(meta.hops, m.hops);
                }
            }
        }
    }
}

//! Development probe: decompose the policy effect on SnW and Epidemic into
//! its scheduling and dropping components, across map extents and TTLs.
//! Usage: `cargo run --release -p vdtn --example probe_policies -- [w h ttl]`

use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::scenario::MapSpec;
use vdtn::{DropPolicy, PolicyCombo, SchedulingPolicy};
use vdtn_geo::SyntheticCityGen;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let width: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2400.0);
    let height: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1900.0);
    let ttl: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(120);

    let combos = [
        ("FIFO-FIFO", PolicyCombo::FIFO_FIFO),
        (
            "FIFO-LTasc",
            PolicyCombo {
                scheduling: SchedulingPolicy::Fifo,
                dropping: DropPolicy::LifetimeAsc,
            },
        ),
        (
            "LTdesc-FIFO",
            PolicyCombo {
                scheduling: SchedulingPolicy::LifetimeDesc,
                dropping: DropPolicy::Fifo,
            },
        ),
        ("LTdesc-LTasc", PolicyCombo::LIFETIME),
    ];

    println!("map {width}x{height}, ttl {ttl}m");
    for (base, proto) in [
        ("SnW", PaperProtocol::SnwFifo),
        ("Epidemic", PaperProtocol::EpidemicFifo),
    ] {
        let scenarios: Vec<_> = combos
            .iter()
            .map(|(_, combo)| {
                let mut s = paper_scenario(proto, ttl, 1);
                s.policy = *combo;
                s.map = MapSpec::Synthetic(SyntheticCityGen {
                    width,
                    height,
                    cols: (width / 280.0) as usize,
                    rows: (height / 280.0) as usize,
                    ..SyntheticCityGen::default()
                });
                s
            })
            .collect();
        let reports = vdtn::run_sweep(&scenarios);
        for ((label, _), r) in combos.iter().zip(&reports) {
            println!(
                "{base:<9} {label:<13} P={:.3} delay={:>6.1}m congDrops={:>6} expired={:>6} relayed={:>6}",
                r.delivery_probability(),
                r.avg_delay_mins(),
                r.messages.dropped_congestion,
                r.messages.dropped_expired,
                r.messages.relayed,
            );
        }
    }
}

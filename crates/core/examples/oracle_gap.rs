//! How far is each protocol from optimal? Protocols vs the delivery oracle.
//!
//! ```sh
//! cargo run --release -p vdtn --example oracle_gap
//! ```
//!
//! Runs the scaled paper scenario once per protocol with full contact
//! logging, computes the omniscient-routing bound (earliest possible
//! delivery of every message given the actual contacts), and prints each
//! protocol's delivery and delay as a fraction of that bound. This cleanly
//! separates "the contact structure made it impossible" from "the protocol
//! missed the opportunity".

use vdtn::presets::{mini_scenario, PaperProtocol};
use vdtn::{oracle_summary, MeetingModel, World};

fn main() {
    let protocols = [
        PaperProtocol::EpidemicLifetime,
        PaperProtocol::SnwLifetime,
        PaperProtocol::MaxProp,
        PaperProtocol::Prophet,
    ];

    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>12}",
        "protocol", "delivered", "oracle max", "delay (min)", "oracle (min)"
    );
    for proto in protocols {
        let mut s = mini_scenario(proto, 60, 77);
        s.duration_secs = 2.0 * 3600.0;
        let (report, log) = World::build(&s).run_logged();
        let oracle = oracle_summary(&log);
        println!(
            "{:<16} {:>10} {:>12} {:>12.1} {:>12.1}",
            report.router,
            report.messages.delivered_unique,
            oracle.deliverable,
            report.avg_delay_mins(),
            oracle.mean_delay_mins,
        );
        if proto == PaperProtocol::EpidemicLifetime {
            // The meeting model gives a cheap analytic cross-check.
            let model = MeetingModel::fit(&log);
            println!(
                "  (fitted pair meeting rate λ = {:.2e}/s; analytic direct-delivery delay ≈ {:.0} min, epidemic ≈ {:.1} min)",
                model.lambda,
                model.expected_direct_delay_secs() / 60.0,
                model.expected_epidemic_delay_secs() / 60.0,
            );
        }
    }
    println!(
        "\nThe oracle assumes instantaneous transfers and infinite buffers; the gap\n\
         to it is the price of real bandwidth, buffer contention and routing blindness."
    );
}

//! Calibration helper: protocol comparison across map extents.
//!
//! Used to size the synthetic-Helsinki substitute so the paper's qualitative
//! ordering (SnW ≥ MaxProp > PRoPHET, Lifetime > Random > FIFO) reproduces.
//! Usage: `cargo run --release -p vdtn --example calibrate -- [w h cols rows ttl]`

use vdtn::presets::{paper_scenario, PaperProtocol};
use vdtn::scenario::MapSpec;
use vdtn_geo::SyntheticCityGen;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let width: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000.0);
    let height: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1600.0);
    let cols: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(8);
    let rows: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(7);
    let ttl: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(120);

    println!("map {width}x{height} ({cols}x{rows}), ttl {ttl}m");
    let protos = [
        PaperProtocol::EpidemicFifo,
        PaperProtocol::EpidemicLifetime,
        PaperProtocol::SnwFifo,
        PaperProtocol::SnwLifetime,
        PaperProtocol::MaxProp,
        PaperProtocol::Prophet,
    ];
    let scenarios: Vec<_> = protos
        .iter()
        .map(|&p| {
            let mut s = paper_scenario(p, ttl, 1);
            s.map = MapSpec::Synthetic(SyntheticCityGen {
                width,
                height,
                cols,
                rows,
                ..SyntheticCityGen::default()
            });
            s
        })
        .collect();
    let reports = vdtn::run_sweep(&scenarios);
    for (p, r) in protos.iter().zip(&reports) {
        println!(
            "{:<40} P={:.3} delay={:>6.1}m relayed={:>6} aborted={:>5} contacts={} meanContact={:.1}s",
            p.label(),
            r.delivery_probability(),
            r.avg_delay_mins(),
            r.messages.relayed,
            r.messages.transfers_aborted,
            r.contacts,
            r.mean_contact_secs,
        );
    }
}
